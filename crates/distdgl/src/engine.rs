//! The DistDGL cost-model engine.
//!
//! Every step is *actually sampled* (real RNG-driven block construction
//! over the real partition); only the conversion of counted work into
//! seconds goes through the calibrated cost model. Phase times follow
//! the paper's measurement protocol: per step, each phase is gated by
//! the slowest worker (the straggler).

use gp_cluster::trace::counter_names;
use gp_cluster::{
    charge_loss_retries, compute_time, noise_charge, transfer_time, CheckpointConfig,
    CheckpointStore,
    ChurnPlan, ClusterCounters, ClusterSpec, ElasticOptions, ElasticRunReport, EpochOutcome,
    FaultPlan, Fleet, MessageKind, MitigationPolicy, MitigationReport, NetFaultPlan,
    NetRunOptions, NetRunReport, NetworkSpec, PartitionedRunReport, RecoveryReport, RunSpec,
    Scenario, StragglerDetector, StreamBatchReport, StreamLeg, StreamRunReport, TracePhase,
    TraceSink, AGGREGATE_WORKER,
};
use gp_exec::{par_map, Threads};
use gp_graph::{Graph, StreamGraph, StreamPlan, VertexSplit};
use gp_partition::{
    full_vertex_partitioner, modeled_partition_seconds, IncrementalVertexPartitioner,
    VertexPartition,
};
use gp_tensor::flops::{model_param_count, model_train_flops};
use gp_tensor::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::DistDglError;
use crate::sampler::{block_shapes, sample_minibatch, worker_seeds, MiniBatch};
use crate::store::PartitionedStore;

/// CPU cost of expanding one sampled edge locally (hash probes + pointer
/// chasing; memory-bound).
const SAMPLE_SECS_PER_EDGE: f64 = 150e-9;
/// Fixed CPU cost per frontier expansion.
const SAMPLE_SECS_PER_EXPANSION: f64 = 200e-9;
/// Extra CPU cost per *remote* frontier expansion: request serialisation,
/// RPC dispatch and response handling dominate the actual wire time for
/// tiny adjacency payloads (DistDGL issues these via its KVStore RPC
/// layer).
const SAMPLE_SECS_PER_REMOTE_EXPANSION: f64 = 100e-9;
/// Local feature-store bandwidth (shared-memory copy).
const LOCAL_FEATURE_BW: f64 = 10e9;

/// Configuration of a mini-batch training run.
#[derive(Debug, Clone)]
pub struct DistDglConfig {
    /// Model hyper-parameters.
    pub model: ModelConfig,
    /// Simulated cluster.
    pub cluster: ClusterSpec,
    /// Global batch size (split evenly across workers; paper default
    /// 1024).
    pub global_batch_size: u32,
    /// Per-layer fan-outs; must have `model.num_layers` entries (see
    /// [`crate::paper_fanouts`]).
    pub fanouts: Vec<u32>,
    /// Number of hot remote vertices whose features each worker caches
    /// locally (0 = disabled). DistDGL-style static cache of the
    /// highest-degree vertices — hubs appear in nearly every mini-batch,
    /// so caching them converts the bulk of remote fetches into local
    /// reads. **Extension beyond the paper's configuration.**
    pub feature_cache_entries: u32,
    /// Sampling seed.
    pub seed: u64,
}

impl DistDglConfig {
    /// Paper-default configuration for a given model and cluster.
    pub fn paper(model: ModelConfig, cluster: ClusterSpec) -> Self {
        DistDglConfig {
            model,
            cluster,
            global_batch_size: 1024,
            fanouts: crate::scaled_fanouts(model.num_layers),
            feature_cache_entries: 0,
            seed: 0x9d15,
        }
    }
}

/// Simulated time of one step / epoch, split into the phases the paper
/// measures (Figure 19/21/22/25).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepPhases {
    /// Mini-batch sampling (local walk + remote RPCs).
    pub sampling: f64,
    /// Feature loading (local copy + remote fetch).
    pub feature_load: f64,
    /// Forward pass.
    pub forward: f64,
    /// Backward pass including the gradient all-reduce.
    pub backward: f64,
    /// Model update.
    pub update: f64,
}

impl StepPhases {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.sampling + self.feature_load + self.forward + self.backward + self.update
    }

    fn add(&mut self, other: &StepPhases) {
        self.sampling += other.sampling;
        self.feature_load += other.feature_load;
        self.forward += other.forward;
        self.backward += other.backward;
        self.update += other.update;
    }
}

/// Per-epoch fault environment resolved from a [`FaultPlan`]: the
/// (possibly degraded) network, per-worker compute-rate multipliers and
/// the message-loss rate driving timeout/retry/backoff on remote
/// expansions and feature fetches.
struct StepFaultCtx {
    network: NetworkSpec,
    compute_factor: Vec<f64>,
    min_compute_factor: f64,
    loss_rate: f64,
    /// Bitmask of workers holding work this epoch. The fault paths keep
    /// every slot live (absence is expressed through the ownership
    /// store); the elastic path narrows it so the gradient all-reduce,
    /// optimiser bookings and spans cover only the live fleet.
    live_mask: u64,
}

/// One worker's share of a step: its (pre-gating) phase times plus the
/// attribution the trace layer rides on — bytes moved and FLOPs burned
/// by *this* worker, regardless of which worker gates each phase.
struct WorkerCost {
    phases: StepPhases,
    cache_hits: u64,
    /// Remote sampling-RPC bytes the worker waited on.
    sample_bytes: u64,
    /// Remote feature-fetch bytes the worker received.
    feature_bytes: u64,
    fwd_flops: u64,
    bwd_flops: u64,
}

/// Result of one simulated training step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Straggler-gated phase times.
    pub phases: StepPhases,
    /// Per-worker sampling+fetch+forward time (Figure 17's balance).
    pub worker_times: Vec<f64>,
    /// Per-worker input vertices of the step's mini-batches.
    pub input_vertices: Vec<u64>,
    /// Per-worker remote input vertices.
    pub remote_vertices: Vec<u64>,
    /// Remote inputs served from the local feature cache this step.
    pub cache_hits: u64,
}

impl StepReport {
    /// Input-vertex balance `max/mean` across workers (Figure 14).
    pub fn input_balance(&self) -> f64 {
        gp_cluster::max_mean_ratio(&self.input_vertices)
    }

    /// Training-time balance `max/mean` across workers (Figure 17).
    pub fn time_balance(&self) -> f64 {
        let sum: f64 = self.worker_times.iter().sum();
        if sum <= 0.0 {
            return 0.0;
        }
        let mean = sum / self.worker_times.len() as f64;
        self.worker_times.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Aggregate result of one simulated epoch.
#[derive(Debug, Clone)]
pub struct EpochSummary {
    /// Number of steps.
    pub steps: usize,
    /// Phase times summed over steps (straggler-gated per step).
    pub phases: StepPhases,
    /// Cluster-wide work counters.
    pub counters: ClusterCounters,
    /// Total input vertices over the epoch.
    pub total_input_vertices: u64,
    /// Total remote input vertices over the epoch.
    pub total_remote_vertices: u64,
    /// Remote inputs served from the local feature cache (no network).
    pub cache_hits: u64,
    /// Mean per-step input-vertex balance.
    pub mean_input_balance: f64,
    /// Mean per-step training-time balance.
    pub mean_time_balance: f64,
}

impl EpochSummary {
    /// Simulated seconds per epoch.
    pub fn epoch_time(&self) -> f64 {
        self.phases.total()
    }
}

impl EpochOutcome for EpochSummary {
    fn epoch_time(&self) -> f64 {
        self.phases.total()
    }

    fn total_bytes(&self) -> u64 {
        self.counters.total_network_bytes()
    }

    fn phase_breakdown(&self) -> Vec<(&'static str, f64)> {
        vec![
            (TracePhase::Sampling.name(), self.phases.sampling),
            (TracePhase::FeatureLoad.name(), self.phases.feature_load),
            (TracePhase::Forward.name(), self.phases.forward),
            (TracePhase::Backward.name(), self.phases.backward),
            (TracePhase::Update.name(), self.phases.update),
        ]
    }
}

/// Result of one epoch simulated under a [`FaultPlan`].
///
/// `summary.phases` covers the steps actually executed (including the
/// re-execution of any step lost to a crash); the lost in-flight
/// attempt, state restore and retry waits are accounted in `recovery`,
/// so total wall time under faults is
/// `summary.epoch_time() + recovery.total_overhead_seconds()` minus the
/// retry share already inside the phases.
#[derive(Debug, Clone)]
pub struct FaultyEpochSummary {
    /// The epoch summary over executed steps.
    pub summary: EpochSummary,
    /// What the faults cost beyond the healthy baseline.
    pub recovery: RecoveryReport,
    /// Workers out of service by the end of this epoch (DistDGL crashes
    /// are permanent: survivors absorb the lost training set — graceful
    /// degradation, in contrast to DistGNN's checkpoint/restart).
    pub failed_workers: Vec<u32>,
}

/// Result of one epoch simulated under a [`FaultPlan`] with the
/// mitigation layer active. `summary.phases` are the *mitigated* phase
/// times; `mitigation` itemises what the layer did and what it paid.
#[derive(Debug, Clone)]
pub struct MitigatedEpochSummary {
    /// The epoch summary over executed steps (mitigated phase times).
    pub summary: EpochSummary,
    /// What the faults cost beyond the healthy baseline.
    pub recovery: RecoveryReport,
    /// What the mitigation layer did this epoch and what it paid.
    pub mitigation: MitigationReport,
    /// Workers out of service by the end of this epoch.
    pub failed_workers: Vec<u32>,
}

/// Result of [`DistDglEngine::run`]: one variant per resolved
/// [`Scenario`], mirroring `DistGnnRunReport` on the full-batch side.
///
/// The `Faulty` and `Mitigated` variants record a run cut short by a
/// terminal fault (`error: Some(..)`) together with the epochs that
/// *did* complete, instead of discarding them; [`DistDglRunReport::strict`]
/// restores fail-fast semantics.
#[derive(Debug)]
pub enum DistDglRunReport {
    /// Healthy scenario: one summary per epoch.
    Healthy {
        /// Per-epoch summaries, in epoch order.
        epochs: Vec<EpochSummary>,
    },
    /// Faulty scenario: per-epoch summaries until completion or the
    /// first terminal fault.
    Faulty {
        /// Completed epochs, in epoch order.
        epochs: Vec<FaultyEpochSummary>,
        /// The terminal fault that ended the run early, if any.
        error: Option<DistDglError>,
    },
    /// Mitigated scenario: per-epoch summaries until completion or the
    /// first terminal fault.
    Mitigated {
        /// Completed epochs, in epoch order.
        epochs: Vec<MitigatedEpochSummary>,
        /// The terminal fault that ended the run early, if any.
        error: Option<DistDglError>,
    },
    /// Elastic scenario: the whole-run elastic report.
    Elastic(ElasticRunReport),
    /// Partitioned scenario: the whole-run elastic + network report.
    Partitioned(PartitionedRunReport),
    /// Stream scenario: one epoch per mutation batch over the aging
    /// graph.
    Stream(StreamRunReport),
}

impl DistDglRunReport {
    /// Fail-fast view: a run cut short by a terminal fault becomes that
    /// fault's `Err`, everything else passes through unchanged.
    ///
    /// # Errors
    ///
    /// The recorded terminal fault, if the run ended early.
    pub fn strict(self) -> Result<Self, DistDglError> {
        match self {
            DistDglRunReport::Faulty { error: Some(e), .. }
            | DistDglRunReport::Mitigated { error: Some(e), .. } => Err(e),
            other => Ok(other),
        }
    }

    /// The healthy per-epoch summaries.
    ///
    /// # Panics
    ///
    /// Panics if the report is not the `Healthy` variant.
    pub fn into_healthy(self) -> Vec<EpochSummary> {
        match self {
            DistDglRunReport::Healthy { epochs } => epochs,
            other => panic!("expected a healthy run report, got {other:?}"),
        }
    }

    /// The faulty per-epoch summaries (completed epochs only) and the
    /// truncation error, if the run ended early.
    ///
    /// # Panics
    ///
    /// Panics if the report is not the `Faulty` variant.
    pub fn into_faulty(self) -> (Vec<FaultyEpochSummary>, Option<DistDglError>) {
        match self {
            DistDglRunReport::Faulty { epochs, error } => (epochs, error),
            other => panic!("expected a faulty run report, got {other:?}"),
        }
    }

    /// The mitigated per-epoch summaries (completed epochs only) and
    /// the truncation error, if the run ended early.
    ///
    /// # Panics
    ///
    /// Panics if the report is not the `Mitigated` variant.
    pub fn into_mitigated(self) -> (Vec<MitigatedEpochSummary>, Option<DistDglError>) {
        match self {
            DistDglRunReport::Mitigated { epochs, error } => (epochs, error),
            other => panic!("expected a mitigated run report, got {other:?}"),
        }
    }

    /// The elastic whole-run report.
    ///
    /// # Panics
    ///
    /// Panics if the report is not the `Elastic` variant.
    pub fn into_elastic(self) -> ElasticRunReport {
        match self {
            DistDglRunReport::Elastic(r) => r,
            other => panic!("expected an elastic run report, got {other:?}"),
        }
    }

    /// The partitioned whole-run report.
    ///
    /// # Panics
    ///
    /// Panics if the report is not the `Partitioned` variant.
    pub fn into_partitioned(self) -> PartitionedRunReport {
        match self {
            DistDglRunReport::Partitioned(r) => r,
            other => panic!("expected a partitioned run report, got {other:?}"),
        }
    }

    /// The stream whole-run report.
    ///
    /// # Panics
    ///
    /// Panics if the report is not the `Stream` variant.
    pub fn into_stream(self) -> StreamRunReport {
        match self {
            DistDglRunReport::Stream(r) => r,
            other => panic!("expected a stream run report, got {other:?}"),
        }
    }
}

/// Persistent mitigation state for a DistDGL training run: the policy
/// and the online detector it drives. Create one via
/// [`DistDglEngine::mitigation`] and thread it through every epoch of
/// the run — the detector's baselines build up during healthy epochs
/// and carry across epoch boundaries, exactly like a real monitor.
#[derive(Debug, Clone)]
pub struct DistDglMitigation {
    policy: MitigationPolicy,
    detector: StragglerDetector,
}

impl DistDglMitigation {
    /// The online detector (inspectable for reporting and tests).
    pub fn detector(&self) -> &StragglerDetector {
        &self.detector
    }
}

/// Running accumulators of an epoch simulation (shared between the
/// healthy and the fault-injected paths).
#[derive(Default)]
struct EpochAcc {
    steps: usize,
    phases: StepPhases,
    total_inputs: u64,
    total_remote: u64,
    cache_hits: u64,
    balance_acc: f64,
    time_balance_acc: f64,
}

impl EpochAcc {
    fn add(&mut self, report: &StepReport) {
        self.steps += 1;
        self.phases.add(&report.phases);
        self.total_inputs += report.input_vertices.iter().sum::<u64>();
        self.total_remote += report.remote_vertices.iter().sum::<u64>();
        self.cache_hits += report.cache_hits;
        self.balance_acc += report.input_balance();
        self.time_balance_acc += report.time_balance();
    }

    fn into_summary(self, counters: ClusterCounters) -> EpochSummary {
        EpochSummary {
            steps: self.steps,
            phases: self.phases,
            counters,
            total_input_vertices: self.total_inputs,
            total_remote_vertices: self.total_remote,
            cache_hits: self.cache_hits,
            mean_input_balance: if self.steps == 0 {
                0.0
            } else {
                self.balance_acc / self.steps as f64
            },
            mean_time_balance: if self.steps == 0 {
                0.0
            } else {
                self.time_balance_acc / self.steps as f64
            },
        }
    }
}

/// Validated builder for [`DistDglEngine`] — the only construction
/// path. Positional arguments carry the data the engine borrows (graph,
/// partition, train/val/test split); everything else is set through
/// chained setters, either wholesale via [`DistDglEngineBuilder::config`]
/// or field by field. `model` and `cluster` are mandatory; `fanouts`
/// defaults to [`crate::scaled_fanouts`] for the model's layer count,
/// the remaining fields to the paper defaults of
/// [`DistDglConfig::paper`].
#[derive(Debug, Clone)]
pub struct DistDglEngineBuilder<'a, 'b> {
    graph: &'a Graph,
    partition: &'b VertexPartition,
    split: &'b VertexSplit,
    model: Option<ModelConfig>,
    cluster: Option<ClusterSpec>,
    global_batch_size: u32,
    fanouts: Option<Vec<u32>>,
    feature_cache_entries: u32,
    seed: u64,
    trace: TraceSink,
    threads: Threads,
}

impl<'a, 'b> DistDglEngineBuilder<'a, 'b> {
    /// Model hyper-parameters (mandatory).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Simulated cluster (mandatory).
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Adopt a complete [`DistDglConfig`] (sets every config field).
    pub fn config(mut self, config: DistDglConfig) -> Self {
        self.model = Some(config.model);
        self.cluster = Some(config.cluster);
        self.global_batch_size = config.global_batch_size;
        self.fanouts = Some(config.fanouts);
        self.feature_cache_entries = config.feature_cache_entries;
        self.seed = config.seed;
        self
    }

    /// Global batch size (split evenly across workers).
    pub fn global_batch_size(mut self, global_batch_size: u32) -> Self {
        self.global_batch_size = global_batch_size;
        self
    }

    /// Per-layer fan-outs (defaults to
    /// [`crate::scaled_fanouts`]`(model.num_layers)`).
    pub fn fanouts(mut self, fanouts: Vec<u32>) -> Self {
        self.fanouts = Some(fanouts);
        self
    }

    /// Hot-vertex feature-cache size (0 = disabled).
    pub fn feature_cache_entries(mut self, entries: u32) -> Self {
        self.feature_cache_entries = entries;
        self
    }

    /// Sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a trace sink; every simulated epoch records per-worker,
    /// per-step phase spans into it. Defaults to
    /// [`TraceSink::disabled`] (zero cost).
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Intra-epoch `gp-exec` width (default: serial). Per-worker
    /// mini-batch sampling within a step — and the flattened
    /// (step × worker) sampling of a whole epoch — fan out over index-
    /// addressed slots on the deterministic pool; each slot derives its
    /// RNG stream by hashing `(seed, epoch, step, worker)`, so results
    /// are byte-identical at any width. Composes with sweep-level
    /// parallelism: the engine width applies inside whichever sweep
    /// cell runs this engine.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Validate and build the engine.
    ///
    /// # Errors
    ///
    /// [`DistDglError::InvalidConfig`] when `model` or `cluster` was
    /// never set, plus every validation [`DistDglEngine::new`] used to
    /// perform (partition/cluster mismatch, fan-out arity, batch size).
    pub fn build(self) -> Result<DistDglEngine<'a>, DistDglError> {
        let model = self
            .model
            .ok_or_else(|| DistDglError::InvalidConfig("model not set (builder .model())".into()))?;
        let cluster = self.cluster.ok_or_else(|| {
            DistDglError::InvalidConfig("cluster not set (builder .cluster())".into())
        })?;
        let fanouts =
            self.fanouts.unwrap_or_else(|| crate::scaled_fanouts(model.num_layers));
        let config = DistDglConfig {
            model,
            cluster,
            global_batch_size: self.global_batch_size,
            fanouts,
            feature_cache_entries: self.feature_cache_entries,
            seed: self.seed,
        };
        if self.partition.k() != config.cluster.machines {
            return Err(DistDglError::ClusterMismatch {
                partitions: self.partition.k(),
                machines: config.cluster.machines,
            });
        }
        if config.fanouts.len() != config.model.num_layers {
            return Err(DistDglError::InvalidConfig(format!(
                "{} fan-outs for {} layers",
                config.fanouts.len(),
                config.model.num_layers
            )));
        }
        if config.global_batch_size == 0 {
            return Err(DistDglError::InvalidConfig("global_batch_size must be > 0".into()));
        }
        let store = PartitionedStore::new(self.graph, self.partition, self.split)?;
        let cached = hot_vertex_mask(self.graph, config.feature_cache_entries);
        Ok(DistDglEngine {
            graph: self.graph,
            store,
            partition: self.partition.clone(),
            split: self.split.clone(),
            config,
            cached,
            trace: self.trace,
            threads: self.threads,
        })
    }
}

/// Mini-batch vertex-partitioned training engine.
pub struct DistDglEngine<'a> {
    graph: &'a Graph,
    store: PartitionedStore,
    /// Owned copy of the builder's partition — the `t = 0` state the
    /// stream leg continues from (the builder's reference has a shorter
    /// lifetime than the engine).
    partition: VertexPartition,
    /// Owned copy of the builder's split, reused verbatim for every
    /// stream snapshot (new vertices join no role).
    split: VertexSplit,
    config: DistDglConfig,
    /// Mask of vertices whose features every worker caches (the
    /// `feature_cache_entries` highest-degree vertices).
    cached: Vec<bool>,
    /// Span recorder (disabled by default; see
    /// [`DistDglEngineBuilder::trace`]).
    trace: TraceSink,
    /// Intra-epoch `gp-exec` width (see
    /// [`DistDglEngineBuilder::threads`]).
    threads: Threads,
}

impl<'a> DistDglEngine<'a> {
    /// Start building an engine over `graph`, vertex-partitioned by
    /// `partition`, with train/val/test roles from `split`.
    pub fn builder<'b>(
        graph: &'a Graph,
        partition: &'b VertexPartition,
        split: &'b VertexSplit,
    ) -> DistDglEngineBuilder<'a, 'b> {
        DistDglEngineBuilder {
            graph,
            partition,
            split,
            model: None,
            cluster: None,
            global_batch_size: 1024,
            fanouts: None,
            feature_cache_entries: 0,
            seed: 0x9d15,
            trace: TraceSink::disabled(),
            threads: Threads::serial(),
        }
    }

    /// The ownership store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// The attached trace sink (disabled unless one was supplied via
    /// [`DistDglEngineBuilder::trace`]).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The configuration.
    pub fn config(&self) -> &DistDglConfig {
        &self.config
    }

    /// Steps per epoch: the epoch ends when the worker with the most
    /// local training vertices has cycled through them once (DistDGL
    /// semantics — each worker iterates its *own* training set; workers
    /// with fewer local vertices wrap around). For a train-balanced
    /// partition this equals `ceil(|train| / global_batch_size)`.
    pub fn steps_per_epoch(&self) -> usize {
        let bpw = self.batch_per_worker();
        let k = self.config.cluster.machines;
        (0..k)
            .map(|w| self.store.local_train_vertices(w).len().div_ceil(bpw))
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Mini-batch size per worker.
    pub fn batch_per_worker(&self) -> usize {
        (self.config.global_batch_size as usize / self.config.cluster.machines as usize).max(1)
    }

    /// Sample all workers' mini-batches for one step. Per-worker jobs
    /// fan out over the engine's `gp-exec` width; each slot is indexed
    /// by its worker id, so the returned order — and every drawn edge —
    /// is identical at any width.
    pub fn sample_step(&self, epoch: u32, step: usize) -> Vec<MiniBatch> {
        let k = self.config.cluster.machines;
        let jobs: Vec<_> = (0..k).map(|w| move || self.sample_worker(epoch, step, w)).collect();
        par_map(self.threads, jobs)
    }

    /// One worker's k-hop block sampling for one step — a pure function
    /// of `(seed, epoch, step, worker)`: the RNG stream is derived by
    /// hashing the full tuple, so per-worker jobs can run on any thread
    /// schedule without changing a single drawn edge.
    fn sample_worker(&self, epoch: u32, step: usize, w: u32) -> MiniBatch {
        let _prof = gp_prof::scope("distdgl.sample");
        let bpw = self.batch_per_worker();
        // Derive independent streams by hashing (seed, epoch, step,
        // worker) through a mixer; shifted XOR would collide as soon as
        // a field outgrows its bit window (e.g. step >= 256).
        let epoch_seed = mix_seed(self.config.seed, u64::from(epoch), 0, 0);
        let seeds = worker_seeds(&self.store, w, step, bpw, epoch_seed);
        let mut rng = StdRng::seed_from_u64(mix_seed(
            self.config.seed,
            u64::from(epoch),
            step as u64 + 1,
            u64::from(w) + 1,
        ));
        sample_minibatch(self.graph, &self.store, w, &seeds, &self.config.fanouts, &mut rng)
    }

    /// Convert one worker's sampled mini-batch into per-phase times and
    /// record its work into `counters`. With `faults: None` this is the
    /// healthy baseline and performs exactly the pre-fault arithmetic
    /// (every adjustment is behind an `if let Some(..)`), so healthy
    /// results stay bit-identical.
    fn worker_step_cost(
        &self,
        worker: u32,
        batch: &MiniBatch,
        counters: &mut ClusterCounters,
        faults: Option<&StepFaultCtx>,
        recovery: &mut RecoveryReport,
    ) -> WorkerCost {
        let _prof = gp_prof::scope("distdgl.fetch_compute");
        let cluster = &self.config.cluster;
        let network = faults.map_or(cluster.network, |f| f.network);
        let model = &self.config.model;
        let stats = &batch.stats;

        // --- Sampling: local walk + remote RPC wait. ---
        let mut local_cpu = stats.edges_sampled as f64 * SAMPLE_SECS_PER_EDGE
            + (stats.local_expansions + stats.remote_expansions) as f64
                * SAMPLE_SECS_PER_EXPANSION
            + stats.remote_expansions as f64 * SAMPLE_SECS_PER_REMOTE_EXPANSION;
        if let Some(f) = faults {
            local_cpu /= f.compute_factor[worker as usize];
        }
        let rpc = transfer_time(
            &network,
            stats.remote_sample_bytes,
            stats.remote_sample_messages,
        );
        let mut sampling = local_cpu + rpc;
        if let Some(f) = faults {
            // Lost sampling RPCs time out and are retransmitted with
            // backoff; the retry accounting is attributed to the
            // requesting worker.
            let charge = charge_loss_retries(
                &network,
                stats.remote_sample_messages,
                stats.remote_sample_bytes,
                f.loss_rate,
            );
            if !charge.is_zero() {
                sampling += charge.extra_secs;
                charge.apply_counts(recovery);
                recovery.retry_seconds += charge.extra_secs;
                let c = counters.machine_mut(worker);
                c.bytes_received += charge.retry_bytes;
                c.messages += charge.retries;
            }
        }
        {
            // Sampling RPCs are booked on both endpoints, like every
            // other exchange: the requester sends requests and receives
            // responses; each owner receives its requests and sends its
            // responses.
            let request_bytes = 16 * stats.remote_expansions;
            let response_bytes = stats.remote_sample_bytes.saturating_sub(request_bytes);
            let c = counters.machine_mut(worker);
            c.bytes_sent += request_bytes;
            c.bytes_received += response_bytes;
            c.messages += stats.remote_sample_messages;
            for (o, (&reqs, &resp)) in batch
                .rpc_requests_by_owner
                .iter()
                .zip(batch.rpc_response_bytes_by_owner.iter())
                .enumerate()
            {
                if reqs > 0 {
                    let oc = counters.machine_mut(o as u32);
                    oc.bytes_received += 16 * reqs;
                    oc.bytes_sent += resp;
                }
            }
        }

        // --- Feature loading: local copy + remote fetch. Remote inputs
        // present in the hot-vertex cache are served locally. ---
        let fbytes = 4 * model.feature_dim as u64;
        let mut cache_hits = 0u64;
        // Remote fetch batched per owner.
        let mut per_owner = vec![0u64; cluster.machines as usize];
        for &v in &batch.input_vertices {
            let o = self.store.owner(v);
            if o != worker {
                if self.cached[v as usize] {
                    cache_hits += 1;
                } else {
                    per_owner[o as usize] += fbytes;
                }
            }
        }
        let local_inputs = stats.input_vertices - stats.remote_input_vertices + cache_hits;
        let local_copy = (local_inputs * fbytes) as f64 / LOCAL_FEATURE_BW;
        let remote_bytes: u64 = per_owner.iter().sum();
        let owners_contacted = per_owner.iter().filter(|&&b| b > 0).count() as u64;
        let mut feature_load =
            local_copy + transfer_time(&network, remote_bytes, owners_contacted);
        counters.machine_mut(worker).receive(remote_bytes);
        for (o, &b) in per_owner.iter().enumerate() {
            if b > 0 {
                counters.machine_mut(o as u32).send(b);
            }
        }
        if let Some(f) = faults {
            let charge =
                charge_loss_retries(&network, owners_contacted, remote_bytes, f.loss_rate);
            if !charge.is_zero() {
                feature_load += charge.extra_secs;
                charge.apply_counts(recovery);
                recovery.retry_seconds += charge.extra_secs;
                let c = counters.machine_mut(worker);
                c.bytes_received += charge.retry_bytes;
                c.messages += charge.retries;
            }
        }

        // --- Compute. ---
        let shapes = block_shapes(batch);
        let train_flops = if batch.seeds.is_empty() {
            0
        } else {
            model_train_flops(model, &shapes)
        };
        let fwd_flops = train_flops / 3;
        let bwd_flops = train_flops - fwd_flops;
        counters.machine_mut(worker).flops += train_flops;
        let mut forward = compute_time(&cluster.machine, fwd_flops);
        let mut backward = compute_time(&cluster.machine, bwd_flops);
        if let Some(f) = faults {
            let cf = f.compute_factor[worker as usize];
            forward /= cf;
            backward /= cf;
        }

        WorkerCost {
            phases: StepPhases { sampling, feature_load, forward, backward, update: 0.0 },
            cache_hits,
            sample_bytes: stats.remote_sample_bytes,
            feature_bytes: remote_bytes,
            fwd_flops,
            bwd_flops,
        }
    }

    /// Sample every step of an epoch (for reuse across model
    /// configurations that share the same layer count: sampling depends
    /// only on the fan-outs and seed, not on dimensions).
    ///
    /// The whole epoch's (step × worker) jobs are flattened into one
    /// index-addressed fan-out on the engine's `gp-exec` width — a
    /// single pool pass instead of one per step — and regrouped by step
    /// afterwards, so the nesting never stacks pool invocations.
    pub fn sample_epoch(&self, epoch: u32) -> Vec<Vec<MiniBatch>> {
        let steps = self.steps_per_epoch();
        let k = self.config.cluster.machines;
        let jobs: Vec<_> = (0..steps)
            .flat_map(|step| (0..k).map(move |w| (step, w)))
            .map(|(step, w)| move || self.sample_worker(epoch, step, w))
            .collect();
        let mut flat = par_map(self.threads, jobs).into_iter();
        (0..steps)
            .map(|_| (0..k).map(|_| flat.next().expect("one batch per (step, worker)")).collect())
            .collect()
    }

    /// Simulate one step, sampling it first.
    pub fn simulate_step(
        &self,
        epoch: u32,
        step: usize,
        counters: &mut ClusterCounters,
    ) -> StepReport {
        let batches = self.sample_step(epoch, step);
        let mut unused = RecoveryReport::default();
        self.step_inner(&batches, counters, None, &mut unused, step as u32)
    }

    /// Simulate one step from pre-sampled mini-batches. Spans recorded
    /// through this entry point carry step index 0 (the caller holds the
    /// real index; use [`DistDglEngine::simulate_step`] or the epoch
    /// paths for stepped traces).
    pub fn simulate_step_from(
        &self,
        batches: &[MiniBatch],
        counters: &mut ClusterCounters,
    ) -> StepReport {
        let mut unused = RecoveryReport::default();
        self.step_inner(batches, counters, None, &mut unused, 0)
    }

    /// Shared step simulation; `faults: None` is the healthy baseline
    /// (bit-identical to the pre-fault implementation).
    fn step_inner(
        &self,
        batches: &[MiniBatch],
        counters: &mut ClusterCounters,
        faults: Option<&StepFaultCtx>,
        recovery: &mut RecoveryReport,
        step: u32,
    ) -> StepReport {
        let cluster = &self.config.cluster;
        let network = faults.map_or(cluster.network, |f| f.network);
        let model = &self.config.model;
        let k = cluster.machines;
        let live_mask = faults.map_or(full_mask(k), |f| f.live_mask);
        let all_live = live_mask == full_mask(k);

        let mut phases = StepPhases::default();
        let mut worker_times = Vec::with_capacity(k as usize);
        let mut input_vertices = Vec::with_capacity(k as usize);
        let mut remote_vertices = Vec::with_capacity(k as usize);
        let mut cache_hits = 0u64;
        let mut costs = Vec::with_capacity(batches.len());
        for (w, batch) in batches.iter().enumerate() {
            let wc = self.worker_step_cost(w as u32, batch, counters, faults, recovery);
            cache_hits += wc.cache_hits;
            phases.sampling = phases.sampling.max(wc.phases.sampling);
            phases.feature_load = phases.feature_load.max(wc.phases.feature_load);
            phases.forward = phases.forward.max(wc.phases.forward);
            phases.backward = phases.backward.max(wc.phases.backward);
            worker_times.push(wc.phases.sampling + wc.phases.feature_load + wc.phases.forward);
            input_vertices.push(batch.stats.input_vertices);
            remote_vertices.push(batch.stats.remote_input_vertices);
            costs.push(wc);
        }

        // Gradient all-reduce closes the backward phase (paper: the
        // backward time includes the all-reduce). DistDGL's PyTorch DDP
        // overlaps the bucketed all-reduce with backward compute, so the
        // phase is gated by the slower of the two, not their sum.
        let param_bytes = model_param_count(model) * 4;
        let ar_machines = if all_live { k } else { live_mask.count_ones() };
        phases.backward = phases
            .backward
            .max(gp_cluster::time::allreduce_time(&network, param_bytes, ar_machines));
        for m in 0..k {
            if all_live || live_mask & (1u64 << m) != 0 {
                counters.machine_mut(m).send(param_bytes);
                counters.machine_mut(m).receive(param_bytes);
            }
        }
        // Optimiser update (synchronous; the slowest machine gates it).
        let opt_flops = model_param_count(model) * 10;
        phases.update = compute_time(&cluster.machine, opt_flops);
        if let Some(f) = faults {
            phases.update /= f.min_compute_factor;
        }
        for m in 0..k {
            if all_live || live_mask & (1u64 << m) != 0 {
                counters.machine_mut(m).flops += opt_flops;
            }
        }

        self.emit_step_spans(step, &phases, &costs, param_bytes, opt_flops, live_mask);
        self.emit_traffic_counters(counters);

        StepReport { phases, worker_times, input_vertices, remote_vertices, cache_hits }
    }

    /// Record one step's spans: every worker gets one span per phase
    /// window, `dur` being the straggler-gated phase time (BSP
    /// semantics — the whole cluster occupies the window), while bytes
    /// and FLOPs carry that worker's own attribution. The durations are
    /// the exact `f64`s summed into [`StepPhases`] by the epoch
    /// accumulator, in the same order, so per-worker span sums equal the
    /// epoch phase totals bit for bit.
    fn emit_step_spans(
        &self,
        step: u32,
        phases: &StepPhases,
        costs: &[WorkerCost],
        param_bytes: u64,
        opt_flops: u64,
        live_mask: u64,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        let t0 = self.trace.now();
        for (w, wc) in costs.iter().enumerate() {
            let w = w as u32;
            if w < 64 && live_mask & (1u64 << w) == 0 {
                continue;
            }
            let mut t = t0;
            self.trace.span(w, step, TracePhase::Sampling, t, phases.sampling, wc.sample_bytes, 0);
            t += phases.sampling;
            self.trace.span(
                w,
                step,
                TracePhase::FeatureLoad,
                t,
                phases.feature_load,
                wc.feature_bytes,
                0,
            );
            t += phases.feature_load;
            self.trace.span(w, step, TracePhase::Forward, t, phases.forward, 0, wc.fwd_flops);
            t += phases.forward;
            self.trace.span(
                w,
                step,
                TracePhase::Backward,
                t,
                phases.backward,
                2 * param_bytes,
                wc.bwd_flops,
            );
            t += phases.backward;
            self.trace.span(w, step, TracePhase::Update, t, phases.update, 0, opt_flops);
        }
        self.trace.advance(phases.total());
    }

    /// Emit cumulative per-worker traffic counter tracks (no-op when
    /// tracing is disabled).
    fn emit_traffic_counters(&self, counters: &ClusterCounters) {
        if !self.trace.is_enabled() {
            return;
        }
        for m in 0..self.config.cluster.machines {
            let c = counters.machine(m);
            self.trace.counter(m, counter_names::BYTES_SENT, c.bytes_sent as f64);
            self.trace.counter(m, counter_names::BYTES_RECEIVED, c.bytes_received as f64);
        }
    }

    /// Run the scenario described by `spec` — the unified entry point
    /// over the engine's five internal run paths.
    ///
    /// The spec is resolved to a [`Scenario`] up front; each scenario
    /// maps to exactly one internal path and returns the matching
    /// [`DistDglRunReport`] variant. `Faulty` and `Mitigated` runs that
    /// hit a terminal fault keep the epochs completed so far and record
    /// the error in the variant ([`DistDglRunReport::strict`] restores
    /// fail-fast); `Elastic`/`Partitioned` runs propagate their errors
    /// directly, as the whole-run reports carry no partial state.
    ///
    /// # Errors
    ///
    /// [`DistDglError::InvalidConfig`] when the spec's combination is
    /// rejected ([`gp_cluster::RunSpecError`]); the elastic and
    /// partitioned paths' own errors otherwise.
    pub fn run(&self, spec: &RunSpec) -> Result<DistDglRunReport, DistDglError> {
        let scenario =
            spec.scenario().map_err(|e| DistDglError::InvalidConfig(e.to_string()))?;
        let epochs = spec.num_epochs();
        let empty_plan = FaultPlan::empty();
        match scenario {
            Scenario::Healthy => Ok(DistDglRunReport::Healthy {
                epochs: (0..epochs).map(|e| self.healthy_epoch(e)).collect(),
            }),
            Scenario::Faulty(plan) => {
                let mut reports = Vec::with_capacity(epochs as usize);
                let mut error = None;
                for epoch in 0..epochs {
                    match self.faulty_epoch(epoch, plan) {
                        Ok(r) => reports.push(r),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                Ok(DistDglRunReport::Faulty { epochs: reports, error })
            }
            Scenario::Mitigated { plan, policy } => {
                let plan = plan.unwrap_or(&empty_plan);
                let mut session = self.mitigation(*policy);
                let mut reports = Vec::with_capacity(epochs as usize);
                let mut error = None;
                for epoch in 0..epochs {
                    match self.mitigated_epoch(epoch, plan, &mut session) {
                        Ok(r) => reports.push(r),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                Ok(DistDglRunReport::Mitigated { epochs: reports, error })
            }
            Scenario::Elastic { faults, elastic } => self
                .run_elastic_inner(
                    epochs,
                    faults.unwrap_or(&empty_plan),
                    &elastic.churn,
                    &NetFaultPlan::empty(),
                    &elastic.checkpoints,
                    elastic.options,
                    NetRunOptions::default(),
                )
                .map(|r| DistDglRunReport::Elastic(r.elastic)),
            Scenario::Partitioned { faults, elastic, net } => self
                .run_elastic_inner(
                    epochs,
                    faults.unwrap_or(&empty_plan),
                    &elastic.churn,
                    &net.plan,
                    &elastic.checkpoints,
                    elastic.options,
                    net.options,
                )
                .map(DistDglRunReport::Partitioned),
            Scenario::Stream { leg, partitioner } => {
                self.run_stream(leg, partitioner).map(DistDglRunReport::Stream)
            }
        }
    }

    /// The streaming dynamic-graph leg of [`DistDglEngine::run`].
    ///
    /// The engine's own graph/partition are the `t = 0` state. Each
    /// batch of the seeded mutation stream is applied to a
    /// [`StreamGraph`]; arriving vertices are placed online by an
    /// [`IncrementalVertexPartitioner`] (edge insertions and deletions
    /// never move a placed vertex), and one mini-batch epoch is trained
    /// on the resulting snapshot with the *base* split — new vertices
    /// join no train/val/test role. When the repartition policy fires
    /// (on train-vertex imbalance, the axis that stretches
    /// `steps_per_epoch`), a candidate full repartition is probed with
    /// a disabled trace and adopted only if it is no worse on *both*
    /// edge-cut ratio and probed epoch time; adoption is charged
    /// `modeled_partition_seconds` — simulated, never wall-clock —
    /// through a `Migration` span.
    fn run_stream(
        &self,
        leg: &StreamLeg,
        partitioner: Option<&str>,
    ) -> Result<StreamRunReport, DistDglError> {
        let invalid = |e: &dyn std::fmt::Display| DistDglError::InvalidConfig(e.to_string());
        leg.spec.validate().map_err(|e| invalid(&e))?;
        leg.policy.validate().map_err(|e| invalid(&e))?;
        let name = partitioner.unwrap_or("LDG");
        let full =
            full_vertex_partitioner(name, Some(self.split.train.clone())).ok_or_else(|| {
                DistDglError::InvalidConfig(format!(
                    "unknown edge-cut partitioner '{name}' for a stream run"
                ))
            })?;
        let k = self.partition.k();
        let seed = leg.spec.seed;
        let plan = StreamPlan::generate(self.graph, &leg.spec).map_err(|e| invalid(&e))?;
        let mut live = StreamGraph::new(self.graph);
        let mut inc =
            IncrementalVertexPartitioner::from_partition(name, self.graph, &self.partition, seed)
                .map_err(|e| invalid(&e))?;
        let mut report = StreamRunReport {
            partitioner: name.to_string(),
            policy: leg.policy.label(),
            batches: Vec::with_capacity(plan.len()),
        };
        let mut repartitions = 0u32;
        let mut repartition_seconds = 0.0f64;
        for (b, batch) in plan.batches().iter().enumerate() {
            let b = b as u32;
            let old_n = live.num_vertices();
            live.apply(batch).map_err(|e| invalid(&e))?;
            // Place arrivals in id order: each sees the partitions of
            // its already-placed wiring neighbours (later same-batch
            // arrivals are not placed yet and are simply not counted).
            for v in old_n..old_n + batch.new_vertices {
                let neighbors: Vec<u32> = batch
                    .inserts
                    .iter()
                    .filter(|&&(x, y)| x == v || y == v)
                    .filter_map(|&(x, y)| inc.partition_of(if x == v { y } else { x }))
                    .collect();
                inc.place_vertex(v, &neighbors).map_err(|e| invalid(&e))?;
            }
            let snapshot = live.snapshot().map_err(|e| invalid(&e))?;
            let mut part = inc.materialize(&snapshot).map_err(|e| invalid(&e))?;
            let mut repartitioned = false;
            let mut partition_seconds = 0.0;
            if leg.policy.should_fire(b, part.subset_balance(&self.split.train)) {
                let candidate =
                    full.partition_vertices(&snapshot, k, seed).map_err(|e| invalid(&e))?;
                // Adopt only if not worse on both axes: cut quality and
                // the probed epoch time it buys. This keeps
                // threshold/periodic policies no worse than `never` by
                // construction.
                if candidate.edge_cut_ratio() <= part.edge_cut_ratio()
                    && self.stream_probe(&snapshot, &candidate, b)?
                        <= self.stream_probe(&snapshot, &part, b)?
                {
                    inc = IncrementalVertexPartitioner::from_partition(
                        name, &snapshot, &candidate, seed,
                    )
                    .map_err(|e| invalid(&e))?;
                    part = candidate;
                    repartitioned = true;
                    partition_seconds =
                        modeled_partition_seconds(name, u64::from(snapshot.num_edges()));
                    repartitions += 1;
                    repartition_seconds += partition_seconds;
                    self.trace.set_epoch(b);
                    self.trace.span(
                        AGGREGATE_WORKER,
                        0,
                        TracePhase::Migration,
                        self.trace.now(),
                        partition_seconds,
                        0,
                        0,
                    );
                    self.trace.advance(partition_seconds);
                }
            }
            let epoch_seconds = {
                let inner = DistDglEngine::builder(&snapshot, &part, &self.split)
                    .config(self.config.clone())
                    .threads(self.threads)
                    .trace(self.trace.clone())
                    .build()?;
                inner.healthy_epoch(b).epoch_time()
            };
            if self.trace.is_enabled() {
                let t = &self.trace;
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_LIVE_EDGES,
                    f64::from(snapshot.num_edges()));
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_EDGE_CUT,
                    part.edge_cut_ratio());
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_BALANCE,
                    part.vertex_balance());
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_TRAIN_BALANCE,
                    part.subset_balance(&self.split.train));
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_REPARTITIONS,
                    f64::from(repartitions));
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_PARTITION_SECONDS,
                    repartition_seconds);
            }
            report.batches.push(StreamBatchReport {
                batch: b,
                num_vertices: snapshot.num_vertices(),
                num_edges: u64::from(snapshot.num_edges()),
                mutations: batch.num_mutations() as u32,
                replication_factor: 0.0,
                edge_cut: part.edge_cut_ratio(),
                balance: part.vertex_balance(),
                train_balance: part.subset_balance(&self.split.train),
                repartitioned,
                partition_seconds,
                epoch_seconds,
            });
        }
        Ok(report)
    }

    /// Probed epoch time of `part` on `snapshot` with tracing disabled —
    /// the second axis of the stream repartition adoption gate.
    fn stream_probe(
        &self,
        snapshot: &Graph,
        part: &VertexPartition,
        epoch: u32,
    ) -> Result<f64, DistDglError> {
        let probe = DistDglEngine::builder(snapshot, part, &self.split)
            .config(self.config.clone())
            .threads(self.threads)
            .trace(TraceSink::disabled())
            .build()?;
        Ok(probe.healthy_epoch(epoch).epoch_time())
    }

    /// Simulate a full epoch (samples internally).
    #[deprecated(note = "use `engine.run(&RunSpec::healthy())`")]
    pub fn simulate_epoch(&self, epoch: u32) -> EpochSummary {
        self.healthy_epoch(epoch)
    }

    /// One healthy epoch — the `Healthy` leg of [`DistDglEngine::run`].
    fn healthy_epoch(&self, epoch: u32) -> EpochSummary {
        self.trace.set_epoch(epoch);
        self.simulate_epoch_from(&self.sample_epoch(epoch))
    }

    /// Simulate a full epoch from pre-sampled mini-batches (one inner
    /// `Vec` per step). Lets grid sweeps reuse sampling across model
    /// configurations with the same layer count.
    ///
    /// # Panics
    ///
    /// Panics if `sampled` is empty.
    pub fn simulate_epoch_from(&self, sampled: &[Vec<MiniBatch>]) -> EpochSummary {
        let _prof = gp_prof::scope("distdgl.epoch");
        assert!(!sampled.is_empty(), "need at least one sampled step");
        let k = self.config.cluster.machines;
        let mut counters = ClusterCounters::new(k);
        self.observe_store_memory(&mut counters);
        let mut acc = EpochAcc::default();
        let mut unused = RecoveryReport::default();
        for (step, batches) in sampled.iter().enumerate() {
            let report = self.step_inner(batches, &mut counters, None, &mut unused, step as u32);
            acc.add(&report);
        }
        acc.into_summary(counters)
    }

    /// Book the resident feature store (plus the hot-vertex cache) of
    /// every machine into the counters' memory watermark.
    fn observe_store_memory(&self, counters: &mut ClusterCounters) {
        let fbytes = 4 * self.config.model.feature_dim as u64;
        let cache_bytes = u64::from(self.config.feature_cache_entries) * fbytes;
        for (m, owned) in self.store.owned_counts().iter().enumerate() {
            counters.machine_mut(m as u32).observe_memory(owned * fbytes + cache_bytes);
        }
    }

    /// A sibling engine over the same graph with a different ownership
    /// store (used to model the cluster after worker crashes).
    fn with_store(&self, store: PartitionedStore) -> DistDglEngine<'a> {
        DistDglEngine {
            graph: self.graph,
            store,
            partition: self.partition.clone(),
            split: self.split.clone(),
            config: self.config.clone(),
            cached: self.cached.clone(),
            // Clones share the recording buffer: spans emitted by the
            // sibling (post-crash) engine land in the same trace.
            trace: self.trace.clone(),
            threads: self.threads,
        }
    }

    /// Run one epoch under a fault plan.
    ///
    /// * **Empty plan** — returns exactly [`DistDglEngine::simulate_epoch`]
    ///   with an all-zero [`RecoveryReport`]: bit-identical to the
    ///   healthy baseline.
    /// * **Slowdowns / degradation** — phase times stretch through the
    ///   straggler rule; message loss turns into timeout/retry/backoff
    ///   overhead on remote expansions and feature fetches, flowing
    ///   through the cost model and [`StepPhases`] like any other RPC.
    /// * **Crashes** — permanent: the crashed worker's owned vertices
    ///   and training set are redistributed round-robin across the
    ///   survivors ([`PartitionedStore::with_failed`]), the in-flight
    ///   step is re-executed, and the remaining steps run on the
    ///   degraded cluster (the epoch may grow longer — the straggler
    ///   rule gates on the survivors' larger training shares).
    ///
    /// # Errors
    ///
    /// [`DistDglError::WorkerFailed`] when no survivors remain;
    /// [`DistDglError::RecoveryBudgetExceeded`] when accumulated
    /// overhead passes the plan's budget.
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan))`")]
    pub fn simulate_epoch_with_faults(
        &self,
        epoch: u32,
        plan: &FaultPlan,
    ) -> Result<FaultyEpochSummary, DistDglError> {
        self.faulty_epoch(epoch, plan)
    }

    /// One epoch under a fault plan — the `Faulty` leg of
    /// [`DistDglEngine::run`].
    fn faulty_epoch(&self, epoch: u32, plan: &FaultPlan) -> Result<FaultyEpochSummary, DistDglError> {
        self.simulate_epoch_faulty_with(
            epoch,
            plan,
            |eng, batches, counters, ctx, recovery, step| {
                eng.step_inner(batches, counters, Some(ctx), recovery, step as u32)
            },
        )
    }

    /// Shared fault-epoch skeleton (crash handling, restore accounting,
    /// budget check); `step` runs each step — the plain path passes
    /// [`DistDglEngine::step_inner`], the mitigated path
    /// [`DistDglEngine::step_mitigated`]. The engine handed to `step` is
    /// the current (possibly degraded, post-crash) cluster.
    fn simulate_epoch_faulty_with<F>(
        &self,
        epoch: u32,
        plan: &FaultPlan,
        mut step_fn: F,
    ) -> Result<FaultyEpochSummary, DistDglError>
    where
        F: FnMut(
            &DistDglEngine<'a>,
            &[MiniBatch],
            &mut ClusterCounters,
            &StepFaultCtx,
            &mut RecoveryReport,
            usize,
        ) -> StepReport,
    {
        self.trace.set_epoch(epoch);
        if plan.is_empty() {
            return Ok(FaultyEpochSummary {
                summary: self.healthy_epoch(epoch),
                recovery: RecoveryReport::default(),
                failed_workers: Vec::new(),
            });
        }
        let k = self.config.cluster.machines;
        let cluster = &self.config.cluster;
        let mut recovery = RecoveryReport::default();
        let failed_prior = plan.crashed_before(epoch);
        let crashes_now = plan.crashes_in_epoch(epoch);
        let ctx = {
            let compute_factor: Vec<f64> =
                (0..k).map(|m| plan.compute_factor(m, epoch)).collect();
            StepFaultCtx {
                network: plan.degraded_network(&cluster.network, epoch),
                min_compute_factor: compute_factor.iter().copied().fold(1.0, f64::min),
                compute_factor,
                loss_rate: plan.loss_rate(epoch),
                live_mask: full_mask(k),
            }
        };

        let eng_pre = if failed_prior.is_empty() {
            self.with_store(self.store.clone())
        } else {
            let store = self.store.with_failed(&failed_prior).ok_or_else(|| {
                DistDglError::WorkerFailed { machine: *failed_prior.last().unwrap(), epoch }
            })?;
            self.with_store(store)
        };

        let mut counters = ClusterCounters::new(k);
        eng_pre.observe_store_memory(&mut counters);
        let mut acc = EpochAcc::default();
        let fbytes = 4 * self.config.model.feature_dim as u64;

        let steps_pre = eng_pre.steps_per_epoch();
        let crash_step = crashes_now
            .iter()
            .map(|&(_, frac)| (frac * steps_pre as f64) as usize)
            .min()
            .unwrap_or(steps_pre)
            .min(steps_pre);
        for step in 0..crash_step {
            let batches = eng_pre.sample_step(epoch, step);
            let report = step_fn(&eng_pre, &batches, &mut counters, &ctx, &mut recovery, step);
            acc.add(&report);
        }

        let mut failed_workers = failed_prior;
        if !crashes_now.is_empty() {
            let mut all_failed = failed_workers.clone();
            all_failed.extend(crashes_now.iter().map(|&(m, _)| m));
            let eng_post =
                self.store.with_failed(&all_failed).map(|s| self.with_store(s)).ok_or(
                    DistDglError::WorkerFailed { machine: crashes_now[0].0, epoch },
                )?;

            // The crashed workers' feature shards are re-served from
            // persistent storage to their new owners (one bulk transfer
            // per receiving survivor).
            let mut restore_bytes = 0u64;
            let mut recv_bytes = vec![0u64; k as usize];
            for v in self.graph.vertices() {
                let new_owner = eng_post.store.owner(v);
                if eng_pre.store.owner(v) != new_owner {
                    restore_bytes += fbytes;
                    recv_bytes[new_owner as usize] += fbytes;
                    counters.machine_mut(new_owner).receive(fbytes);
                }
            }
            let messages = recv_bytes.iter().filter(|&&b| b > 0).count() as u64;
            let restore_secs = transfer_time(&ctx.network, restore_bytes, messages);
            recovery.recovery_bytes += restore_bytes;
            recovery.restore_seconds += restore_secs;
            if self.trace.is_enabled() {
                // One Recovery span per receiving survivor: the restore
                // transfer occupies the whole window (bulk transfers run
                // concurrently); bytes carry each receiver's share.
                let t = self.trace.now();
                for (m, &b) in recv_bytes.iter().enumerate() {
                    if b > 0 {
                        self.trace.span(
                            m as u32,
                            crash_step as u32,
                            TracePhase::Recovery,
                            t,
                            restore_secs,
                            b,
                            0,
                        );
                        self.trace.counter(
                            m as u32,
                            counter_names::RECOVERY_BYTES,
                            b as f64,
                        );
                    }
                }
                self.trace.advance(restore_secs);
            }
            for &(m, _) in &crashes_now {
                recovery.redistributed_train_vertices +=
                    eng_pre.store.local_train_vertices(m).len() as u64;
                failed_workers.push(m);
            }
            recovery.crashes += crashes_now.len() as u32;
            recovery.lost_progress_epochs += 1.0 / steps_pre as f64;
            eng_post.observe_store_memory(&mut counters);

            // Re-execute the lost in-flight step, then finish the epoch
            // on the degraded cluster.
            let steps_post = eng_post.steps_per_epoch().max(crash_step + 1);
            for step in crash_step..steps_post {
                let batches = eng_post.sample_step(epoch, step);
                let report =
                    step_fn(&eng_post, &batches, &mut counters, &ctx, &mut recovery, step);
                if step == crash_step {
                    recovery.reexecuted_steps += 1;
                    recovery.reexecution_seconds += report.phases.total();
                }
                acc.add(&report);
            }
        }

        let overhead = recovery.total_overhead_seconds();
        if overhead > plan.recovery_budget_secs {
            return Err(DistDglError::RecoveryBudgetExceeded {
                budget_secs: plan.recovery_budget_secs,
                needed_secs: overhead,
            });
        }
        failed_workers.sort_unstable();
        Ok(FaultyEpochSummary { summary: acc.into_summary(counters), recovery, failed_workers })
    }

    /// Per-epoch fault environment for the elastic path: like the
    /// single-epoch fault context, but the straggler floor and the
    /// all-reduce span only the live fleet.
    fn elastic_ctx(&self, plan: &FaultPlan, epoch: u32, live_mask: u64) -> StepFaultCtx {
        let k = self.config.cluster.machines;
        let compute_factor: Vec<f64> = (0..k).map(|m| plan.compute_factor(m, epoch)).collect();
        let min_compute_factor = (0..k)
            .filter(|&m| live_mask & (1u64 << m) != 0)
            .map(|m| compute_factor[m as usize])
            .fold(1.0, f64::min);
        StepFaultCtx {
            network: plan.degraded_network(&self.config.cluster.network, epoch),
            min_compute_factor,
            compute_factor,
            loss_rate: plan.loss_rate(epoch),
            live_mask,
        }
    }

    /// A sibling engine over `store` that records nothing — used to
    /// price migrate-then-commit candidates without polluting the trace.
    fn probe(&self, store: PartitionedStore) -> DistDglEngine<'a> {
        DistDglEngine {
            graph: self.graph,
            store,
            partition: self.partition.clone(),
            split: self.split.clone(),
            config: self.config.clone(),
            cached: self.cached.clone(),
            trace: TraceSink::disabled(),
            threads: self.threads,
        }
    }

    /// One epoch of the elastic run on this engine's (possibly
    /// degraded) store under `ctx`.
    fn elastic_epoch(
        &self,
        epoch: u32,
        ctx: &StepFaultCtx,
        recovery: &mut RecoveryReport,
    ) -> EpochSummary {
        let mut counters = ClusterCounters::new(self.config.cluster.machines);
        self.observe_store_memory(&mut counters);
        let mut acc = EpochAcc::default();
        for step in 0..self.steps_per_epoch() {
            let batches = self.sample_step(epoch, step);
            let report = self.step_inner(&batches, &mut counters, Some(ctx), recovery, step as u32);
            acc.add(&report);
        }
        acc.into_summary(counters)
    }

    /// Multi-epoch run under a fault plan *and* an elastic membership
    /// schedule, with a crash-consistent [`CheckpointStore`] — the
    /// DistDGL counterpart of the DistGNN engine's elastic path.
    ///
    /// Ownership is the elastic primitive: every membership change maps
    /// to a new [`PartitionedStore`] layout. Features are immutable, so
    /// a shard can always be re-served from the snapshot store (or the
    /// raw input files); model parameters are replicated on every
    /// worker by the gradient all-reduce, so as long as one live worker
    /// remains no training progress is lost at an epoch boundary.
    ///
    /// Per epoch, in order:
    ///
    /// 1. **Leaves** (churn) take effect at the epoch start: the
    ///    departing worker's owned vertices and training set move to
    ///    the survivors ([`PartitionedStore::with_failed`] — minimal
    ///    movement). With `opts.graceful_handoff` the leaver streams
    ///    its feature shard to the new owners before going
    ///    ([`TracePhase::Migration`]); otherwise the new owners re-serve
    ///    it from the newest *valid* snapshot (corrupt ones are detected
    ///    and walked past, a missing one falls back to the raw input
    ///    files) and the transfer rides the possibly-degraded network.
    /// 2. **Joins** bring back exactly the slot's pristine shard
    ///    ([`PartitionedStore::with_rejoined`]), reloaded from the
    ///    newest valid snapshot (or raw input), plus the current model
    ///    replica from a survivor. With `opts.rebalance_on_join` a
    ///    *global* rebalance to the canonical live-set layout
    ///    ([`PartitionedStore::with_members`]) is then attempted under
    ///    migrate-then-commit: both layouts are priced and the rebalance
    ///    commits only when the speed-up pays for the migration within
    ///    this epoch (otherwise it is deferred and retried).
    /// 3. The epoch runs on the live layout (absent workers hold no
    ///    vertices, the all-reduce spans only live workers).
    /// 4. **Crashes** (fault plan) repair in place — the slot restarts
    ///    on a replacement before the next epoch, reloading its shard
    ///    from the snapshot store and re-fetching parameters from a
    ///    survivor; only the in-flight step is re-executed.
    /// 5. A snapshot is written when `ckpt` says one is due (live
    ///    shards only; commit is atomic at the epoch boundary).
    ///
    /// # Errors
    ///
    /// [`DistDglError::WorkerFailed`] when the live set would drop to
    /// zero, or on a crash with one live worker and no checkpointing;
    /// [`DistDglError::RecoveryBudgetExceeded`] when the accumulated
    /// overhead passes the plan's budget.
    ///
    /// # Panics
    ///
    /// Panics if `ckpt` enables checkpointing with zero retention or a
    /// non-positive bandwidth (see [`CheckpointStore::new`]).
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan).elastic(churn, ckpt, opts))`")]
    pub fn simulate_run_elastic(
        &self,
        epochs: u32,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        ckpt: &CheckpointConfig,
        opts: ElasticOptions,
    ) -> Result<ElasticRunReport, DistDglError> {
        self.run_elastic_inner(
            epochs,
            faults,
            churn,
            &NetFaultPlan::empty(),
            ckpt,
            opts,
            NetRunOptions::default(),
        )
        .map(|r| r.elastic)
    }

    /// [`DistDglEngine::simulate_run_elastic`] under a message-level
    /// network fault plan: per-message loss/duplication/reorder noise
    /// on every flow, and [`gp_cluster::PartitionWindow`]s splitting the
    /// live fleet into a quorum island and a minority island.
    ///
    /// While a window is armed, the run picks one of two modes for the
    /// whole window by pricing both with the adopt-only probe pattern:
    ///
    /// * **Degraded** — sampling and training redistribute to the
    ///   quorum side ([`PartitionedStore::with_failed`] over the
    ///   minority island); feature fetches that would cross the cut are
    ///   *deferred* — served from the local feature cache and the
    ///   snapshot store instead of the unreachable owners — with
    ///   explicit bounded-staleness accounting. After heal, the
    ///   minority shards stream back (catch-up).
    /// * **Abort** — every window epoch is burned and re-executed after
    ///   heal, plus a restore from the newest valid snapshot.
    ///
    /// Degraded mode is adopted only when its priced cost (including
    /// catch-up and transport noise) is at most the abort price, so the
    /// degraded run is never worse than the abort-and-recover baseline
    /// (`NetRunOptions::abort_only`) *by construction*. Churn, crashes,
    /// rebalances and checkpoint writes defer to the first post-window
    /// epoch in both modes, keeping persistent state evolution
    /// identical. An empty `net` plan reproduces
    /// `simulate_run_elastic` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistDglEngine::simulate_run_elastic`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`DistDglEngine::simulate_run_elastic`].
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan).elastic(..).net(..))`")]
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_run_partitioned(
        &self,
        epochs: u32,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        net: &NetFaultPlan,
        ckpt: &CheckpointConfig,
        opts: ElasticOptions,
        nopts: NetRunOptions,
    ) -> Result<PartitionedRunReport, DistDglError> {
        self.run_elastic_inner(epochs, faults, churn, net, ckpt, opts, nopts)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_elastic_inner(
        &self,
        epochs: u32,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        net: &NetFaultPlan,
        ckpt: &CheckpointConfig,
        opts: ElasticOptions,
        nopts: NetRunOptions,
    ) -> Result<PartitionedRunReport, DistDglError> {
        let cluster = &self.config.cluster;
        let k = cluster.machines;
        let full = full_mask(k);
        let fbytes = 4 * self.config.model.feature_dim as u64;
        let param_bytes = model_param_count(&self.config.model) * 4;
        // Parameters, gradients and optimiser state ride in snapshots.
        let model_bytes = param_bytes * 3;
        let sink = &self.trace;

        let mut fleet = Fleet::full(k);
        let mut store = CheckpointStore::new(*ckpt);
        let mut out = ElasticRunReport::default();
        let mut netr = NetRunReport::default();
        let noisy = net.has_noise();

        // Transport noise on one epoch's flows: per-step gradient
        // all-reduce and the counted sampling/feature-fetch exchange. A
        // pure function of the epoch counters and config, so the
        // adopt-only probes price exactly what execution charges.
        let noise_for = |counters: &ClusterCounters, live: u64, we: u32| -> gp_cluster::NetCharge {
            let mut total = gp_cluster::NetCharge::default();
            if !noisy {
                return total;
            }
            let net_at = faults.degraded_network(&cluster.network, we);
            let sync_msgs = 2 * u64::from(live.count_ones().saturating_sub(1));
            total.merge(&noise_charge(
                net,
                MessageKind::GradientSync,
                we,
                0,
                sync_msgs,
                2 * param_bytes,
                &net_at,
            ));
            let mut fetch_msgs = 0u64;
            let mut fetch_bytes = 0u64;
            for m in 0..k {
                if live & (1u64 << m) != 0 {
                    let c = counters.machine(m);
                    fetch_msgs += c.messages;
                    fetch_bytes += c.bytes_sent;
                }
            }
            total.merge(&noise_charge(
                net,
                MessageKind::FeatureFetch,
                we,
                1,
                fetch_msgs,
                fetch_bytes,
                &net_at,
            ));
            total
        };

        // The ownership layout actually carrying work.
        let mut active = full;
        let mut layout = self.store.clone();
        // A join restores only its own shard; a global rebalance is
        // attempted each epoch until one commits (or none is needed).
        let mut rebalance_pending = false;

        // Sticky per-window degraded-mode state (armed windows only),
        // plus the membership/fault events deferred until heal.
        struct WindowState {
            entered: u32,
            until: u32,
            degraded: bool,
            quorum: u64,
            deg_layout: PartitionedStore,
            deferred_per_epoch: u64,
            catchup_bytes: u64,
            catchup_secs: f64,
        }
        let mut win: Option<WindowState> = None;
        let mut deferred_leaves: Vec<u32> = Vec::new();
        let mut deferred_joins: Vec<u32> = Vec::new();
        let mut deferred_crashes: Vec<(u32, f64)> = Vec::new();

        for epoch in 0..epochs {
            sink.set_epoch(epoch);
            let network = faults.degraded_network(&cluster.network, epoch);

            // --- Arm a partition window covering this epoch (inert
            // when either island misses the active set). Mode is
            // decided once for the whole window: both alternatives are
            // priced with disabled probes, and degraded is adopted only
            // when it fits the staleness budget and costs at most the
            // abort. ---
            if win.is_none() && !net.windows.is_empty() {
                if let Some(w) = net.window_at(epoch) {
                    let minority = w.minority & active;
                    let quorum = active & !w.minority;
                    if minority != 0 && quorum != 0 {
                        let until = w.until_epoch.min(epochs);
                        let cut: Vec<u32> =
                            (0..k).filter(|&m| minority & (1u64 << m) != 0).collect();
                        let deg_layout =
                            layout.with_failed(&cut).expect("quorum side is non-empty");
                        let owned = layout.owned_counts();
                        let deferred_per_epoch: u64 =
                            cut.iter().map(|&m| owned[m as usize]).sum();
                        let catchup_bytes = deferred_per_epoch * fbytes;
                        let catchup_secs =
                            transfer_time(&network, catchup_bytes, cut.len() as u64);
                        // Abort restore: live machines reload the newest
                        // valid snapshot in parallel (wall time = the
                        // slowest shard).
                        let mut restore_secs = 0.0f64;
                        let mut restore_bytes = 0u64;
                        let mut restore_corrupt = 0u64;
                        for m in 0..k {
                            if active & (1u64 << m) != 0 {
                                let r = store.restore(m, faults);
                                restore_secs = restore_secs.max(r.seconds);
                                restore_bytes += r.bytes_read;
                                restore_corrupt += r.corrupted;
                            }
                        }
                        let mut deg_price = catchup_secs;
                        let mut abort_price = restore_secs;
                        for we in epoch..until {
                            let mut scratch = RecoveryReport::default();
                            let dctx = self.elastic_ctx(faults, we, quorum);
                            let dsum = self
                                .probe(deg_layout.clone())
                                .elastic_epoch(we, &dctx, &mut scratch);
                            deg_price += dsum.epoch_time()
                                + scratch.retry_seconds
                                + noise_for(&dsum.counters, quorum, we).extra_secs;
                            let mut scratch = RecoveryReport::default();
                            let fctx = self.elastic_ctx(faults, we, active);
                            let fsum = self
                                .probe(layout.clone())
                                .elastic_epoch(we, &fctx, &mut scratch);
                            // Burned attempt + post-heal re-execution.
                            abort_price += fsum.epoch_time()
                                + scratch.retry_seconds
                                + noise_for(&fsum.counters, active, we).extra_secs
                                + fsum.epoch_time();
                        }
                        let degraded = nopts.degraded
                            && until - epoch <= net.staleness_bound
                            && deg_price <= abort_price;
                        netr.windows += 1;
                        if degraded {
                            netr.degraded_windows += 1;
                        } else {
                            netr.aborted_windows += 1;
                            out.recovery.restore_seconds += restore_secs;
                            out.recovery.recovery_bytes += restore_bytes;
                            out.recovery.corrupted_checkpoints += restore_corrupt;
                            if sink.is_enabled() && (restore_bytes > 0 || restore_secs > 0.0) {
                                sink.span(
                                    0,
                                    0,
                                    TracePhase::Recovery,
                                    sink.now(),
                                    restore_secs,
                                    restore_bytes,
                                    0,
                                );
                                sink.advance(restore_secs);
                            }
                        }
                        win = Some(WindowState {
                            entered: epoch,
                            until,
                            degraded,
                            quorum,
                            deg_layout,
                            deferred_per_epoch,
                            catchup_bytes,
                            catchup_secs,
                        });
                    }
                }
            }
            let in_window = win.is_some();

            let (mut leave_evs, mut join_evs) = churn.events_at(epoch);
            if in_window {
                // Membership changes wait out the partition: neither
                // island can coordinate a handoff or admission across
                // the cut, and deferring them identically in both modes
                // keeps the adopt-only probes exact.
                deferred_leaves.append(&mut leave_evs);
                deferred_joins.append(&mut join_evs);
            } else {
                if !deferred_leaves.is_empty() {
                    deferred_leaves.append(&mut leave_evs);
                    leave_evs = std::mem::take(&mut deferred_leaves);
                }
                if !deferred_joins.is_empty() {
                    deferred_joins.append(&mut join_evs);
                    join_evs = std::mem::take(&mut deferred_joins);
                }
            }

            for &w in &leave_evs {
                if !fleet.is_live(w) {
                    continue;
                }
                fleet.mark_left(w);
                out.leaves += 1;
                if active & (1u64 << w) == 0 {
                    continue;
                }
                active &= !(1u64 << w);
                if active == 0 {
                    return Err(DistDglError::WorkerFailed { machine: w, epoch });
                }
                let next = layout.with_failed(&[w]).expect("live set is non-empty");
                let mut moved = 0u64;
                let mut receivers = 0u64;
                for v in self.graph.vertices() {
                    let new = next.owner(v);
                    if layout.owner(v) != new {
                        moved += 1;
                        receivers |= 1u64 << new;
                    }
                }
                out.recovery.redistributed_train_vertices +=
                    layout.local_train_vertices(w).len() as u64;
                let bytes = moved * fbytes;
                let msgs = u64::from(receivers.count_ones());
                if opts.graceful_handoff {
                    // The leaver streams its feature shard to the new
                    // owners before departing; parameters need no
                    // handoff — every survivor already has the replica.
                    let secs = transfer_time(&network, bytes, msgs);
                    out.handoffs += 1;
                    out.handoff_bytes += bytes;
                    out.handoff_seconds += secs;
                    if noisy {
                        netr.absorb(&noise_charge(
                            net,
                            MessageKind::ShardHandoff,
                            epoch,
                            w,
                            msgs,
                            bytes,
                            &network,
                        ));
                    }
                    if sink.is_enabled() {
                        sink.span(w, 0, TracePhase::Migration, sink.now(), secs, bytes, 0);
                        sink.counter(w, counter_names::MIGRATION_BYTES, bytes as f64);
                        sink.advance(secs);
                    }
                } else {
                    // Unannounced: the new owners re-serve the shard
                    // from the newest valid snapshot — detected-corrupt
                    // ones are walked past — or from the raw input
                    // files when no snapshot survives.
                    out.recovery.crashes += 1;
                    let r = store.restore(w, faults);
                    out.recovery.corrupted_checkpoints += r.corrupted;
                    let mut rbytes = r.bytes_read;
                    let mut secs = r.seconds;
                    if r.epoch.is_none() {
                        rbytes += bytes;
                        secs += bytes as f64 / ckpt.read_bw;
                    }
                    rbytes += bytes;
                    secs += transfer_time(&network, bytes, msgs);
                    out.recovery.recovery_bytes += rbytes;
                    out.recovery.restore_seconds += secs;
                    if sink.is_enabled() && msgs > 0 {
                        let t = sink.now();
                        let share = rbytes / msgs;
                        for m in 0..k {
                            if receivers & (1u64 << m) == 0 {
                                continue;
                            }
                            sink.span(m, 0, TracePhase::Recovery, t, secs, share, 0);
                            sink.counter(m, counter_names::RECOVERY_BYTES, share as f64);
                        }
                        sink.advance(secs);
                    }
                }
                layout = next;
            }

            for &w in &join_evs {
                if fleet.is_live(w) {
                    continue;
                }
                fleet.mark_joined(w);
                out.joins += 1;
                active |= 1u64 << w;
                let next = layout.with_rejoined(w, &self.store);
                let mut moved = 0u64;
                for v in self.graph.vertices() {
                    if layout.owner(v) != next.owner(v) {
                        moved += 1;
                    }
                }
                // The joiner reloads its returning shard from the
                // newest valid snapshot (features are immutable, so any
                // epoch's snapshot serves), falling back to the raw
                // input files, and re-fetches the current model replica
                // from a survivor.
                let r = store.restore(w, faults);
                out.recovery.corrupted_checkpoints += r.corrupted;
                let mut bytes = r.bytes_read;
                let mut secs = r.seconds;
                if r.epoch.is_none() && moved > 0 {
                    bytes += moved * fbytes;
                    secs += (moved * fbytes) as f64 / ckpt.read_bw;
                }
                bytes += param_bytes;
                secs += transfer_time(&network, param_bytes, 1);
                out.recovery.recovery_bytes += bytes;
                out.recovery.restore_seconds += secs;
                if sink.is_enabled() {
                    sink.span(w, 0, TracePhase::Recovery, sink.now(), secs, bytes, 0);
                    sink.counter(w, counter_names::RECOVERY_BYTES, bytes as f64);
                    sink.advance(secs);
                }
                layout = next;
            }
            if !join_evs.is_empty() {
                rebalance_pending = opts.rebalance_on_join;
            }

            // Optional global rebalance, migrate-then-commit: price the
            // epoch under the current (repair-accreted) layout and under
            // the canonical live-set layout; commit only when the
            // speed-up pays for the feature migration within this
            // epoch, retrying every epoch until it does.
            if rebalance_pending && win.is_none() {
                let live: Vec<u32> = (0..k).filter(|&m| active & (1u64 << m) != 0).collect();
                let cand = self.store.with_members(&live).expect("live set is non-empty");
                let mut moved = 0u64;
                let mut receivers = 0u64;
                for v in self.graph.vertices() {
                    let new = cand.owner(v);
                    if layout.owner(v) != new {
                        moved += 1;
                        receivers |= 1u64 << new;
                    }
                }
                if moved == 0 {
                    rebalance_pending = false; // already canonical
                } else {
                    let mig_bytes = moved * fbytes;
                    let mig_secs =
                        transfer_time(&network, mig_bytes, u64::from(receivers.count_ones()));
                    let ctx = self.elastic_ctx(faults, epoch, active);
                    let mut scratch = RecoveryReport::default();
                    let cur_time = self
                        .probe(layout.clone())
                        .elastic_epoch(epoch, &ctx, &mut scratch)
                        .epoch_time();
                    let cand_time = self
                        .probe(cand.clone())
                        .elastic_epoch(epoch, &ctx, &mut scratch)
                        .epoch_time();
                    if cand_time + mig_secs < cur_time {
                        layout = cand;
                        out.rebalances += 1;
                        out.handoff_bytes += mig_bytes;
                        out.handoff_seconds += mig_secs;
                        rebalance_pending = false;
                        if noisy {
                            netr.absorb(&noise_charge(
                                net,
                                MessageKind::ShardHandoff,
                                epoch,
                                k,
                                moved,
                                mig_bytes,
                                &network,
                            ));
                        }
                        if sink.is_enabled() {
                            let t = sink.now();
                            let n = u64::from(receivers.count_ones().max(1));
                            let share = mig_bytes / n;
                            for m in 0..k {
                                if receivers & (1u64 << m) == 0 {
                                    continue;
                                }
                                sink.span(m, 0, TracePhase::Migration, t, mig_secs, share, 0);
                                sink.counter(m, counter_names::MIGRATION_BYTES, share as f64);
                            }
                            sink.advance(mig_secs);
                        }
                    } else {
                        out.rejected_rebalances += 1;
                    }
                }
            }

            // --- The epoch itself. Inside a degraded window sampling
            // and training redistribute to the quorum island (minority
            // fetches deferred to cache and snapshots); inside an abort
            // window the epoch runs on the full layout but is burned —
            // re-executed after heal. ---
            let (summary, epoch_live) = match &win {
                Some(w) if w.degraded => {
                    let ctx = self.elastic_ctx(faults, epoch, w.quorum);
                    let eng = self.with_store(w.deg_layout.clone()); // shares the trace
                    let s = eng.elastic_epoch(epoch, &ctx, &mut out.recovery);
                    netr.degraded_epochs += 1;
                    netr.deferred_fetches += w.deferred_per_epoch;
                    netr.stale_served += s.cache_hits;
                    (s, w.quorum)
                }
                _ => {
                    let ctx = self.elastic_ctx(faults, epoch, active);
                    let eng = self.with_store(layout.clone()); // shares the trace
                    let s = eng.elastic_epoch(epoch, &ctx, &mut out.recovery);
                    (s, active)
                }
            };
            let epoch_time = summary.epoch_time();
            let steps = summary.steps.max(1);
            out.epoch_seconds.push(epoch_time);
            out.phase_seconds.push(summary.phase_breakdown());
            out.live_workers.push((0..k).filter(|&m| epoch_live & (1u64 << m) != 0).collect());
            if noisy {
                netr.absorb(&noise_for(&summary.counters, epoch_live, epoch));
            }
            if let Some(w) = &win {
                netr.partitioned_epochs += 1;
                netr.max_staleness = netr.max_staleness.max(epoch - w.entered + 1);
                if !w.degraded {
                    // Burned attempt: the abort baseline re-executes
                    // this epoch after heal.
                    netr.aborted_epochs += 1;
                    out.recovery.lost_progress_epochs += 1.0;
                    out.recovery.reexecuted_steps += 1;
                    out.recovery.reexecution_seconds += epoch_time;
                }
            }

            // --- Crashes repair in place: the slot restarts on a
            // replacement before the next epoch and stays active.
            // During a partition window repairs cannot reach across the
            // cut, so crash handling waits for heal (in both modes). ---
            let mut crash_evs = faults.crashes_in_epoch(epoch);
            if in_window {
                deferred_crashes.append(&mut crash_evs);
            } else if !deferred_crashes.is_empty() {
                deferred_crashes.append(&mut crash_evs);
                crash_evs = std::mem::take(&mut deferred_crashes);
            }
            for (machine, _frac) in crash_evs {
                if machine >= k || active & (1u64 << machine) == 0 {
                    continue;
                }
                if active.count_ones() == 1 && ckpt.every == 0 {
                    return Err(DistDglError::WorkerFailed { machine, epoch });
                }
                out.recovery.crashes += 1;
                let shard = layout.owned_counts()[machine as usize] * fbytes;
                let r = store.restore(machine, faults);
                out.recovery.corrupted_checkpoints += r.corrupted;
                let mut bytes = r.bytes_read;
                let mut secs = r.seconds;
                if r.epoch.is_none() {
                    bytes += shard;
                    secs += shard as f64 / ckpt.read_bw;
                }
                // Only the in-flight step is lost — the all-reduce left
                // the previous step's parameters on every live worker.
                // A sole survivor has no replica to fetch from and falls
                // back to the snapshot's (older) parameters instead.
                let mut lost = 1.0 / steps as f64;
                if active.count_ones() > 1 {
                    bytes += param_bytes;
                    secs += transfer_time(&network, param_bytes, 1);
                } else {
                    lost += match r.epoch {
                        Some(re) => (f64::from(epoch) - 1.0 - f64::from(re)).max(0.0),
                        None => f64::from(epoch),
                    };
                }
                out.recovery.recovery_bytes += bytes;
                out.recovery.restore_seconds += secs;
                out.recovery.lost_progress_epochs += lost;
                out.recovery.reexecuted_steps += 1;
                let reexec = lost * epoch_time;
                out.recovery.reexecution_seconds += reexec;
                if sink.is_enabled() {
                    let dur = secs + reexec;
                    sink.span(machine, 0, TracePhase::Recovery, sink.now(), dur, bytes, 0);
                    sink.counter(machine, counter_names::RECOVERY_BYTES, bytes as f64);
                    sink.advance(dur);
                }
            }

            // --- Snapshot (live shards only; commit is atomic at the
            // epoch boundary, so a later crash can never see a torn
            // snapshot of this epoch). Skipped during partition windows:
            // the store is not reachable from both islands, and a torn
            // cross-island snapshot must never become restorable. ---
            if store.due(epoch) && win.is_none() {
                let owned = layout.owned_counts();
                let shards: Vec<u64> = (0..k)
                    .map(|m| {
                        if active & (1u64 << m) != 0 {
                            model_bytes + owned[m as usize] * fbytes
                        } else {
                            0
                        }
                    })
                    .collect();
                let shard_total: u64 = shards.iter().sum();
                let wr = store.write(epoch, shards);
                out.recovery.checkpoints += 1;
                out.recovery.checkpoint_seconds += wr.seconds;
                if noisy {
                    netr.absorb(&noise_charge(
                        net,
                        MessageKind::CheckpointWrite,
                        epoch,
                        0,
                        u64::from(active.count_ones()),
                        shard_total,
                        &network,
                    ));
                }
                if sink.is_enabled() {
                    let t = sink.now();
                    let snap = store.snapshots().last().expect("just written");
                    for m in 0..k {
                        if active & (1u64 << m) == 0 {
                            continue;
                        }
                        sink.span(m, 0, TracePhase::Checkpoint, t, wr.seconds, 0, 0);
                        sink.counter(
                            m,
                            counter_names::CHECKPOINT_BYTES,
                            snap.shard_bytes[m as usize] as f64,
                        );
                    }
                    sink.advance(wr.seconds);
                }
            }

            // --- Window heal: after the last window epoch the minority
            // island streams its feature shards back in (degraded mode
            // only; the abort path restored at entry instead). ---
            if win.as_ref().is_some_and(|w| epoch + 1 >= w.until) {
                let w = win.take().expect("healed window");
                if w.degraded {
                    netr.catchup_bytes += w.catchup_bytes;
                    netr.catchup_seconds += w.catchup_secs;
                    if sink.is_enabled() && (w.catchup_bytes > 0 || w.catchup_secs > 0.0) {
                        sink.span(
                            0,
                            0,
                            TracePhase::Recovery,
                            sink.now(),
                            w.catchup_secs,
                            w.catchup_bytes,
                            0,
                        );
                        sink.advance(w.catchup_secs);
                    }
                }
            }

            if sink.is_enabled() && !net.is_empty() {
                sink.counter(0, counter_names::NET_RETRIES, netr.noise.retries as f64);
                sink.counter(0, counter_names::NET_RETRY_SECONDS, netr.noise.extra_secs);
                sink.counter(
                    0,
                    counter_names::NET_DUP_DISCARDED,
                    netr.noise.dup_discarded as f64,
                );
                sink.counter(
                    0,
                    counter_names::NET_PARTITION_EPOCHS,
                    f64::from(netr.partitioned_epochs),
                );
            }

            let overhead = out.recovery.total_overhead_seconds();
            if overhead > faults.recovery_budget_secs {
                return Err(DistDglError::RecoveryBudgetExceeded {
                    budget_secs: faults.recovery_budget_secs,
                    needed_secs: overhead,
                });
            }
            out.completed_epochs = epoch + 1;
        }
        Ok(PartitionedRunReport { elastic: out, net: netr })
    }

    /// A fresh mitigation session for this cluster under `policy`. The
    /// detector observes per-step worker times (`policy.detector` is
    /// tuned for that granularity by default).
    pub fn mitigation(&self, policy: MitigationPolicy) -> DistDglMitigation {
        DistDglMitigation {
            detector: StragglerDetector::new(self.config.cluster.machines, policy.detector),
            policy,
        }
    }

    /// Run one epoch under a fault plan with straggler mitigation.
    ///
    /// DistDGL's mitigations are **work stealing** (workers that finish
    /// their mini-batch early absorb a flagged straggler's remaining
    /// work, paying extra remote fetches for stolen inputs that were
    /// local to the straggler) and **speculative re-execution** (a
    /// worker blowing past the detector-derived deadline has its step
    /// re-launched on the fastest idle worker; the earlier finisher
    /// wins, the loser's work is wasted). Every per-step decision is
    /// guarded: the mitigated step is adopted only when strictly faster
    /// than the unmitigated one, so a mitigated epoch is never slower
    /// than the plain fault path. The detector only ever sees the
    /// *pre-mitigation* worker times — mitigation must not mask the
    /// fault from its own monitor.
    ///
    /// With an empty plan, or a policy enabling neither mechanism, this
    /// is exactly [`DistDglEngine::simulate_epoch_with_faults`],
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`DistDglEngine::simulate_epoch_with_faults`].
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan).mitigate(policy))`")]
    pub fn simulate_epoch_mitigated(
        &self,
        epoch: u32,
        plan: &FaultPlan,
        session: &mut DistDglMitigation,
    ) -> Result<MitigatedEpochSummary, DistDglError> {
        self.mitigated_epoch(epoch, plan, session)
    }

    /// One epoch under faults + mitigation — the `Mitigated` leg of
    /// [`DistDglEngine::run`].
    fn mitigated_epoch(
        &self,
        epoch: u32,
        plan: &FaultPlan,
        session: &mut DistDglMitigation,
    ) -> Result<MitigatedEpochSummary, DistDglError> {
        if plan.is_empty() || (!session.policy.work_stealing && !session.policy.speculation) {
            let base = self.faulty_epoch(epoch, plan)?;
            return Ok(MitigatedEpochSummary {
                summary: base.summary,
                recovery: base.recovery,
                mitigation: MitigationReport::default(),
                failed_workers: base.failed_workers,
            });
        }
        let mut mitigation = MitigationReport::default();
        let base = self.simulate_epoch_faulty_with(
            epoch,
            plan,
            |eng, batches, counters, ctx, recovery, step| {
                eng.step_mitigated(
                    batches,
                    counters,
                    ctx,
                    recovery,
                    session,
                    &mut mitigation,
                    step as u32,
                )
            },
        )?;
        Ok(MitigatedEpochSummary {
            summary: base.summary,
            recovery: base.recovery,
            mitigation,
            failed_workers: base.failed_workers,
        })
    }

    /// One mitigated step: computes every worker's cost exactly as
    /// [`DistDglEngine::step_inner`] would (same counter bookings, same
    /// fold order), builds a steal/speculation candidate from the
    /// detector state, and adopts it only if strictly faster.
    #[allow(clippy::too_many_arguments)]
    fn step_mitigated(
        &self,
        batches: &[MiniBatch],
        counters: &mut ClusterCounters,
        ctx: &StepFaultCtx,
        recovery: &mut RecoveryReport,
        session: &mut DistDglMitigation,
        mitigation: &mut MitigationReport,
        step: u32,
    ) -> StepReport {
        let cluster = &self.config.cluster;
        let network = ctx.network;
        let model = &self.config.model;
        let k = cluster.machines;
        let fbytes = 4 * model.feature_dim as u64;

        let mut costs: Vec<WorkerCost> = Vec::with_capacity(batches.len());
        let mut cache_hits = 0u64;
        for (w, batch) in batches.iter().enumerate() {
            let wc = self.worker_step_cost(w as u32, batch, counters, Some(ctx), recovery);
            cache_hits += wc.cache_hits;
            costs.push(wc);
        }
        let wps: Vec<StepPhases> = costs.iter().map(|c| c.phases).collect();
        let active: Vec<bool> = batches.iter().map(|b| !b.seeds.is_empty()).collect();
        let pre_times: Vec<f64> = wps.iter().map(StepPhases::total).collect();
        // Input features local to worker `w` — the bytes that turn into
        // remote fetches when its work runs somewhere else.
        let local_input_bytes = |w: usize| {
            (batches[w].stats.input_vertices - batches[w].stats.remote_input_vertices) * fbytes
        };

        // Build the mitigation candidate on a copy of the per-worker
        // phases; counter bookings are deferred until adoption.
        let mut mit_wps = wps.clone();
        let mut candidate = MitigationReport::default();
        let mut extra_traffic: Vec<(u32, u64, u64)> = Vec::new(); // (machine, sent, received)

        let mut steal_target = None;
        if session.policy.work_stealing {
            let target = (0..batches.len())
                .filter(|&w| active[w] && session.detector.is_straggler(w as u32))
                .max_by(|&a, &b| pre_times[a].total_cmp(&pre_times[b]));
            if let Some(s) = target {
                let t_s = pre_times[s];
                let elev = session.detector.elevation(s as u32).max(1.0);
                let mut helpers: Vec<(usize, f64)> = (0..batches.len())
                    .filter(|&w| {
                        w != s
                            && active[w]
                            && !session.detector.is_straggler(w as u32)
                            && pre_times[w] < t_s
                    })
                    .map(|w| (w, pre_times[w]))
                    .collect();
                helpers.sort_by(|a, b| a.1.total_cmp(&b.1));
                let helper_times: Vec<f64> = helpers.iter().map(|&(_, t)| t).collect();
                if t_s > 0.0 {
                    if let Some((t_eq, m)) = steal_equalized_time(t_s, &helper_times, elev) {
                        let stolen_frac = 1.0 - t_eq / t_s;
                        let stolen_bytes = (stolen_frac * local_input_bytes(s) as f64) as u64;
                        // Each helper fetches its share of the stolen
                        // inputs before it can work on them.
                        let fetch = transfer_time(&network, stolen_bytes / m as u64, 1);
                        let finish = t_eq + fetch;
                        if stolen_frac > 0.0 && finish < t_s {
                            scale_phases(&mut mit_wps[s], finish / t_s);
                            candidate.stolen_steps += 1;
                            candidate.stolen_bytes += stolen_bytes;
                            extra_traffic.push((s as u32, stolen_bytes, 0));
                            for &(h, _) in helpers.iter().take(m) {
                                extra_traffic.push((h as u32, 0, stolen_bytes / m as u64));
                            }
                            steal_target = Some(s);
                        }
                    }
                }
            }
        }

        if session.policy.speculation {
            if let Some(deadline) = session.detector.deadline() {
                let offender = (0..batches.len())
                    .filter(|&w| active[w] && steal_target != Some(w) && pre_times[w] > deadline)
                    .max_by(|&a, &b| pre_times[a].total_cmp(&pre_times[b]));
                let backup = offender.and_then(|w| {
                    (0..batches.len())
                        .filter(|&b| b != w && active[b])
                        .min_by(|&a, &b| pre_times[a].total_cmp(&pre_times[b]))
                });
                if let (Some(w), Some(backup)) = (offender, backup) {
                    let t_w = pre_times[w];
                    // The backup re-runs the step at (estimated) nominal
                    // speed, launching when the deadline passes; it must
                    // first fetch the inputs local to the offender.
                    let est = t_w / session.detector.elevation(w as u32).max(1.0);
                    let spec_bytes = local_input_bytes(w);
                    let backup_exec = est + transfer_time(&network, spec_bytes, 1);
                    let t_backup = deadline + backup_exec;
                    if t_backup < t_w {
                        scale_phases(&mut mit_wps[w], t_backup / t_w);
                        candidate.speculated_steps += 1;
                        candidate.speculation_wins += 1;
                        candidate.speculation_bytes += spec_bytes;
                        candidate.speculation_wasted_secs += backup_exec;
                        extra_traffic.push((w as u32, spec_bytes, 0));
                        extra_traffic.push((backup as u32, 0, spec_bytes));
                    }
                }
            }
        }

        // Gate both variants with step_inner's exact fold order, then
        // adopt the candidate only if strictly faster.
        let gate = |wps: &[StepPhases]| {
            let mut phases = StepPhases::default();
            for wp in wps {
                phases.sampling = phases.sampling.max(wp.sampling);
                phases.feature_load = phases.feature_load.max(wp.feature_load);
                phases.forward = phases.forward.max(wp.forward);
                phases.backward = phases.backward.max(wp.backward);
            }
            let param_bytes = model_param_count(model) * 4;
            phases.backward = phases
                .backward
                .max(gp_cluster::time::allreduce_time(&network, param_bytes, k));
            phases.update = compute_time(&cluster.machine, model_param_count(model) * 10);
            phases.update /= ctx.min_compute_factor;
            phases
        };
        let unmit = gate(&wps);
        let mit = gate(&mit_wps);
        let adopted = !extra_traffic.is_empty() && mit.total() < unmit.total();
        let (phases, chosen) = if adopted {
            candidate.time_saved_secs = unmit.total() - mit.total();
            mitigation.merge(&candidate);
            for &(m, sent, received) in &extra_traffic {
                let c = counters.machine_mut(m);
                if sent > 0 {
                    c.send(sent);
                }
                if received > 0 {
                    c.receive(received);
                }
            }
            if self.trace.is_enabled() {
                // Cluster-wide mitigation counters (attributed to worker
                // 0, like DistGNN's migration span).
                if candidate.stolen_steps > 0 {
                    self.trace.counter(
                        0,
                        counter_names::STOLEN_BYTES,
                        candidate.stolen_bytes as f64,
                    );
                }
                if candidate.speculated_steps > 0 {
                    self.trace.counter(
                        0,
                        counter_names::SPECULATION_BYTES,
                        candidate.speculation_bytes as f64,
                    );
                }
            }
            (mit, &mit_wps)
        } else {
            (unmit, &wps)
        };

        // Epoch-level bookings identical to step_inner.
        let param_bytes = model_param_count(model) * 4;
        for m in 0..k {
            counters.machine_mut(m).send(param_bytes);
            counters.machine_mut(m).receive(param_bytes);
        }
        let opt_flops = model_param_count(model) * 10;
        for m in 0..k {
            counters.machine_mut(m).flops += opt_flops;
        }

        let mut worker_times = Vec::with_capacity(batches.len());
        let mut input_vertices = Vec::with_capacity(batches.len());
        let mut remote_vertices = Vec::with_capacity(batches.len());
        for (w, batch) in batches.iter().enumerate() {
            worker_times.push(chosen[w].sampling + chosen[w].feature_load + chosen[w].forward);
            input_vertices.push(batch.stats.input_vertices);
            remote_vertices.push(batch.stats.remote_input_vertices);
        }

        // The detector sees the *pre-mitigation* signals, after the
        // decision: flags drive the following steps, one observation
        // behind, and mitigation never masks the fault from its own
        // monitor.
        session.detector.observe_compute_active(&pre_times, &active);

        self.emit_step_spans(step, &phases, &costs, param_bytes, opt_flops, ctx.live_mask);
        self.emit_traffic_counters(counters);

        StepReport { phases, worker_times, input_vertices, remote_vertices, cache_hits }
    }
}

/// Fluid work-stealing equalisation. The flagged straggler has `t_s`
/// seconds of work left at its degraded rate; helper `j` goes idle at
/// `t_j` (ascending) and then chews through the straggler's backlog at
/// `elev` straggler-seconds per wall-second (the detector's estimate of
/// how much faster a healthy worker is). With the `m` earliest helpers
/// participating everyone finishes together at
/// `T_m = (t_s + elev·Σ_{j<m} t_j) / (1 + elev·m)`; the physical
/// solution is the `m` where helper `m−1` is idle before `T_m` and
/// helper `m` (if any) is not. Returns `(T, m)`.
fn steal_equalized_time(t_s: f64, helper_times: &[f64], elev: f64) -> Option<(f64, usize)> {
    let mut sum = 0.0;
    for m in 1..=helper_times.len() {
        sum += helper_times[m - 1];
        let t_eq = (t_s + elev * sum) / (1.0 + elev * m as f64);
        if t_eq >= helper_times[m - 1] && (m == helper_times.len() || t_eq <= helper_times[m]) {
            return Some((t_eq, m));
        }
    }
    None
}

/// Uniformly shrink a worker's per-step phases (its `update` share is
/// zero — the optimiser is booked at step level).
fn scale_phases(p: &mut StepPhases, scale: f64) {
    p.sampling *= scale;
    p.feature_load *= scale;
    p.forward *= scale;
    p.backward *= scale;
}

/// All-live bitmask for a `k`-worker cluster.
fn full_mask(k: u32) -> u64 {
    if k >= 64 {
        !0
    } else {
        (1u64 << k) - 1
    }
}

/// SplitMix64-style mixing of a seed with up to three stream indices;
/// collision-free in practice for distinct index tuples (unlike shifted
/// XOR, which aliases once an index exceeds its bit window).
fn mix_seed(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ c.wrapping_mul(0x94d0_49bb_1331_11eb);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mask of the `entries` highest-degree vertices (ties broken by id).
fn hot_vertex_mask(graph: &Graph, entries: u32) -> Vec<bool> {
    let n = graph.num_vertices() as usize;
    let mut mask = vec![false; n];
    if entries == 0 || n == 0 {
        return mask;
    }
    let mut order: Vec<u32> = graph.vertices().collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    for &v in order.iter().take(entries as usize) {
        mask[v as usize] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    // The deprecated `simulate_*` wrappers stay exercised until removal.
    #![allow(deprecated)]

    use super::*;
    use gp_cluster::Span;
    use gp_graph::generators::{community, CommunityParams};
    use gp_partition::prelude::*;
    use gp_tensor::ModelKind;

    fn setup(k: u32) -> (Graph, VertexPartition, VertexPartition, VertexSplit) {
        let g = community(
            CommunityParams {
                n: 800,
                m: 12_000,
                communities: 8,
                intra_prob: 0.75,
                degree_exponent: 2.3,
            },
            5,
        )
        .unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 3).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, k, 1).unwrap();
        let metis = Metis::default().partition_vertices(&g, k, 1).unwrap();
        (g, rnd, metis, split)
    }

    fn cfg(k: u32, f: usize, h: usize, layers: usize, kind: ModelKind) -> DistDglConfig {
        DistDglConfig::paper(
            ModelConfig {
                kind,
                feature_dim: f,
                hidden_dim: h,
                num_layers: layers,
                num_classes: 8,
                seed: 0,
            },
            ClusterSpec::paper(k),
        )
    }

    #[test]
    fn better_partitioner_fewer_remote_vertices() {
        let (g, rnd, metis, split) = setup(4);
        let c = cfg(4, 64, 64, 3, ModelKind::Sage);
        let e_rnd = DistDglEngine::builder(&g, &rnd, &split).config(c.clone()).build().unwrap().simulate_epoch(0);
        let e_met = DistDglEngine::builder(&g, &metis, &split).config(c).build().unwrap().simulate_epoch(0);
        assert!(
            e_met.total_remote_vertices < e_rnd.total_remote_vertices,
            "METIS {} >= Random {}",
            e_met.total_remote_vertices,
            e_rnd.total_remote_vertices
        );
        assert!(e_met.counters.total_network_bytes() < e_rnd.counters.total_network_bytes());
        assert!(e_met.epoch_time() < e_rnd.epoch_time());
    }

    #[test]
    fn feature_size_inflates_feature_phase() {
        let (g, rnd, _, split) = setup(4);
        let small = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 16, 64, 3, ModelKind::Sage)).build()
            .unwrap()
            .simulate_epoch(0);
        let large = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 512, 64, 3, ModelKind::Sage)).build()
            .unwrap()
            .simulate_epoch(0);
        // Sampling time identical (same seed ⇒ same blocks), feature
        // loading much larger (not 32× — the per-message latency floor
        // does not scale with the feature size).
        assert!((large.phases.sampling - small.phases.sampling).abs() < 1e-9);
        assert!(
            large.phases.feature_load > 4.0 * small.phases.feature_load,
            "feature_load {} vs {}",
            large.phases.feature_load,
            small.phases.feature_load
        );
        assert_eq!(large.total_remote_vertices, small.total_remote_vertices);
    }

    #[test]
    fn hidden_dim_inflates_compute_only() {
        let (g, rnd, _, split) = setup(4);
        let small = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 16, 3, ModelKind::Sage)).build()
            .unwrap()
            .simulate_epoch(0);
        let large = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 512, 3, ModelKind::Sage)).build()
            .unwrap()
            .simulate_epoch(0);
        assert!((large.phases.sampling - small.phases.sampling).abs() < 1e-9);
        assert!((large.phases.feature_load - small.phases.feature_load).abs() < 1e-9);
        assert!(large.phases.forward > 5.0 * small.phases.forward);
    }

    #[test]
    fn gat_computes_more_than_sage() {
        let (g, rnd, _, split) = setup(4);
        let sage = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 64, 3, ModelKind::Sage)).build()
            .unwrap()
            .simulate_epoch(0);
        let gat = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 64, 3, ModelKind::Gat)).build()
            .unwrap()
            .simulate_epoch(0);
        assert!(gat.phases.forward > sage.phases.forward);
    }

    #[test]
    fn steps_respect_batch_size() {
        let (g, rnd, _, split) = setup(4);
        let mut c = cfg(4, 16, 16, 2, ModelKind::Sage);
        c.global_batch_size = 16;
        let e = DistDglEngine::builder(&g, &rnd, &split).config(c).build().unwrap();
        assert_eq!(e.batch_per_worker(), 4);
        // The epoch is gated by the worker with the most local training
        // vertices, so it is at least the balanced ceil(|train| / GBS)
        // and exactly that under a perfectly train-balanced partition.
        let balanced = split.train.len().div_ceil(16);
        let largest = (0..4u32)
            .map(|w| e.store().local_train_vertices(w).len())
            .max()
            .unwrap();
        assert_eq!(e.steps_per_epoch(), largest.div_ceil(4));
        assert!(e.steps_per_epoch() >= balanced);
    }

    #[test]
    fn config_validation() {
        let (g, rnd, _, split) = setup(4);
        let mut c = cfg(8, 16, 16, 2, ModelKind::Sage);
        assert!(matches!(
            DistDglEngine::builder(&g, &rnd, &split).config(c.clone()).build(),
            Err(DistDglError::ClusterMismatch { .. })
        ));
        c.cluster.machines = 4;
        c.fanouts = vec![5];
        assert!(DistDglEngine::builder(&g, &rnd, &split).config(c).build().is_err());
    }

    #[test]
    fn feature_cache_reduces_traffic() {
        let (g, rnd, _, split) = setup(4);
        let mut base_cfg = cfg(4, 512, 64, 3, ModelKind::Sage);
        base_cfg.feature_cache_entries = 0;
        let base = DistDglEngine::builder(&g, &rnd, &split).config(base_cfg.clone()).build()
            .unwrap()
            .simulate_epoch(0);
        let mut cached_cfg = base_cfg.clone();
        cached_cfg.feature_cache_entries = 100;
        let cached = DistDglEngine::builder(&g, &rnd, &split).config(cached_cfg).build().unwrap().simulate_epoch(0);
        assert_eq!(base.cache_hits, 0);
        assert!(cached.cache_hits > 0, "hot hubs must hit the cache");
        assert!(
            cached.counters.total_network_bytes() < base.counters.total_network_bytes(),
            "cache must cut traffic: {} vs {}",
            cached.counters.total_network_bytes(),
            base.counters.total_network_bytes()
        );
        assert!(cached.phases.feature_load < base.phases.feature_load);
        // Sampling is unaffected (same seeds, same blocks).
        assert!((cached.phases.sampling - base.phases.sampling).abs() < 1e-12);
    }

    #[test]
    fn larger_cache_never_hurts() {
        let (g, rnd, _, split) = setup(4);
        let traffic = |entries: u32| {
            let mut c = cfg(4, 64, 64, 2, ModelKind::Sage);
            c.feature_cache_entries = entries;
            DistDglEngine::builder(&g, &rnd, &split).config(c).build()
                .unwrap()
                .simulate_epoch(0)
                .counters
                .total_network_bytes()
        };
        let t0 = traffic(0);
        let t50 = traffic(50);
        let t400 = traffic(400);
        assert!(t50 <= t0);
        assert!(t400 <= t50);
    }

    fn crash_plan(machine: u32, epoch: u32, step_frac: f64) -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Crash { machine, epoch, step_frac }],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn empty_plan_bit_identical_to_baseline() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 64, 2, ModelKind::Sage)).build().unwrap();
        let base = e.simulate_epoch(0);
        let faulty = e.simulate_epoch_with_faults(0, &FaultPlan::empty()).unwrap();
        assert_eq!(faulty.summary.steps, base.steps);
        assert_eq!(faulty.summary.phases, base.phases);
        assert_eq!(faulty.summary.counters, base.counters);
        assert_eq!(faulty.summary.total_input_vertices, base.total_input_vertices);
        assert_eq!(faulty.summary.total_remote_vertices, base.total_remote_vertices);
        assert_eq!(faulty.summary.cache_hits, base.cache_hits);
        assert_eq!(faulty.summary.mean_input_balance, base.mean_input_balance);
        assert_eq!(faulty.summary.mean_time_balance, base.mean_time_balance);
        assert_eq!(faulty.recovery, RecoveryReport::default());
        assert!(faulty.failed_workers.is_empty());
    }

    #[test]
    fn same_plan_identical_results() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 32, 32, 2, ModelKind::Sage)).build().unwrap();
        let plan = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 6, 2.0, 0xfa11));
        for epoch in 0..6 {
            let a = e.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let b = e.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_eq!(a.summary.phases, b.summary.phases);
            assert_eq!(a.summary.counters, b.summary.counters);
            assert_eq!(a.recovery, b.recovery);
            assert_eq!(a.failed_workers, b.failed_workers);
        }
    }

    #[test]
    fn crash_redistributes_training_set() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 32, 32, 2, ModelKind::Sage)).build().unwrap();
        let plan = crash_plan(2, 1, 0.5);
        let crashed_train = e.store().local_train_vertices(2).len() as u64;
        assert!(crashed_train > 0, "test premise: worker 2 owns training vertices");

        let at_crash = e.simulate_epoch_with_faults(1, &plan).unwrap();
        assert_eq!(at_crash.failed_workers, vec![2]);
        assert_eq!(at_crash.recovery.crashes, 1);
        assert_eq!(at_crash.recovery.redistributed_train_vertices, crashed_train);
        assert_eq!(at_crash.recovery.reexecuted_steps, 1);
        assert!(at_crash.recovery.reexecution_seconds > 0.0);
        assert!(at_crash.recovery.recovery_bytes > 0, "feature shard must be re-served");

        // The epoch after the crash runs on survivors only; the epoch is
        // no shorter (the straggler rule gates on the survivors' larger
        // shares) and every training vertex is still covered.
        let after = e.simulate_epoch_with_faults(2, &plan).unwrap();
        assert_eq!(after.failed_workers, vec![2]);
        assert_eq!(after.recovery.crashes, 0, "no new crash in epoch 2");
        let healthy = e.simulate_epoch(2);
        assert!(after.summary.steps >= healthy.steps);
        let degraded = e.store().with_failed(&[2]).unwrap();
        let total: usize = (0..4).map(|w| degraded.local_train_vertices(w).len()).sum();
        assert_eq!(total, split.train.len());
    }

    #[test]
    fn degradation_adds_retries_and_time() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 64, 2, ModelKind::Sage)).build().unwrap();
        let plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::Degradation {
                from_epoch: 0,
                until_epoch: 1,
                bandwidth_factor: 0.25,
                loss_rate: 0.1,
            }],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        let base = e.simulate_epoch(0);
        let faulty = e.simulate_epoch_with_faults(0, &plan).unwrap();
        assert!(faulty.recovery.retries > 0);
        assert!(faulty.recovery.retry_seconds > 0.0);
        assert!(faulty.summary.phases.sampling > base.phases.sampling);
        assert!(faulty.summary.phases.feature_load > base.phases.feature_load);
        // Same blocks sampled — the degradation changes time, not work.
        assert_eq!(faulty.summary.total_input_vertices, base.total_input_vertices);
        // Out of the window: identical to baseline.
        let healthy = e.simulate_epoch_with_faults(3, &plan).unwrap();
        assert_eq!(healthy.summary.phases, e.simulate_epoch(3).phases);
    }

    #[test]
    fn slowdown_stretches_straggler_phases() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 32, 64, 2, ModelKind::Sage)).build().unwrap();
        let plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::Slowdown {
                machine: 1,
                from_epoch: 0,
                until_epoch: 2,
                factor: 0.25,
            }],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        let base = e.simulate_epoch(0);
        let faulty = e.simulate_epoch_with_faults(0, &plan).unwrap();
        assert!(faulty.summary.phases.forward > base.phases.forward);
        assert!(faulty.summary.mean_time_balance > base.mean_time_balance);
        assert!(faulty.recovery.retries == 0, "slowdown alone causes no retries");
    }

    #[test]
    fn all_workers_crashed_is_worker_failed() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 16, 16, 2, ModelKind::Sage)).build().unwrap();
        let plan = FaultPlan {
            events: (0..4)
                .map(|m| gp_cluster::FaultEvent::Crash {
                    machine: m,
                    epoch: 1,
                    step_frac: 0.1 * f64::from(m),
                })
                .collect(),
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        assert!(matches!(
            e.simulate_epoch_with_faults(1, &plan),
            Err(DistDglError::WorkerFailed { .. })
        ));
        // Later epochs see all workers dead from the start.
        assert!(matches!(
            e.simulate_epoch_with_faults(2, &plan),
            Err(DistDglError::WorkerFailed { .. })
        ));
    }

    #[test]
    fn recovery_budget_enforced() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 16, 16, 2, ModelKind::Sage)).build().unwrap();
        let mut plan = crash_plan(1, 0, 0.5);
        plan.recovery_budget_secs = 1e-12;
        assert!(matches!(
            e.simulate_epoch_with_faults(0, &plan),
            Err(DistDglError::RecoveryBudgetExceeded { .. })
        ));
    }

    fn slowdown_plan(machine: u32, factor: f64, from: u32, until: u32) -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Slowdown {
                machine,
                from_epoch: from,
                until_epoch: until,
                factor,
            }],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn steal_equalisation_solves_the_fluid_model() {
        // One helper idle at t=1, straggler with 4s of backlog, helper
        // 2x faster: T = (4 + 2*1)/(1 + 2) = 2.
        let (t, m) = steal_equalized_time(4.0, &[1.0], 2.0).unwrap();
        assert_eq!(m, 1);
        assert!((t - 2.0).abs() < 1e-12);
        // A helper that would only go idle after the equalised finish
        // time stays out of the solution.
        let (t, m) = steal_equalized_time(4.0, &[1.0, 3.0], 2.0).unwrap();
        assert_eq!(m, 1, "late helper must not join");
        assert!((t - 2.0).abs() < 1e-12);
        // Two early helpers both join.
        let (t2, m2) = steal_equalized_time(4.0, &[0.5, 1.0], 2.0).unwrap();
        assert_eq!(m2, 2);
        assert!((t2 - (4.0 + 2.0 * 1.5) / 5.0).abs() < 1e-12);
        assert!(steal_equalized_time(4.0, &[], 2.0).is_none());
    }

    #[test]
    fn mitigation_with_empty_plan_bit_identical() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 64, 64, 2, ModelKind::Sage)).build().unwrap();
        let base = e.simulate_epoch(0);
        let mut session = e.mitigation(MitigationPolicy::all());
        let mit = e.simulate_epoch_mitigated(0, &FaultPlan::empty(), &mut session).unwrap();
        assert_eq!(mit.summary.phases, base.phases);
        assert_eq!(mit.summary.counters, base.counters);
        assert_eq!(mit.mitigation, MitigationReport::default());
        assert_eq!(mit.recovery, RecoveryReport::default());
        assert!(mit.failed_workers.is_empty());
    }

    #[test]
    fn mitigation_policy_none_matches_plain_fault_path() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 32, 32, 2, ModelKind::Sage)).build().unwrap();
        let plan = slowdown_plan(1, 0.25, 0, 3);
        let mut session = e.mitigation(MitigationPolicy::none());
        for epoch in 0..4 {
            let plain = e.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let mit = e.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            assert_eq!(mit.summary.phases, plain.summary.phases);
            assert_eq!(mit.summary.counters, plain.summary.counters);
            assert_eq!(mit.mitigation, MitigationReport::default());
        }
        // DistDGL has no adaptive cd-r: the adaptive-only policy also
        // falls through to the plain path.
        let mut adaptive = e.mitigation(MitigationPolicy::adaptive());
        let plain = e.simulate_epoch_with_faults(1, &plan).unwrap();
        let mit = e.simulate_epoch_mitigated(1, &plan, &mut adaptive).unwrap();
        assert_eq!(mit.summary.phases, plain.summary.phases);
    }

    #[test]
    fn work_stealing_rescues_straggler_epochs() {
        let (g, rnd, _, split) = setup(4);
        let mut c = cfg(4, 64, 128, 2, ModelKind::Sage);
        c.global_batch_size = 32; // many steps per epoch: room to detect and react
        let e = DistDglEngine::builder(&g, &rnd, &split).config(c).build().unwrap();
        let plan = slowdown_plan(1, 0.25, 1, 6);
        let mut session = e.mitigation(MitigationPolicy::steal());
        let mut unmit_total = 0.0;
        let mut mit_total = 0.0;
        let mut report = MitigationReport::default();
        for epoch in 0..6 {
            unmit_total +=
                e.simulate_epoch_with_faults(epoch, &plan).unwrap().summary.epoch_time();
            let mit = e.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            mit_total += mit.summary.epoch_time();
            report.merge(&mit.mitigation);
        }
        assert!(report.stolen_steps > 0, "flagged straggler must be stolen from");
        assert!(report.stolen_bytes > 0, "stolen inputs pay remote fetches");
        assert!(
            mit_total < unmit_total,
            "stealing must cut epoch time: {mit_total} vs {unmit_total}"
        );
        // Slowdown-only plans execute the same steps in both runs, so
        // the bookkept savings equal the epoch-time difference exactly.
        assert!((unmit_total - mit_total - report.time_saved_secs).abs() < 1e-9);
        assert_eq!(session.detector().stragglers(), vec![1], "detector tracks the slow worker");
    }

    #[test]
    fn speculation_beats_the_deadline() {
        let (g, rnd, _, split) = setup(4);
        let mut c = cfg(4, 64, 128, 2, ModelKind::Sage);
        c.global_batch_size = 32;
        let e = DistDglEngine::builder(&g, &rnd, &split).config(c).build().unwrap();
        let plan = slowdown_plan(1, 0.25, 1, 6);
        let mut session = e.mitigation(MitigationPolicy::speculate());
        let mut unmit_total = 0.0;
        let mut mit_total = 0.0;
        let mut report = MitigationReport::default();
        for epoch in 0..6 {
            unmit_total +=
                e.simulate_epoch_with_faults(epoch, &plan).unwrap().summary.epoch_time();
            let mit = e.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            mit_total += mit.summary.epoch_time();
            report.merge(&mit.mitigation);
        }
        assert!(report.speculated_steps > 0, "deadline violations must trigger backups");
        assert_eq!(
            report.speculation_wins, report.speculated_steps,
            "backups are only launched when the model predicts a win"
        );
        assert!(report.speculation_bytes > 0);
        assert!(report.speculation_wasted_secs > 0.0, "the loser's work is wasted");
        assert!(
            mit_total < unmit_total,
            "speculation must cut epoch time: {mit_total} vs {unmit_total}"
        );
        assert_eq!(report.stolen_steps, 0, "stealing is off under this policy");
    }

    #[test]
    fn mitigated_never_worse_and_deterministic() {
        let (g, rnd, _, split) = setup(4);
        let mut c = cfg(4, 32, 64, 2, ModelKind::Sage);
        c.global_batch_size = 64;
        let e = DistDglEngine::builder(&g, &rnd, &split).config(c).build().unwrap();
        let plan = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 8, 4.0, 0xfa11));
        let mut s1 = e.mitigation(MitigationPolicy::all());
        let mut s2 = e.mitigation(MitigationPolicy::all());
        for epoch in 0..8 {
            let unmit = e.simulate_epoch_with_faults(epoch, &plan);
            let a = e.simulate_epoch_mitigated(epoch, &plan, &mut s1);
            let b = e.simulate_epoch_mitigated(epoch, &plan, &mut s2);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.summary.phases, b.summary.phases);
                    assert_eq!(a.summary.counters, b.summary.counters);
                    assert_eq!(a.mitigation, b.mitigation);
                    assert_eq!(a.failed_workers, b.failed_workers);
                    if let Ok(u) = unmit {
                        assert!(
                            a.summary.epoch_time() <= u.summary.epoch_time() + 1e-9,
                            "epoch {epoch}: mitigated {} > unmitigated {}",
                            a.summary.epoch_time(),
                            u.summary.epoch_time()
                        );
                    }
                }
                (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
                _ => panic!("mitigated runs must agree on success"),
            }
        }
    }

    #[test]
    fn balances_reported() {
        let (g, rnd, _, split) = setup(4);
        let e = DistDglEngine::builder(&g, &rnd, &split).config(cfg(4, 16, 16, 2, ModelKind::Sage)).build()
            .unwrap()
            .simulate_epoch(0);
        assert!(e.mean_input_balance >= 1.0);
        assert!(e.mean_time_balance >= 1.0);
        assert!(e.steps > 0);
    }

    #[test]
    fn builder_requires_model_and_cluster() {
        let (g, rnd, _, split) = setup(4);
        assert!(matches!(
            DistDglEngine::builder(&g, &rnd, &split).build(),
            Err(DistDglError::InvalidConfig(_))
        ));
        let c = cfg(4, 16, 16, 2, ModelKind::Sage);
        assert!(matches!(
            DistDglEngine::builder(&g, &rnd, &split).model(c.model).build(),
            Err(DistDglError::InvalidConfig(_))
        ));
        // With model and cluster set, fan-outs default to the scaled
        // paper fan-outs for the layer count.
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .model(c.model)
            .cluster(c.cluster)
            .build()
            .unwrap();
        assert_eq!(e.config().fanouts, crate::scaled_fanouts(2));
    }

    #[test]
    fn builder_field_setters_match_config() {
        let (g, rnd, _, split) = setup(4);
        let mut c = cfg(4, 16, 16, 2, ModelKind::Sage);
        c.global_batch_size = 64;
        c.feature_cache_entries = 50;
        c.seed = 42;
        let via_config = DistDglEngine::builder(&g, &rnd, &split)
            .config(c.clone())
            .build()
            .unwrap()
            .simulate_epoch(0);
        let via_setters = DistDglEngine::builder(&g, &rnd, &split)
            .model(c.model)
            .cluster(c.cluster)
            .global_batch_size(64)
            .fanouts(c.fanouts.clone())
            .feature_cache_entries(50)
            .seed(42)
            .build()
            .unwrap()
            .simulate_epoch(0);
        assert_eq!(via_config.phases, via_setters.phases);
        assert_eq!(via_config.counters, via_setters.counters);
    }

    /// The load-bearing invariant: per-worker, per-phase span-duration
    /// sums equal the epoch's reported phase totals *exactly* (`==` on
    /// f64) — the spans record the same gated window values the epoch
    /// accumulator sums, in the same order.
    fn assert_span_accounting(sink: &TraceSink, k: u32, phases: &StepPhases) {
        for w in 0..k {
            assert_eq!(
                sink.worker_phase_seconds(w, TracePhase::Sampling),
                phases.sampling,
                "worker {w} sampling"
            );
            assert_eq!(
                sink.worker_phase_seconds(w, TracePhase::FeatureLoad),
                phases.feature_load,
                "worker {w} feature_load"
            );
            assert_eq!(
                sink.worker_phase_seconds(w, TracePhase::Forward),
                phases.forward,
                "worker {w} forward"
            );
            assert_eq!(
                sink.worker_phase_seconds(w, TracePhase::Backward),
                phases.backward,
                "worker {w} backward"
            );
            assert_eq!(
                sink.worker_phase_seconds(w, TracePhase::Update),
                phases.update,
                "worker {w} update"
            );
        }
    }

    #[test]
    fn healthy_span_sums_equal_phase_totals() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .trace(sink.clone())
            .build()
            .unwrap();
        let summary = e.simulate_epoch(0);
        assert_span_accounting(&sink, 4, &summary.phases);
        // Five phase spans per worker per step, and the traffic counter
        // tracks alongside.
        assert_eq!(sink.spans().len(), summary.steps * 4 * 5);
        assert!(sink.spans().iter().all(|s| s.epoch == 0));
        assert!(!sink.counters().is_empty());
    }

    #[test]
    fn tracing_leaves_summaries_bit_identical() {
        let (g, rnd, _, split) = setup(4);
        let c = cfg(4, 32, 32, 2, ModelKind::Sage);
        let plain = DistDglEngine::builder(&g, &rnd, &split).config(c.clone()).build().unwrap();
        let traced = DistDglEngine::builder(&g, &rnd, &split)
            .config(c)
            .trace(TraceSink::enabled())
            .build()
            .unwrap();
        let a = plain.simulate_epoch(0);
        let b = traced.simulate_epoch(0);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.counters, b.counters);
        let plan = crash_plan(2, 1, 0.5);
        for epoch in 0..3 {
            let fa = plain.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let fb = traced.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_eq!(fa.summary.phases, fb.summary.phases);
            assert_eq!(fa.summary.counters, fb.summary.counters);
            assert_eq!(fa.recovery, fb.recovery);
        }
        let slow = slowdown_plan(1, 0.25, 0, 4);
        let mut s1 = plain.mitigation(MitigationPolicy::all());
        let mut s2 = traced.mitigation(MitigationPolicy::all());
        for epoch in 0..4 {
            let ma = plain.simulate_epoch_mitigated(epoch, &slow, &mut s1).unwrap();
            let mb = traced.simulate_epoch_mitigated(epoch, &slow, &mut s2).unwrap();
            assert_eq!(ma.summary.phases, mb.summary.phases);
            assert_eq!(ma.summary.counters, mb.summary.counters);
            assert_eq!(ma.mitigation, mb.mitigation);
        }
    }

    #[test]
    fn faulty_span_sums_equal_phase_totals() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = crash_plan(2, 1, 0.5);
        for epoch in 0..3 {
            sink.clear();
            let faulty = e.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_span_accounting(&sink, 4, &faulty.summary.phases);
            let recovery_spans: Vec<Span> = sink
                .spans()
                .into_iter()
                .filter(|s| s.phase == TracePhase::Recovery)
                .collect();
            if epoch == 1 {
                assert!(!recovery_spans.is_empty(), "crash must record recovery spans");
                for s in &recovery_spans {
                    // The single restore transfer occupies the whole
                    // window on every receiving survivor.
                    assert_eq!(s.dur, faulty.recovery.restore_seconds);
                    assert_eq!(s.epoch, 1);
                    assert!(s.bytes > 0);
                }
                let moved: u64 = recovery_spans.iter().map(|s| s.bytes).sum();
                assert_eq!(moved, faulty.recovery.recovery_bytes);
            } else {
                assert!(recovery_spans.is_empty(), "no crash in epoch {epoch}");
            }
        }
    }

    #[test]
    fn mitigated_span_sums_equal_phase_totals() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let mut c = cfg(4, 64, 128, 2, ModelKind::Sage);
        c.global_batch_size = 32;
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .config(c)
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = slowdown_plan(1, 0.25, 1, 6);
        let mut session = e.mitigation(MitigationPolicy::steal());
        let mut stolen = 0;
        for epoch in 0..6 {
            sink.clear();
            let mit = e.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            assert_span_accounting(&sink, 4, &mit.summary.phases);
            if mit.mitigation.stolen_steps > 0 {
                assert!(
                    sink.counters().iter().any(|ev| ev.name == "stolen_bytes"),
                    "adopted steals must leave a counter event"
                );
            }
            stolen += mit.mitigation.stolen_steps;
        }
        assert!(stolen > 0, "test premise: stealing must trigger");
    }

    /// The metrics-registry analogue of `assert_span_accounting`: the
    /// per-worker, per-phase histogram mass of a single-epoch snapshot
    /// must equal the engine's reported phase totals exactly.
    fn assert_metrics_accounting(sink: &TraceSink, k: u32, phases: &StepPhases) {
        let snap = gp_cluster::MetricsSnapshot::from_sink(sink);
        for w in 0..k {
            assert_eq!(
                snap.phase_seconds(w, TracePhase::Sampling),
                phases.sampling,
                "worker {w} sampling mass"
            );
            assert_eq!(
                snap.phase_seconds(w, TracePhase::FeatureLoad),
                phases.feature_load,
                "worker {w} feature_load mass"
            );
            assert_eq!(
                snap.phase_seconds(w, TracePhase::Forward),
                phases.forward,
                "worker {w} forward mass"
            );
            assert_eq!(
                snap.phase_seconds(w, TracePhase::Backward),
                phases.backward,
                "worker {w} backward mass"
            );
            assert_eq!(
                snap.phase_seconds(w, TracePhase::Update),
                phases.update,
                "worker {w} update mass"
            );
        }
    }

    fn counter_name_set(sink: &TraceSink) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = sink.counters().iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    #[test]
    fn metrics_mass_equals_phase_totals_healthy() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .trace(sink.clone())
            .build()
            .unwrap();
        let summary = e.simulate_epoch(0);
        assert_metrics_accounting(&sink, 4, &summary.phases);
        // Healthy path pins exactly the cumulative traffic counters.
        assert_eq!(
            counter_name_set(&sink),
            vec![counter_names::BYTES_RECEIVED, counter_names::BYTES_SENT]
        );
    }

    #[test]
    fn metrics_mass_equals_phase_totals_faulty() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = crash_plan(2, 1, 0.5);
        for epoch in 0..3 {
            sink.clear();
            let faulty = e.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_metrics_accounting(&sink, 4, &faulty.summary.phases);
            // Per-path counter pinning: the crash epoch adds exactly the
            // recovery counter (one sample per receiving survivor).
            let mut expect = vec![counter_names::BYTES_RECEIVED, counter_names::BYTES_SENT];
            if epoch == 1 {
                expect.push(counter_names::RECOVERY_BYTES);
            }
            expect.sort_unstable();
            assert_eq!(counter_name_set(&sink), expect, "epoch {epoch}");
            if epoch == 1 {
                let rec: f64 = sink
                    .counters()
                    .iter()
                    .filter(|ev| ev.name == counter_names::RECOVERY_BYTES)
                    .map(|ev| ev.value)
                    .sum();
                assert_eq!(rec, faulty.recovery.recovery_bytes as f64);
            }
        }
    }

    #[test]
    fn metrics_mass_equals_phase_totals_mitigated() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let mut c = cfg(4, 64, 128, 2, ModelKind::Sage);
        c.global_batch_size = 32;
        let e = DistDglEngine::builder(&g, &rnd, &split)
            .config(c)
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = slowdown_plan(1, 0.25, 1, 6);
        let mut session = e.mitigation(MitigationPolicy::steal());
        let mut stolen = 0;
        for epoch in 0..6 {
            sink.clear();
            let mit = e.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            assert_metrics_accounting(&sink, 4, &mit.summary.phases);
            // Per-path counter pinning: the steal policy adds exactly
            // the stolen-bytes counter on adopting epochs.
            let mut expect = vec![counter_names::BYTES_RECEIVED, counter_names::BYTES_SENT];
            if mit.mitigation.stolen_steps > 0 {
                expect.push(counter_names::STOLEN_BYTES);
                stolen += mit.mitigation.stolen_steps;
            }
            expect.sort_unstable();
            assert_eq!(counter_name_set(&sink), expect, "epoch {epoch}");
        }
        assert!(stolen > 0, "test premise: stealing must trigger");
    }

    #[test]
    fn same_seed_traces_are_identical() {
        let (g, rnd, _, split) = setup(4);
        let run = || {
            let sink = TraceSink::enabled();
            let e = DistDglEngine::builder(&g, &rnd, &split)
                .config(cfg(4, 32, 32, 2, ModelKind::Sage))
                .trace(sink.clone())
                .build()
                .unwrap();
            e.simulate_epoch(0);
            sink.spans()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epoch_outcome_trait_unifies_summary() {
        let (g, rnd, _, split) = setup(4);
        let summary = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .build()
            .unwrap()
            .simulate_epoch(0);
        let outcome: &dyn EpochOutcome = &summary;
        assert_eq!(outcome.epoch_time(), summary.phases.total());
        assert_eq!(outcome.total_bytes(), summary.counters.total_network_bytes());
        let breakdown = outcome.phase_breakdown();
        assert_eq!(breakdown.len(), 5);
        assert_eq!(breakdown[0], ("sampling", summary.phases.sampling));
        assert_eq!(breakdown[1], ("feature_load", summary.phases.feature_load));
        let total: f64 = breakdown.iter().map(|(_, s)| s).sum();
        assert!((total - summary.epoch_time()).abs() < 1e-12);
    }

    // ---- Elastic membership ----

    fn churn_spec(epochs: u32) -> gp_cluster::ChurnSpec {
        gp_cluster::ChurnSpec {
            machines: 4,
            epochs,
            leave_prob: 0.08,
            rejoin_prob: 0.3,
            min_live: 2,
            seed: 0xe1a5,
        }
    }

    fn elastic_eng<'a>(g: &'a Graph, p: &VertexPartition, s: &VertexSplit) -> DistDglEngine<'a> {
        DistDglEngine::builder(g, p, s).config(cfg(4, 64, 64, 2, ModelKind::Sage)).build().unwrap()
    }

    #[test]
    fn elastic_with_no_churn_or_faults_is_the_healthy_run() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let healthy: Vec<f64> = (0..5).map(|e| eng.simulate_epoch(e).epoch_time()).collect();
        let run = eng
            .simulate_run_elastic(
                5,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &CheckpointConfig::default(),
                ElasticOptions::default(),
            )
            .unwrap();
        assert_eq!(run.completed_epochs, 5);
        for (e, &t) in run.epoch_seconds.iter().enumerate() {
            assert_eq!(t, healthy[e], "stable-fleet epoch {e} is bit-identical to healthy");
        }
        assert_eq!(run.recovery, RecoveryReport::default());
        assert_eq!(run.leaves + run.joins + run.handoffs + run.rebalances, 0);
        assert_eq!(run.handoff_seconds, 0.0);
        for live in &run.live_workers {
            assert_eq!(live.len(), 4);
        }
    }

    #[test]
    fn elastic_run_is_deterministic() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 12, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(12));
        let ckpt = CheckpointConfig::periodic(4);
        let a = eng
            .simulate_run_elastic(12, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let b = eng
            .simulate_run_elastic(12, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        assert_eq!(a, b, "elastic runs replay bit-identically");
        assert!(a.leaves > 0, "premise: the schedule actually churns");
    }

    #[test]
    fn graceful_handoff_beats_the_crash_baseline() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 16, 8.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(16));
        let ckpt = CheckpointConfig::periodic(4);
        let elastic = eng
            .simulate_run_elastic(16, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let baseline = eng
            .simulate_run_elastic(16, &faults, &churn, &ckpt, ElasticOptions::no_handoff())
            .unwrap();
        assert!(elastic.handoffs > 0, "premise: leaves were handed off");
        assert_eq!(baseline.handoffs, 0);
        assert!(
            elastic.total_seconds() <= baseline.total_seconds(),
            "elastic {} should not exceed the crash-without-handoff baseline {}",
            elastic.total_seconds(),
            baseline.total_seconds()
        );
        // The baseline pays for leaves through recovery instead.
        assert!(baseline.recovery.crashes > elastic.recovery.crashes);
        assert!(baseline.recovery.restore_seconds > elastic.recovery.restore_seconds);
    }

    // ---- Partitioned runs (network fault model) ----

    fn net_spec(epochs: u32) -> gp_cluster::NetFaultSpec {
        gp_cluster::NetFaultSpec {
            partition_prob: 0.15,
            ..gp_cluster::NetFaultSpec::standard(4, epochs, 0x7a57_11e7)
        }
    }

    #[test]
    fn partitioned_with_empty_net_plan_is_the_elastic_run() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 12, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(12));
        let ckpt = CheckpointConfig::periodic(4);
        let elastic = eng
            .simulate_run_elastic(12, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let part = eng
            .simulate_run_partitioned(
                12,
                &faults,
                &churn,
                &NetFaultPlan::empty(),
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap();
        assert_eq!(part.elastic, elastic, "empty net plan reproduces the elastic run bit-for-bit");
        assert_eq!(part.net, NetRunReport::default());
        assert_eq!(part.total_seconds(), elastic.total_seconds());
    }

    #[test]
    fn partitioned_run_is_deterministic_and_exactly_once() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 12, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(12));
        let net = NetFaultPlan::generate(&net_spec(12));
        let ckpt = CheckpointConfig::periodic(4);
        let run = |_| {
            eng.simulate_run_partitioned(
                12,
                &faults,
                &churn,
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b, "partitioned runs replay bit-identically");
        assert!(a.net.windows > 0, "premise: the schedule actually partitions");
        assert!(a.net.noise.delivered > 0, "premise: noisy flows were charged");
        assert!(a.net.exactly_once(), "dedup must make delivery exactly-once-effective");
    }

    #[test]
    fn degraded_mode_never_worse_than_abort_baseline() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 16, 8.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(16));
        let net = NetFaultPlan::generate(&net_spec(16));
        let ckpt = CheckpointConfig::periodic(4);
        let degraded = eng
            .simulate_run_partitioned(
                16,
                &faults,
                &churn,
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap();
        let abort = eng
            .simulate_run_partitioned(
                16,
                &faults,
                &churn,
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::abort_only(),
            )
            .unwrap();
        assert!(degraded.net.partitioned_epochs > 0, "premise: a window armed");
        assert_eq!(abort.net.degraded_windows, 0, "baseline must always abort");
        assert!(
            degraded.total_seconds() <= abort.total_seconds() + 1e-9,
            "degraded run {} must not exceed the abort-and-recover baseline {}",
            degraded.total_seconds(),
            abort.total_seconds()
        );
        if degraded.net.degraded_windows > 0 {
            assert!(
                degraded.net.max_staleness <= net.staleness_bound,
                "staleness {} beyond the bound {}",
                degraded.net.max_staleness,
                net.staleness_bound
            );
            assert!(
                degraded.net.deferred_fetches > 0,
                "degraded epochs defer minority fetches to the cache"
            );
        }
    }

    #[test]
    fn noise_only_plan_keeps_training_progress_and_charges_transport() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let net = NetFaultPlan::generate(&gp_cluster::NetFaultSpec {
            partition_prob: 0.0,
            loss_prob: 0.1,
            dup_prob: 0.1,
            ..gp_cluster::NetFaultSpec::standard(4, 8, 0xb0)
        });
        assert!(net.windows.is_empty());
        let ckpt = CheckpointConfig::periodic(4);
        let plain = eng
            .simulate_run_elastic(
                8,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &ckpt,
                ElasticOptions::default(),
            )
            .unwrap();
        let noisy = eng
            .simulate_run_partitioned(
                8,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap();
        // Noise rides on top of the same schedule: epochs are untouched,
        // the transport overhead is strictly positive and separable.
        assert_eq!(noisy.elastic, plain);
        assert!(noisy.net.noise.retries > 0, "10% loss over many messages must retry");
        assert!(noisy.net.noise.extra_secs > 0.0);
        assert!(noisy.net.exactly_once());
        assert_eq!(
            noisy.total_seconds(),
            plain.total_seconds() + noisy.net.overhead_seconds()
        );
    }

    #[test]
    fn elastic_restore_detects_corrupt_snapshots() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        // One ungraceful leave at epoch 6; snapshots at 1, 3, 5.
        let churn = ChurnPlan {
            events: vec![gp_cluster::ChurnEvent::Leave { worker: 0, epoch: 6 }],
            machines: 4,
            epochs: 8,
        };
        let ckpt = CheckpointConfig::periodic(2);
        let clean = eng
            .simulate_run_elastic(8, &FaultPlan::empty(), &churn, &ckpt, ElasticOptions::no_handoff())
            .unwrap();
        assert_eq!(clean.recovery.corrupted_checkpoints, 0);
        assert_eq!(clean.recovery.crashes, 1);
        // Corrupt worker 0's newest snapshot (epoch 5): the restore
        // detects it by checksum, walks back to epoch 3's snapshot and
        // pays the wasted read — never a silent bad restore.
        let corrupt_plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::CheckpointCorruption { machine: 0, epoch: 5 }],
            machines: 4,
            epochs: 8,
            recovery_budget_secs: f64::INFINITY,
        };
        let corrupt = eng
            .simulate_run_elastic(8, &corrupt_plan, &churn, &ckpt, ElasticOptions::no_handoff())
            .unwrap();
        assert_eq!(corrupt.recovery.corrupted_checkpoints, 1);
        assert!(corrupt.recovery.recovery_bytes > clean.recovery.recovery_bytes);
        assert!(corrupt.recovery.restore_seconds > clean.recovery.restore_seconds);
    }

    #[test]
    fn elastic_rejoin_restores_the_pristine_layout() {
        let (g, rnd, _, split) = setup(4);
        let eng = elastic_eng(&g, &rnd, &split);
        let churn = ChurnPlan {
            events: vec![
                gp_cluster::ChurnEvent::Leave { worker: 3, epoch: 1 },
                gp_cluster::ChurnEvent::Join { worker: 3, epoch: 3 },
            ],
            machines: 4,
            epochs: 10,
        };
        let run = eng
            .simulate_run_elastic(
                10,
                &FaultPlan::empty(),
                &churn,
                &CheckpointConfig::default(),
                ElasticOptions::default(),
            )
            .unwrap();
        let healthy = eng
            .simulate_run_elastic(
                10,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &CheckpointConfig::default(),
                ElasticOptions::default(),
            )
            .unwrap();
        assert_eq!(run.leaves, 1);
        assert_eq!(run.joins, 1);
        assert_eq!(run.handoffs, 1);
        assert_eq!(run.live_workers[1], vec![0, 1, 2]);
        assert!(run.live_workers[3].contains(&3));
        assert_eq!(run.live_workers.last().unwrap().len(), 4);
        // While worker 3 is away its training share rides on the
        // survivors, so the straggler-gated epochs run slower.
        for e in 1..3 {
            assert!(
                run.epoch_seconds[e] > healthy.epoch_seconds[e],
                "degraded epoch {e}: {} <= {}",
                run.epoch_seconds[e],
                healthy.epoch_seconds[e]
            );
        }
        // The rejoin returns exactly the pristine shard, so from the
        // join onward the run is bit-identical to the never-churned one.
        for e in 3..10 {
            assert_eq!(
                run.epoch_seconds[e], healthy.epoch_seconds[e],
                "post-rejoin epoch {e} drifts from the pristine layout"
            );
        }
        // The join reloaded its shard (no snapshots configured → raw
        // input files + parameter re-fetch), never silently for free.
        assert!(run.recovery.recovery_bytes > 0);
        assert!(run.recovery.restore_seconds > 0.0);
    }

    #[test]
    fn elastic_traced_report_is_identical_and_spans_cover_events() {
        let (g, rnd, _, split) = setup(4);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(4, 12, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(12));
        let ckpt = CheckpointConfig::periodic(4);
        let untraced = elastic_eng(&g, &rnd, &split)
            .simulate_run_elastic(12, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let sink = TraceSink::enabled();
        let traced = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 64, 64, 2, ModelKind::Sage))
            .trace(sink.clone())
            .build()
            .unwrap()
            .simulate_run_elastic(12, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        assert_eq!(traced, untraced, "tracing never feeds back into the run");
        let spans = sink.spans();
        assert!(spans.iter().any(|s| s.phase == TracePhase::Migration));
        assert!(spans.iter().any(|s| s.phase == TracePhase::Checkpoint));
        // Per-epoch, per-worker span sums reproduce the recorded phase
        // totals exactly for workers live through the whole run.
        let snap = gp_cluster::MetricsSnapshot::from_sink(&sink);
        let always_live: Vec<u32> = (0..4)
            .filter(|w| traced.live_workers.iter().all(|l| l.contains(w)))
            .collect();
        assert!(!always_live.is_empty(), "premise: someone survives the whole soak");
        for &w in &always_live {
            for (i, phase) in [
                TracePhase::Sampling,
                TracePhase::FeatureLoad,
                TracePhase::Forward,
                TracePhase::Backward,
                TracePhase::Update,
            ]
            .iter()
            .enumerate()
            {
                let per_epoch: Vec<f64> = traced.phase_seconds.iter().map(|e| e[i].1).collect();
                assert_eq!(
                    snap.phase_seconds(w, *phase),
                    gp_cluster::fold_exact(&per_epoch),
                    "worker {w} phase {} span sum drifts",
                    phase.name()
                );
            }
        }
    }

    fn stream_spec(batches: u32, seed: u64) -> gp_graph::StreamSpec {
        gp_graph::StreamSpec {
            batches,
            inserts_per_batch: 64,
            deletes_per_batch: 32,
            arrivals_per_batch: 6,
            edges_per_arrival: 3,
            seed,
        }
    }

    #[test]
    fn stream_run_reports_quality_per_batch() {
        let (g, rnd, _, split) = setup(4);
        let engine = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .build()
            .unwrap();
        let spec = RunSpec::healthy().stream(stream_spec(4, 11), RepartitionPolicy::Never);
        let r = engine.run(&spec).unwrap().into_stream();
        assert_eq!(r.partitioner, "LDG");
        assert_eq!(r.policy, "never");
        assert_eq!(r.batches.len(), 4);
        assert_eq!(r.repartitions(), 0);
        for (i, b) in r.batches.iter().enumerate() {
            assert_eq!(b.batch, i as u32);
            assert!((0.0..=1.0).contains(&b.edge_cut), "cut ratio {}", b.edge_cut);
            assert!(b.balance >= 1.0);
            assert!(b.train_balance >= 1.0);
            assert!(b.epoch_seconds > 0.0);
            assert!(!b.repartitioned);
        }
        // Arrivals grow the snapshot but never join the training set,
        // so the per-batch train balance stays a statement about the
        // base split.
        assert!(r.batches.last().unwrap().num_vertices > g.num_vertices());
        let r2 = engine.run(&spec).unwrap().into_stream();
        assert_eq!(r, r2);
    }

    #[test]
    fn stream_threshold_no_worse_than_never_on_epoch_time() {
        let (g, rnd, _, split) = setup(4);
        let engine = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .build()
            .unwrap();
        let spec = stream_spec(5, 3);
        let never = engine
            .run(&RunSpec::healthy().stream(spec.clone(), RepartitionPolicy::Never))
            .unwrap()
            .into_stream();
        let thresh = engine
            .run(&RunSpec::healthy()
                .stream(spec, RepartitionPolicy::Threshold { imbalance: 1.0 }))
            .unwrap()
            .into_stream();
        // The adoption gate probes epoch time and only adopts candidates
        // that are no worse — so the threshold policy can never lose to
        // `never` on training time at equal seeds.
        assert!(
            thresh.total_epoch_seconds() <= never.total_epoch_seconds() + 1e-12,
            "threshold {} > never {}",
            thresh.total_epoch_seconds(),
            never.total_epoch_seconds()
        );
        let first = thresh.batches.iter().position(|b| b.repartitioned);
        for i in 0..first.unwrap_or(thresh.batches.len()) {
            assert_eq!(thresh.batches[i].epoch_seconds, never.batches[i].epoch_seconds);
        }
        if let Some(i) = first {
            assert!(thresh.batches[i].partition_seconds > 0.0);
            assert!(thresh.batches[i].edge_cut <= never.batches[i].edge_cut + 1e-12);
        }
    }

    #[test]
    fn stream_override_unknown_partitioner_and_trace() {
        let (g, rnd, _, split) = setup(4);
        let sink = TraceSink::enabled();
        let engine = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .trace(sink.clone())
            .build()
            .unwrap();
        let r = engine
            .run(&RunSpec::healthy()
                .stream(stream_spec(3, 5), RepartitionPolicy::Periodic { every: 2 })
                .stream_partitioner("Random"))
            .unwrap()
            .into_stream();
        assert_eq!(r.partitioner, "Random");
        let counters = sink.counters();
        for name in [
            counter_names::STREAM_LIVE_EDGES,
            counter_names::STREAM_EDGE_CUT,
            counter_names::STREAM_BALANCE,
            counter_names::STREAM_TRAIN_BALANCE,
            counter_names::STREAM_REPARTITIONS,
            counter_names::STREAM_PARTITION_SECONDS,
        ] {
            assert_eq!(
                counters.iter().filter(|c| c.name == name).count(),
                r.batches.len(),
                "one {name} sample per batch"
            );
        }
        let n_migrations =
            sink.spans().iter().filter(|s| s.phase == TracePhase::Migration).count();
        assert_eq!(n_migrations as u32, r.repartitions());
        // HDRF is a vertex-cut partitioner — not valid for the edge-cut
        // engine.
        let err = engine
            .run(&RunSpec::healthy()
                .stream(stream_spec(2, 5), RepartitionPolicy::Never)
                .stream_partitioner("HDRF"))
            .unwrap_err();
        assert!(matches!(err, DistDglError::InvalidConfig(_)));
        // Tracing is observational: an untraced engine reports the same.
        let bare = DistDglEngine::builder(&g, &rnd, &split)
            .config(cfg(4, 32, 32, 2, ModelKind::Sage))
            .build()
            .unwrap();
        let r2 = bare
            .run(&RunSpec::healthy()
                .stream(stream_spec(3, 5), RepartitionPolicy::Periodic { every: 2 })
                .stream_partitioner("Random"))
            .unwrap()
            .into_stream();
        assert_eq!(r, r2);
    }
}
