//! Real mini-batch training over the sampled blocks.
//!
//! Synchronous data-parallel SGD averages the per-worker gradients every
//! step, which equals accumulating gradients over the workers' batches
//! sequentially and stepping once — so the math runs on one model while
//! the cost accounting stays with [`crate::engine::DistDglEngine`].

use gp_tensor::loss::{accuracy, cross_entropy};
use gp_tensor::{Aggregation, GnnModel, Optimizer, Tensor};

use crate::engine::DistDglEngine;

/// Loss/accuracy trajectory of mini-batch training.
#[derive(Debug, Clone)]
pub struct MiniBatchTrainStats {
    /// Mean loss per epoch (averaged over steps and workers).
    pub losses: Vec<f32>,
    /// Mean training accuracy per epoch.
    pub accuracies: Vec<f64>,
}

impl MiniBatchTrainStats {
    /// Whether the loss decreased from start to finish.
    pub fn improved(&self) -> bool {
        match (self.losses.first(), self.losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Train `model` for `epochs` epochs using the engine's sampler.
///
/// `features` holds one row per graph vertex; `labels` one entry per
/// vertex.
///
/// # Panics
///
/// Panics if the model's layer count disagrees with the engine's
/// fan-outs or shapes mismatch.
pub fn train<O: Optimizer>(
    engine: &DistDglEngine<'_>,
    model: &mut GnnModel,
    features: &Tensor,
    labels: &[u32],
    opt: &mut O,
    epochs: u32,
) -> MiniBatchTrainStats {
    assert_eq!(
        model.num_layers(),
        engine.config().fanouts.len(),
        "model layers must match engine fan-outs"
    );
    let mut losses = Vec::with_capacity(epochs as usize);
    let mut accuracies = Vec::with_capacity(epochs as usize);
    for epoch in 0..epochs {
        let steps = engine.steps_per_epoch();
        let mut epoch_loss = 0.0f64;
        let mut epoch_acc = 0.0f64;
        let mut contributions = 0usize;
        for step in 0..steps {
            let batches = engine.sample_step(epoch, step);
            model.zero_grad();
            // Average over the workers that actually contributed a
            // batch; dividing by the full worker count would shrink the
            // effective gradient whenever some workers have no local
            // training vertices.
            let active_workers =
                batches.iter().filter(|b| !b.seeds.is_empty()).count();
            for batch in &batches {
                if batch.seeds.is_empty() {
                    continue;
                }
                let x = features.select_rows(&batch.input_vertices);
                let block_refs: Vec<&Aggregation> = batch.blocks.iter().collect();
                let logits = model.forward(&block_refs, &x);
                let batch_labels: Vec<u32> =
                    batch.seeds.iter().map(|&v| labels[v as usize]).collect();
                let (loss, mut dlogits) = cross_entropy(&logits, &batch_labels);
                epoch_loss += f64::from(loss);
                epoch_acc += accuracy(&logits, &batch_labels);
                contributions += 1;
                dlogits.scale(1.0 / active_workers as f32);
                model.backward(&block_refs, &dlogits);
            }
            if active_workers > 0 {
                model.step(opt);
            }
        }
        if contributions > 0 {
            losses.push((epoch_loss / contributions as f64) as f32);
            accuracies.push(epoch_acc / contributions as f64);
        }
    }
    MiniBatchTrainStats { losses, accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_cluster::ClusterSpec;
    use gp_graph::generators::{community, CommunityParams};
    use gp_graph::VertexSplit;
    use gp_partition::prelude::*;
    use gp_tensor::init::synthetic_features;
    use gp_tensor::{Adam, ModelConfig, ModelKind};

    use crate::engine::DistDglConfig;

    #[test]
    fn minibatch_training_learns() {
        let g = community(
            CommunityParams {
                n: 400,
                m: 4000,
                communities: 4,
                intra_prob: 0.8,
                degree_exponent: 2.5,
            },
            1,
        )
        .unwrap();
        let split = VertexSplit::random(g.num_vertices(), 0.5, 0.1, 2).unwrap();
        let part = Metis::default().partition_vertices(&g, 4, 1).unwrap();
        let model_cfg = ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: 16,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 4,
            seed: 7,
        };
        let mut config = DistDglConfig::paper(model_cfg, ClusterSpec::paper(4));
        config.global_batch_size = 64;
        let engine = crate::DistDglEngine::builder(&g, &part, &split).config(config).build().unwrap();

        let features = synthetic_features(g.num_vertices() as usize, 16, 3);
        // Labels learnable from the vertex's own neighbourhood features.
        let labels = gp_distgnn::train::vertex_labels(&g, &features, 4);
        let mut model = GnnModel::new(model_cfg);
        let mut opt = Adam::new(0.01);
        let stats = train(&engine, &mut model, &features, &labels, &mut opt, 12);
        assert!(stats.improved(), "losses: {:?}", stats.losses);
        assert!(*stats.accuracies.last().unwrap() > 0.5);
    }
}
