//! # gp-distdgl — mini-batch, vertex-partitioned GNN training engine
//!
//! Analogue of **DistDGL** (Zheng et al., IA³ 2020): the graph is
//! *vertex-partitioned*; every machine owns its partition's vertices
//! (adjacency + features) and its share of the training vertices. Each
//! training step every worker
//!
//! 1. **samples** a mini-batch: multi-hop fan-out neighbourhood sampling
//!    seeded at its local training vertices — expanding a vertex owned
//!    by another machine is a remote RPC,
//! 2. **fetches features** of the sampled input vertices — remote
//!    vertices cross the network (the paper's *remote vertices* metric),
//! 3. runs **forward/backward** on the sampled blocks,
//! 4. **all-reduces gradients** and updates the model.
//!
//! Sampling is executed for real (actual RNG-driven block construction
//! over the actual partition — this is where all the paper's DistDGL
//! effects originate); compute and network time come from the calibrated
//! cost model in [`gp_cluster`]. [`train::train`] additionally runs
//! the real NN math over the sampled blocks, exploiting that synchronous
//! data-parallel SGD equals sequential gradient accumulation over the
//! per-worker batches.
//!
//! [`DistDglEngine::run`] consumes a declarative `gp_cluster::RunSpec`
//! and dispatches on its resolved scenario. A `.faults(plan)` leg runs
//! an epoch under a seeded `gp_cluster::FaultPlan`: remote expansions
//! and feature fetches get timeout/retry/backoff under lossy links, and
//! worker crashes are permanent — the crashed worker's training set is
//! redistributed across the survivors (graceful degradation); an empty
//! plan reproduces the healthy baseline bit-for-bit. A
//! `.mitigate(policy)` leg layers the mitigation subsystem on top: an
//! online detector (`gp_cluster::detect`) drives intra-epoch work
//! stealing from flagged stragglers and speculative re-execution of
//! deadline-violating steps, each applied per step only when strictly
//! faster than the unmitigated step. `.elastic(..)` and `.net(..)`
//! select the churn-tolerant and message-level-network run paths.

pub mod engine;
pub mod error;
pub mod sampler;
pub mod store;
pub mod train;

pub use engine::{
    DistDglConfig, DistDglEngine, DistDglEngineBuilder, DistDglMitigation, DistDglRunReport,
    EpochSummary, FaultyEpochSummary, MitigatedEpochSummary, StepPhases, StepReport,
};
pub use error::DistDglError;
pub use sampler::{MiniBatch, SampleStats};
pub use store::PartitionedStore;
pub use train::MiniBatchTrainStats;

/// Neighbour fan-outs *scaled* to the analogue datasets. The paper's
/// fan-outs (25·20, 15·10·5, 10·10·5·5) are tuned for graphs with
/// millions of vertices; on the ~1/200-scale analogues they would make
/// every mini-batch cover the whole graph, erasing all locality
/// differences between partitioners. These values keep the
/// mini-batch-coverage *fraction* in the paper's regime while preserving
/// the taper shape. `scaled_fanouts(l)[i]` is the fan-out of layer `i`.
pub fn scaled_fanouts(num_layers: usize) -> Vec<u32> {
    match num_layers {
        1 => vec![8],
        2 => vec![6, 5],
        3 => vec![4, 3, 3],
        4 => vec![3, 3, 2, 2],
        n => vec![2; n],
    }
}

/// Neighbour fan-outs used in the paper for 2-, 3- and 4-layer models.
/// `paper_fanouts(l)[i]` is the fan-out of GNN layer `i`. Use
/// [`scaled_fanouts`] with the scaled-down analogue datasets.
pub fn paper_fanouts(num_layers: usize) -> Vec<u32> {
    match num_layers {
        1 => vec![25],
        2 => vec![25, 20],
        3 => vec![15, 10, 5],
        4 => vec![10, 10, 5, 5],
        n => {
            // Beyond the paper's range: taper from 10 down to 5.
            let mut f = vec![5u32; n];
            f[0] = 10;
            if n > 1 {
                f[1] = 10;
            }
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fanouts_match_section_5() {
        assert_eq!(paper_fanouts(2), vec![25, 20]);
        assert_eq!(paper_fanouts(3), vec![15, 10, 5]);
        assert_eq!(paper_fanouts(4), vec![10, 10, 5, 5]);
    }

    #[test]
    fn fanouts_defined_for_any_depth() {
        assert_eq!(paper_fanouts(6).len(), 6);
        assert_eq!(scaled_fanouts(6).len(), 6);
    }

    #[test]
    fn scaled_fanouts_preserve_taper() {
        for l in 1..=4 {
            let f = scaled_fanouts(l);
            assert_eq!(f.len(), l);
            assert!(f.windows(2).all(|w| w[0] >= w[1]), "{f:?} not tapering");
        }
    }
}
