//! Distributed multi-hop neighbourhood sampling.
//!
//! Produces the per-layer [`Aggregation`] blocks of one mini-batch,
//! DGL-style: sampling starts at the seeds and walks *backwards* through
//! the layers, so the block of GNN layer `i` is built after the block of
//! layer `i+1` and every destination of a block appears as its own first
//! source rows.
//!
//! While sampling, the worker expands the neighbourhood of frontier
//! vertices. Expanding a vertex owned by a different partition is a
//! remote RPC in DistDGL; we count those expansions, their bytes, and
//! the per-owner message batches. The sources of the first block are the
//! mini-batch's *input vertices*; inputs owned by other partitions are
//! the paper's *remote vertices*, whose features must be fetched over
//! the network.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;

use gp_graph::Graph;
use gp_tensor::Aggregation;

use crate::store::PartitionedStore;

/// Per-sample accounting (the paper's sampling-phase metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Total aggregation edges across all blocks.
    pub edges_sampled: u64,
    /// Frontier expansions answered locally.
    pub local_expansions: u64,
    /// Frontier expansions requiring a remote RPC.
    pub remote_expansions: u64,
    /// Bytes moved by remote sampling RPCs (requests + responses).
    pub remote_sample_bytes: u64,
    /// Remote sampling messages (batched per owner partition per hop).
    pub remote_sample_messages: u64,
    /// Input vertices of the mini-batch (sources of the first block).
    pub input_vertices: u64,
    /// Input vertices owned by other partitions (features cross the
    /// network).
    pub remote_input_vertices: u64,
}

/// One sampled mini-batch.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    /// `blocks[i]` feeds GNN layer `i`.
    pub blocks: Vec<Aggregation>,
    /// Global vertex ids of the first block's sources (the rows of the
    /// input feature matrix, in source order).
    pub input_vertices: Vec<u32>,
    /// The seed vertices (destinations of the last block).
    pub seeds: Vec<u32>,
    /// Accounting.
    pub stats: SampleStats,
    /// Remote-expansion requests served by each owner partition.
    pub rpc_requests_by_owner: Vec<u64>,
    /// Adjacency-response bytes sent by each owner partition.
    pub rpc_response_bytes_by_owner: Vec<u64>,
}

/// Request size of one remote expansion RPC and the per-neighbour
/// response size, in bytes.
const RPC_REQUEST_BYTES: u64 = 16;
const RPC_NEIGHBOR_BYTES: u64 = 8;

/// Sample one mini-batch for `worker` seeded at `seeds`.
///
/// `fanouts[i]` is the neighbour fan-out of GNN layer `i`
/// (`fanouts.len()` = number of layers = number of blocks).
///
/// # Panics
///
/// Panics if `fanouts` is empty or a seed is out of range.
pub fn sample_minibatch(
    graph: &Graph,
    store: &PartitionedStore,
    worker: u32,
    seeds: &[u32],
    fanouts: &[u32],
    rng: &mut StdRng,
) -> MiniBatch {
    assert!(!fanouts.is_empty(), "need at least one layer fan-out");
    let num_layers = fanouts.len();
    let mut stats = SampleStats::default();
    let mut rpc_requests_by_owner = vec![0u64; store.k() as usize];
    let mut rpc_response_bytes_by_owner = vec![0u64; store.k() as usize];
    let mut blocks_rev: Vec<Aggregation> = Vec::with_capacity(num_layers);

    // Current frontier: the destinations of the block being built.
    let mut frontier: Vec<u32> = dedup_preserve_order(seeds);
    let seeds_dedup = frontier.clone();

    // Walk layers from the output side back to the input side.
    for layer in (0..num_layers).rev() {
        let fanout = fanouts[layer] as usize;
        // Local index: destinations occupy the first rows, then newly
        // sampled sources.
        let mut local_index: HashMap<u32, u32> = HashMap::with_capacity(frontier.len() * 2);
        let mut src_globals: Vec<u32> = Vec::with_capacity(frontier.len() * 2);
        for &v in &frontier {
            local_index.insert(v, src_globals.len() as u32);
            src_globals.push(v);
        }
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(frontier.len());
        // Owners contacted this hop (for message batching).
        let mut owners_contacted = vec![false; store.k() as usize];
        for &v in &frontier {
            let nbrs = graph.message_neighbors(v);
            let sampled: Vec<u32> = if nbrs.len() <= fanout {
                nbrs.to_vec()
            } else {
                index_sample(rng, nbrs.len(), fanout).iter().map(|i| nbrs[i]).collect()
            };
            // Ownership accounting for the expansion itself.
            if store.is_local(v, worker) {
                stats.local_expansions += 1;
            } else {
                stats.remote_expansions += 1;
                let response_bytes = RPC_NEIGHBOR_BYTES * sampled.len() as u64;
                stats.remote_sample_bytes += RPC_REQUEST_BYTES + response_bytes;
                let owner = store.owner(v);
                rpc_requests_by_owner[owner as usize] += 1;
                rpc_response_bytes_by_owner[owner as usize] += response_bytes;
                if !owners_contacted[owner as usize] {
                    owners_contacted[owner as usize] = true;
                    stats.remote_sample_messages += 1;
                }
            }
            stats.edges_sampled += sampled.len() as u64;
            let list: Vec<u32> = sampled
                .into_iter()
                .map(|s| {
                    *local_index.entry(s).or_insert_with(|| {
                        src_globals.push(s);
                        (src_globals.len() - 1) as u32
                    })
                })
                .collect();
            lists.push(list);
        }
        blocks_rev.push(Aggregation::from_lists(src_globals.len(), &lists));
        frontier = src_globals;
    }

    blocks_rev.reverse();
    let input_vertices = frontier;
    stats.input_vertices = input_vertices.len() as u64;
    stats.remote_input_vertices =
        input_vertices.iter().filter(|&&v| !store.is_local(v, worker)).count() as u64;

    MiniBatch {
        blocks: blocks_rev,
        input_vertices,
        seeds: seeds_dedup,
        stats,
        rpc_requests_by_owner,
        rpc_response_bytes_by_owner,
    }
}

/// Pick the seeds of step `step` for `worker`: a contiguous chunk of its
/// shuffled local training vertices, cycling per epoch.
pub fn worker_seeds(
    store: &PartitionedStore,
    worker: u32,
    step: usize,
    batch_per_worker: usize,
    epoch_seed: u64,
) -> Vec<u32> {
    let local = store.local_train_vertices(worker);
    if local.is_empty() || batch_per_worker == 0 {
        return Vec::new();
    }
    // Deterministic per-epoch shuffle.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<u32> = local.to_vec();
    let mut rng = StdRng::seed_from_u64(epoch_seed ^ (u64::from(worker) << 32));
    order.shuffle(&mut rng);
    let start = (step * batch_per_worker) % order.len();
    (0..batch_per_worker.min(order.len()))
        .map(|i| order[(start + i) % order.len()])
        .collect()
}

fn dedup_preserve_order(ids: &[u32]) -> Vec<u32> {
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    ids.iter().copied().filter(|v| seen.insert(*v)).collect()
}

/// Convenience: `(num_dst, num_src, num_edges)` shapes of a mini-batch's
/// blocks, input-layer first — the input of the FLOP model.
pub fn block_shapes(batch: &MiniBatch) -> Vec<gp_tensor::flops::BlockShape> {
    batch
        .blocks
        .iter()
        .map(|b| gp_tensor::flops::BlockShape {
            num_dst: b.num_dst() as u64,
            num_src: b.num_src() as u64,
            num_edges: b.num_edges() as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::{Graph, VertexSplit};
    use gp_partition::VertexPartition;
    use rand::SeedableRng;

    /// A 2x split of a small dense graph.
    fn setup() -> (Graph, PartitionedStore) {
        let g = gp_graph::generators::gnm(60, 400, false, 3).unwrap();
        let p = VertexPartition::new(
            &g,
            2,
            (0..60).map(|v| if v < 30 { 0 } else { 1 }).collect(),
        )
        .unwrap();
        let s = VertexSplit::random(60, 0.5, 0.0, 1).unwrap();
        let store = PartitionedStore::new(&g, &p, &s).unwrap();
        (g, store)
    }

    #[test]
    fn block_chain_is_consistent() {
        let (g, store) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let seeds = vec![0u32, 1, 2, 3];
        let mb = sample_minibatch(&g, &store, 0, &seeds, &[5, 5], &mut rng);
        assert_eq!(mb.blocks.len(), 2);
        // Last block's destinations are the seeds.
        assert_eq!(mb.blocks[1].num_dst(), 4);
        // Chaining: sources of layer i+1's block are destinations of
        // layer i's block.
        assert_eq!(mb.blocks[0].num_dst(), mb.blocks[1].num_src());
        assert_eq!(mb.input_vertices.len(), mb.blocks[0].num_src());
    }

    #[test]
    fn fanout_respected() {
        let (g, store) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mb = sample_minibatch(&g, &store, 0, &[0, 5, 9], &[3, 2], &mut rng);
        for d in 0..mb.blocks[1].num_dst() {
            assert!(mb.blocks[1].degree(d) <= 2);
        }
        for d in 0..mb.blocks[0].num_dst() {
            assert!(mb.blocks[0].degree(d) <= 3);
        }
    }

    #[test]
    fn remote_accounting_zero_on_single_worker() {
        let g = gp_graph::generators::gnm(40, 200, false, 5).unwrap();
        let p = VertexPartition::new(&g, 1, vec![0; 40]).unwrap();
        let s = VertexSplit::random(40, 0.5, 0.0, 1).unwrap();
        let store = PartitionedStore::new(&g, &p, &s).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mb = sample_minibatch(&g, &store, 0, &[1, 2], &[4, 4], &mut rng);
        assert_eq!(mb.stats.remote_expansions, 0);
        assert_eq!(mb.stats.remote_input_vertices, 0);
        assert!(mb.stats.local_expansions > 0);
    }

    #[test]
    fn remote_inputs_counted() {
        let (g, store) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        // Worker 0 seeds entirely in its own half, but the dense random
        // graph pulls inputs from the other half.
        let mb = sample_minibatch(&g, &store, 0, &[0, 1, 2, 3, 4], &[10, 10], &mut rng);
        assert!(mb.stats.remote_input_vertices > 0);
        assert!(mb.stats.remote_input_vertices <= mb.stats.input_vertices);
        let remote_count =
            mb.input_vertices.iter().filter(|&&v| v >= 30).count() as u64;
        assert_eq!(remote_count, mb.stats.remote_input_vertices);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let (g, store) = setup();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = sample_minibatch(&g, &store, 0, &[0, 1], &[5, 5], &mut r1);
        let b = sample_minibatch(&g, &store, 0, &[0, 1], &[5, 5], &mut r2);
        assert_eq!(a.input_vertices, b.input_vertices);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn seeds_deduplicated() {
        let (g, store) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mb = sample_minibatch(&g, &store, 0, &[5, 5, 5], &[3], &mut rng);
        assert_eq!(mb.seeds, vec![5]);
        assert_eq!(mb.blocks[0].num_dst(), 1);
    }

    #[test]
    fn worker_seeds_cycle_and_are_local() {
        let (_, store) = setup();
        let seeds = worker_seeds(&store, 1, 0, 8, 42);
        assert_eq!(seeds.len(), 8);
        for &v in &seeds {
            assert_eq!(store.owner(v), 1);
        }
        // Different steps give different chunks.
        let next = worker_seeds(&store, 1, 1, 8, 42);
        assert_ne!(seeds, next);
    }

    #[test]
    fn block_shapes_match() {
        let (g, store) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mb = sample_minibatch(&g, &store, 0, &[0, 1, 2], &[4, 4], &mut rng);
        let shapes = block_shapes(&mb);
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[1].num_dst, 3);
        assert_eq!(shapes[0].num_src, mb.input_vertices.len() as u64);
    }
}
