//! Error type for the DistDGL engine.

use std::fmt;

/// Errors produced while building or running the engine.
#[derive(Debug)]
pub enum DistDglError {
    /// Partition `k` does not match the cluster size.
    ClusterMismatch {
        /// Partitions in the vertex partition.
        partitions: u32,
        /// Machines in the cluster spec.
        machines: u32,
    },
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl fmt::Display for DistDglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistDglError::ClusterMismatch { partitions, machines } => write!(
                f,
                "partition has {partitions} parts but cluster has {machines} machines"
            ),
            DistDglError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for DistDglError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = DistDglError::ClusterMismatch { partitions: 2, machines: 4 };
        assert!(e.to_string().contains("2 parts"));
        assert!(DistDglError::InvalidConfig("x".into()).to_string().contains("x"));
    }
}
