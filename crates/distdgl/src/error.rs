//! Error type for the DistDGL engine.

use std::fmt;

/// Errors produced while building or running the engine.
#[derive(Debug)]
pub enum DistDglError {
    /// Partition `k` does not match the cluster size.
    ClusterMismatch {
        /// Partitions in the vertex partition.
        partitions: u32,
        /// Machines in the cluster spec.
        machines: u32,
    },
    /// Invalid configuration value.
    InvalidConfig(String),
    /// A worker crashed and no survivors remain to absorb its training
    /// set.
    WorkerFailed {
        /// The crashed worker.
        machine: u32,
        /// Epoch of the crash.
        epoch: u32,
    },
    /// Cumulative recovery overhead exceeded the plan's budget.
    RecoveryBudgetExceeded {
        /// The configured budget in simulated seconds.
        budget_secs: f64,
        /// The overhead actually accumulated.
        needed_secs: f64,
    },
}

impl fmt::Display for DistDglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistDglError::ClusterMismatch { partitions, machines } => write!(
                f,
                "partition has {partitions} parts but cluster has {machines} machines"
            ),
            DistDglError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            DistDglError::WorkerFailed { machine, epoch } => {
                write!(f, "worker {machine} failed at epoch {epoch} with no survivors left")
            }
            DistDglError::RecoveryBudgetExceeded { budget_secs, needed_secs } => write!(
                f,
                "recovery overhead {needed_secs:.3}s exceeds budget {budget_secs:.3}s"
            ),
        }
    }
}

impl std::error::Error for DistDglError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = DistDglError::ClusterMismatch { partitions: 2, machines: 4 };
        assert!(e.to_string().contains("2 parts"));
        assert!(DistDglError::InvalidConfig("x".into()).to_string().contains("x"));
    }
}
