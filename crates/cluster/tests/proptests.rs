//! Property tests for the cost-model and fault-schedule invariants.
//!
//! The cost model is the lens every experiment is read through, so its
//! basic shape — non-negativity, monotonicity, straggler ratio ≥ 1,
//! seed-determinism of fault schedules — is pinned down here over
//! randomised inputs rather than a handful of examples.

use gp_cluster::time::allreduce_time;
use gp_cluster::{
    compute_time, expected_retries, max_mean_ratio, noise_charge, transfer_time, DedupWindow,
    FaultPlan, FaultSpec, MachineSpec, MessageKind, NetFaultPlan, NetFaultSpec, NetworkSpec,
    MAX_DELIVERY_ATTEMPTS,
};
use proptest::prelude::*;

/// Bounded inputs keep `u64 as f64` exact-ish and avoid overflow-driven
/// false positives; the cost model never sees anything near these caps.
const MAX_BYTES: u64 = 1 << 50;
const MAX_MSGS: u64 = 1 << 40;

fn arb_network() -> impl Strategy<Value = NetworkSpec> {
    (1e6..1e12f64, 1e-7..1e-2f64).prop_map(|(bw, lat)| {
        NetworkSpec::validated(bw, lat).expect("strategy emits positive finite values")
    })
}

proptest! {
    #[test]
    fn transfer_time_non_negative(net in arb_network(), bytes in 0..MAX_BYTES, msgs in 0..MAX_MSGS) {
        prop_assert!(transfer_time(&net, bytes, msgs) >= 0.0);
    }

    #[test]
    fn transfer_time_monotone_in_bytes(
        net in arb_network(),
        bytes in 0..MAX_BYTES,
        extra in 0..MAX_BYTES,
        msgs in 0..MAX_MSGS,
    ) {
        let base = transfer_time(&net, bytes, msgs);
        let more = transfer_time(&net, bytes.saturating_add(extra), msgs);
        prop_assert!(more >= base, "bytes {bytes} (+{extra}): {more} < {base}");
    }

    #[test]
    fn transfer_time_monotone_in_messages(
        net in arb_network(),
        bytes in 0..MAX_BYTES,
        msgs in 0..MAX_MSGS,
        extra in 0..MAX_MSGS,
    ) {
        let base = transfer_time(&net, bytes, msgs);
        let more = transfer_time(&net, bytes, msgs.saturating_add(extra));
        prop_assert!(more >= base);
    }

    #[test]
    fn allreduce_non_negative_and_monotone(
        net in arb_network(),
        bytes in 0..MAX_BYTES,
        extra in 0..MAX_BYTES,
        machines in 0u32..4096,
    ) {
        let t = allreduce_time(&net, bytes, machines);
        prop_assert!(t >= 0.0);
        prop_assert!(allreduce_time(&net, bytes.saturating_add(extra), machines) >= t);
        prop_assert!(allreduce_time(&net, bytes, machines.saturating_add(1)) >= t);
    }

    #[test]
    fn compute_time_non_negative_and_monotone(flops in 0..MAX_BYTES, extra in 0..MAX_BYTES) {
        let m = MachineSpec::paper();
        let t = compute_time(&m, flops);
        prop_assert!(t >= 0.0);
        prop_assert!(compute_time(&m, flops.saturating_add(extra)) >= t);
    }

    #[test]
    fn max_mean_ratio_at_least_one(values in proptest::collection::vec(0.0..1e12f64, 1..64)) {
        prop_assume!(values.iter().any(|&v| v > 0.0));
        prop_assert!(max_mean_ratio(&values) >= 1.0);
    }

    #[test]
    fn fault_plan_deterministic_in_seed(
        machines in 1u32..64,
        epochs in 1u32..100,
        mtbf in 0.5..50.0f64,
        seed in any::<u64>(),
    ) {
        let spec = FaultSpec::standard(machines, epochs, mtbf, seed);
        prop_assert_eq!(FaultPlan::generate(&spec), FaultPlan::generate(&spec));
    }

    #[test]
    fn fault_plan_events_within_bounds(
        machines in 1u32..64,
        epochs in 1u32..100,
        mtbf in 0.5..50.0f64,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::generate(&FaultSpec::standard(machines, epochs, mtbf, seed));
        for e in &plan.events {
            match *e {
                gp_cluster::FaultEvent::Crash { machine, epoch, step_frac } => {
                    prop_assert!(machine < machines);
                    prop_assert!(epoch < epochs);
                    prop_assert!((0.0..1.0).contains(&step_frac));
                }
                gp_cluster::FaultEvent::Slowdown { machine, from_epoch, until_epoch, factor } => {
                    prop_assert!(machine < machines);
                    prop_assert!(from_epoch < until_epoch);
                    prop_assert!(from_epoch < epochs);
                    prop_assert!(factor > 0.0 && factor <= 1.0);
                }
                gp_cluster::FaultEvent::Degradation {
                    from_epoch, until_epoch, bandwidth_factor, loss_rate,
                } => {
                    prop_assert!(from_epoch < until_epoch);
                    prop_assert!(from_epoch < epochs);
                    prop_assert!(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0);
                    prop_assert!((0.0..1.0).contains(&loss_rate));
                }
                gp_cluster::FaultEvent::CheckpointCorruption { machine, epoch } => {
                    prop_assert!(machine < machines);
                    prop_assert!(epoch < epochs);
                }
            }
        }
    }

    /// Detector determinism (mitigation acceptance): the same observed
    /// streams — however the fault seed shaped them — produce the same
    /// flags, elevations and deadline, bit for bit.
    #[test]
    fn detector_deterministic_over_random_streams(
        machines in 1u32..16,
        rounds in 1usize..200,
        seed in any::<u64>(),
    ) {
        use gp_cluster::faults::DetRng;
        use gp_cluster::{DetectorConfig, StragglerDetector};
        let run = || {
            let mut d = StragglerDetector::new(machines, DetectorConfig::per_step());
            let mut rng = DetRng::new(seed);
            for _ in 0..rounds {
                let times: Vec<f64> =
                    (0..machines).map(|_| 0.5 + 4.0 * rng.next_f64()).collect();
                d.observe_compute(&times);
                d.observe_network(0.1 + rng.next_f64());
            }
            d
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.stragglers(), b.stragglers());
        prop_assert_eq!(a.network_degraded(), b.network_degraded());
        prop_assert_eq!(a.deadline(), b.deadline());
        for m in 0..machines {
            prop_assert_eq!(a.elevation(m), b.elevation(m));
            prop_assert_eq!(a.is_straggler(m), b.is_straggler(m));
            prop_assert_eq!(a.flagged_rounds(m), b.flagged_rounds(m));
        }
    }

    /// Healthy streams — any constant per-machine profile, however
    /// imbalanced — never raise a flag: each machine is measured against
    /// its own baseline, so static imbalance is not stragglerhood.
    #[test]
    fn detector_never_fires_on_constant_streams(
        profile in proptest::collection::vec(0.1..100.0f64, 1..16),
        rounds in 1usize..100,
    ) {
        use gp_cluster::{DetectorConfig, StragglerDetector};
        let mut d = StragglerDetector::new(profile.len() as u32, DetectorConfig::per_step());
        for _ in 0..rounds {
            d.observe_compute(&profile);
            d.observe_network(profile[0]);
        }
        prop_assert!(d.stragglers().is_empty());
        prop_assert!(!d.network_degraded());
    }

    #[test]
    fn retries_monotone_in_messages_and_loss(
        msgs in 0..1_000_000u64,
        extra in 0..1_000_000u64,
        loss in 0.0..0.9f64,
        more_loss in 0.0..0.09f64,
    ) {
        let base = expected_retries(msgs, loss);
        prop_assert!(expected_retries(msgs + extra, loss) >= base);
        prop_assert!(expected_retries(msgs, loss + more_loss) >= base);
    }

    #[test]
    fn validated_specs_roundtrip(bw in 1e3..1e13f64, lat in 1e-9..1.0f64) {
        let n = NetworkSpec::validated(bw, lat).expect("positive finite");
        prop_assert_eq!(n.bandwidth_bytes_per_sec, bw);
        prop_assert_eq!(n.latency_sec, lat);
    }

    /// Exactly-once-effective delivery holds for every noise mix: no
    /// matter how aggressive the seeded loss, duplication and reorder
    /// probabilities, every unique message takes effect exactly once
    /// and every injected duplicate is discarded by the dedup window.
    #[test]
    fn noise_charge_is_exactly_once_effective(
        net in arb_network(),
        (loss, dup, reorder) in (0.0..0.6f64, 0.0..0.6f64, 0.0..0.6f64),
        messages in 1..2000u64,
        bytes in 0..(1u64 << 32),
        epoch in 0u32..100,
        src in 0u32..64,
        kind_ix in 0u8..4,
        seed in any::<u64>(),
    ) {
        let plan = NetFaultPlan {
            loss_prob: loss,
            dup_prob: dup,
            reorder_prob: reorder,
            staleness_bound: 3,
            machines: 8,
            epochs: 100,
            seed,
            ..NetFaultPlan::empty()
        };
        let kind = [
            MessageKind::FeatureFetch,
            MessageKind::GradientSync,
            MessageKind::ShardHandoff,
            MessageKind::CheckpointWrite,
        ][kind_ix as usize];
        let c = noise_charge(&plan, kind, epoch, src, messages, bytes, &net);
        prop_assert_eq!(c.delivered, c.messages, "every unique message takes effect");
        prop_assert_eq!(c.dup_discarded, c.duplicates, "every duplicate is discarded");
        prop_assert!(c.retries <= c.messages * u64::from(MAX_DELIVERY_ATTEMPTS - 1));
        prop_assert!(c.duplicates <= c.messages);
        prop_assert!(c.reordered <= c.messages);
        prop_assert!(c.extra_secs >= 0.0 && c.extra_secs.is_finite());
    }

    /// The transport charge is a pure function of its arguments: the
    /// same flow priced twice — on any thread, in any order — is
    /// bit-identical. The engines' adopt-only probes depend on this.
    #[test]
    fn noise_charge_is_deterministic(
        net in arb_network(),
        (loss, dup, reorder) in (0.0..0.6f64, 0.0..0.6f64, 0.0..0.6f64),
        messages in 0..500u64,
        bytes in 0..(1u64 << 32),
        epoch in 0u32..100,
        src in 0u32..64,
        seed in any::<u64>(),
    ) {
        let plan = NetFaultPlan {
            loss_prob: loss,
            dup_prob: dup,
            reorder_prob: reorder,
            staleness_bound: 3,
            machines: 8,
            epochs: 100,
            seed,
            ..NetFaultPlan::empty()
        };
        let a = noise_charge(&plan, MessageKind::FeatureFetch, epoch, src, messages, bytes, &net);
        let b = noise_charge(&plan, MessageKind::FeatureFetch, epoch, src, messages, bytes, &net);
        prop_assert_eq!(a, b);
    }

    /// The dedup window accepts each sequence number at most once for
    /// any arrival pattern within its capacity: duplicated and
    /// reshuffled offers of `n` unique in-window numbers always produce
    /// exactly `n` effective deliveries.
    #[test]
    fn dedup_window_is_exactly_once_under_duplication_and_reorder(
        n in 1usize..300,
        dup_every in 1u64..5,
        shuffle_seed in any::<u64>(),
    ) {
        use gp_cluster::faults::DetRng;
        // Arrival stream: every seq twice per `dup_every`, then
        // Fisher–Yates shuffled — duplication AND reorder at once.
        let mut arrivals: Vec<u64> = (0..n as u64).collect();
        arrivals.extend((0..n as u64).filter(|s| s % dup_every == 0));
        let mut rng = DetRng::new(shuffle_seed);
        for i in (1..arrivals.len()).rev() {
            arrivals.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let mut w = DedupWindow::new(n);
        let accepted = arrivals.iter().filter(|&&s| w.accept(s)).count();
        prop_assert_eq!(accepted, n, "each unique seq takes effect exactly once");
        // Re-offering anything already covered by the window is a no-op.
        for s in 0..n as u64 {
            prop_assert!(!w.accept(s), "straggling retransmission of {s} rejected");
        }
    }

    /// Partition schedules are deterministic and structurally sound for
    /// every machine count and seed: windows are non-overlapping,
    /// ascending, inside the horizon, and every minority island is
    /// non-empty but a strict minority of the fleet.
    #[test]
    fn net_fault_plan_windows_are_disjoint_strict_minorities(
        machines in 3u32..=64,
        epochs in 1u32..200,
        partition_prob in 0.0..0.5f64,
        partition_epochs in 1u32..8,
        seed in any::<u64>(),
    ) {
        let spec = NetFaultSpec {
            partition_prob,
            partition_epochs,
            ..NetFaultSpec::standard(machines, epochs, seed)
        };
        let plan = NetFaultPlan::generate(&spec);
        prop_assert_eq!(&plan, &NetFaultPlan::generate(&spec), "seed-deterministic");
        let mut prev_end = 0;
        for w in &plan.windows {
            prop_assert!(w.from_epoch >= prev_end, "windows ascending and disjoint");
            prop_assert!(w.from_epoch < w.until_epoch && w.until_epoch <= epochs);
            let minority = w.minority.count_ones();
            prop_assert!(minority >= 1, "minority island non-empty");
            prop_assert!(2 * minority < machines, "complement is a strict majority");
            prop_assert!(
                machines == 64 || w.minority >> machines == 0,
                "island within the fleet"
            );
            prev_end = w.until_epoch;
        }
    }
}
