//! Elastic cluster membership: seeded churn schedules and the fleet
//! state machine the engines' `simulate_run_elastic` paths drive.
//!
//! The paper's cost model assumes a fixed fleet for the whole run; a
//! production shared cluster does not — workers leave (preemption,
//! maintenance) and join (scale-up, rejoin after repair) continuously.
//! [`ChurnPlan::generate`] turns a [`ChurnSpec`] into a deterministic
//! schedule of [`ChurnEvent`]s the same way [`FaultPlan::generate`]
//! materialises faults: one [`DetRng`] stream per seed, fully
//! reproducible, inspectable up front. [`Fleet`] tracks which of the
//! `k` fixed worker slots are live as those events (and unplanned
//! crashes) are applied epoch by epoch.
//!
//! A *leave* is graceful — the departing worker is assumed to stream
//! its state out before going away. A *join* re-admits a vacant slot;
//! joining a slot that previously left (or crashed) is a *rejoin*.
//! How much work a join receives beyond its own returning shard is the
//! engines' decision (migrate-then-commit), not the membership layer's.

use crate::faults::{DetRng, FaultPlan, RecoveryReport};

/// One membership change, applied at the *start* of `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Worker `worker` leaves gracefully at the start of `epoch`.
    Leave {
        /// The departing worker slot.
        worker: u32,
        /// Epoch whose start the departure takes effect at.
        epoch: u32,
    },
    /// Worker `worker` (re)joins at the start of `epoch`.
    Join {
        /// The joining worker slot.
        worker: u32,
        /// Epoch whose start the join takes effect at.
        epoch: u32,
    },
}

impl ChurnEvent {
    /// The epoch the event takes effect at.
    pub fn epoch(&self) -> u32 {
        match *self {
            ChurnEvent::Leave { epoch, .. } | ChurnEvent::Join { epoch, .. } => epoch,
        }
    }

    /// The worker slot the event concerns.
    pub fn worker(&self) -> u32 {
        match *self {
            ChurnEvent::Leave { worker, .. } | ChurnEvent::Join { worker, .. } => worker,
        }
    }
}

/// Parameters of a seeded churn schedule (mirrors [`crate::FaultSpec`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Worker slots in the cluster (at most 64 — slots live in a
    /// bitmask, like replica sets do).
    pub machines: u32,
    /// Epochs the schedule covers.
    pub epochs: u32,
    /// Per-live-worker, per-epoch probability of a graceful leave.
    pub leave_prob: f64,
    /// Per-departed-worker, per-epoch probability of rejoining.
    pub rejoin_prob: f64,
    /// Leaves are suppressed once the live count would drop below this.
    pub min_live: u32,
    /// Seed of the deterministic event stream.
    pub seed: u64,
}

impl ChurnSpec {
    /// A moderate-churn schedule: roughly one leave per worker every 50
    /// epochs, departed workers rejoining within ~10, and at least half
    /// the fleet (rounded up, never below one) always live.
    pub fn standard(machines: u32, epochs: u32, seed: u64) -> Self {
        ChurnSpec {
            machines,
            epochs,
            leave_prob: 0.02,
            rejoin_prob: 0.1,
            min_live: (machines.div_ceil(2)).max(1),
            seed,
        }
    }
}

/// A fully materialised, deterministic churn schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnPlan {
    /// Events ordered by epoch; within an epoch, leaves before joins,
    /// each ordered by worker id.
    pub events: Vec<ChurnEvent>,
    /// Worker slots in the cluster.
    pub machines: u32,
    /// Epochs the schedule covers.
    pub epochs: u32,
}

impl ChurnPlan {
    /// A plan with no membership changes.
    pub fn empty() -> Self {
        ChurnPlan::default()
    }

    /// Whether the plan schedules any membership change.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Materialise the schedule for a spec. The generator walks a
    /// virtual fleet forward one epoch at a time: each live worker may
    /// leave (suppressed at `min_live`), each departed worker may
    /// rejoin. Streams are drawn in a fixed order (leaves before joins,
    /// workers ascending), so the plan is a pure function of the spec.
    ///
    /// # Panics
    ///
    /// Panics if `spec.machines` is 0 or exceeds 64.
    pub fn generate(spec: &ChurnSpec) -> ChurnPlan {
        assert!(
            spec.machines >= 1 && spec.machines <= 64,
            "churn fleet must have 1..=64 worker slots"
        );
        let mut rng = DetRng::new(spec.seed ^ 0xe1a5_71c0_feed_f1ee);
        let mut fleet = Fleet::full(spec.machines);
        let mut events = Vec::new();
        for epoch in 0..spec.epochs {
            for worker in 0..spec.machines {
                if fleet.is_live(worker)
                    && fleet.live_count() > spec.min_live
                    && rng.chance(spec.leave_prob)
                {
                    fleet.mark_left(worker);
                    events.push(ChurnEvent::Leave { worker, epoch });
                }
            }
            for worker in 0..spec.machines {
                if !fleet.is_live(worker) && rng.chance(spec.rejoin_prob) {
                    fleet.mark_joined(worker);
                    events.push(ChurnEvent::Join { worker, epoch });
                }
            }
        }
        ChurnPlan { events, machines: spec.machines, epochs: spec.epochs }
    }

    /// The leaves and joins taking effect at the start of `epoch`, each
    /// ascending by worker id.
    pub fn events_at(&self, epoch: u32) -> (Vec<u32>, Vec<u32>) {
        let mut leaves = Vec::new();
        let mut joins = Vec::new();
        for ev in &self.events {
            if ev.epoch() == epoch {
                match ev {
                    ChurnEvent::Leave { worker, .. } => leaves.push(*worker),
                    ChurnEvent::Join { worker, .. } => joins.push(*worker),
                }
            }
        }
        (leaves, joins)
    }

    /// Total scheduled leaves.
    pub fn total_leaves(&self) -> u32 {
        self.events.iter().filter(|e| matches!(e, ChurnEvent::Leave { .. })).count() as u32
    }

    /// Total scheduled joins (including rejoins).
    pub fn total_joins(&self) -> u32 {
        self.events.iter().filter(|e| matches!(e, ChurnEvent::Join { .. })).count() as u32
    }
}

/// Live/absent state of `capacity` fixed worker slots.
///
/// Slots are never renumbered: a departed worker's id stays reserved so
/// that ownership vectors, counter arrays and replica masks indexed by
/// machine id remain valid across churn, and a rejoin restores the same
/// id. Absence does not distinguish graceful leaves from crashes — a
/// scheduled [`ChurnEvent::Join`] re-admits either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fleet {
    capacity: u32,
    live: u64,
}

impl Fleet {
    /// A fleet with every slot live.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds 64.
    pub fn full(capacity: u32) -> Fleet {
        assert!(capacity >= 1 && capacity <= 64, "fleet capacity must be 1..=64");
        let live = if capacity == 64 { !0 } else { (1u64 << capacity) - 1 };
        Fleet { capacity, live }
    }

    /// Total worker slots (live or not).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bitmask of live slots.
    pub fn live_mask(&self) -> u64 {
        self.live
    }

    /// Number of live slots.
    pub fn live_count(&self) -> u32 {
        self.live.count_ones()
    }

    /// Whether slot `worker` is live.
    pub fn is_live(&self, worker: u32) -> bool {
        worker < self.capacity && self.live & (1u64 << worker) != 0
    }

    /// Live worker ids, ascending.
    pub fn live_workers(&self) -> Vec<u32> {
        (0..self.capacity).filter(|&w| self.is_live(w)).collect()
    }

    /// Absent worker ids, ascending.
    pub fn absent_workers(&self) -> Vec<u32> {
        (0..self.capacity).filter(|&w| !self.is_live(w)).collect()
    }

    /// Mark a slot absent (leave or crash). No-op when already absent.
    pub fn mark_left(&mut self, worker: u32) {
        if worker < self.capacity {
            self.live &= !(1u64 << worker);
        }
    }

    /// Mark a slot live again. No-op when already live.
    pub fn mark_joined(&mut self, worker: u32) {
        if worker < self.capacity {
            self.live |= 1u64 << worker;
        }
    }
}

/// Report of one multi-epoch elastic run (either engine).
///
/// Per-epoch vectors are indexed by epoch; `phase_seconds` carries each
/// epoch's phase breakdown in the engine's [`crate::EpochOutcome`]
/// order, and `live_workers` the worker slots that actually held work
/// during the epoch — the set every phase window of that epoch spans.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElasticRunReport {
    /// Epochs completed (always `epochs` unless an error cut the run).
    pub completed_epochs: u32,
    /// Simulated seconds of each epoch (phase totals; overheads are in
    /// `recovery` and `handoff_seconds`).
    pub epoch_seconds: Vec<f64>,
    /// Per-epoch phase breakdown (stable names, engine order).
    pub phase_seconds: Vec<Vec<(&'static str, f64)>>,
    /// Worker slots holding work in each epoch, ascending.
    pub live_workers: Vec<Vec<u32>>,
    /// Fault-recovery accounting accumulated over the run (checkpoints,
    /// restores, retries, lost progress).
    pub recovery: RecoveryReport,
    /// Graceful leaves applied.
    pub leaves: u32,
    /// Joins admitted into the fleet (work may arrive later).
    pub joins: u32,
    /// Graceful leave handoffs performed.
    pub handoffs: u32,
    /// Join rebalances committed (migrate-then-commit accepted).
    pub rebalances: u32,
    /// Join rebalances deferred because migration would not pay for
    /// itself this epoch (retried next epoch).
    pub rejected_rebalances: u32,
    /// Bytes streamed by handoffs and committed rebalances.
    pub handoff_bytes: u64,
    /// Simulated seconds spent on handoffs and committed rebalances.
    pub handoff_seconds: f64,
}

impl ElasticRunReport {
    /// Total simulated wall time: epoch time plus every modeled
    /// overhead (recovery and membership-migration traffic).
    pub fn total_seconds(&self) -> f64 {
        self.epoch_seconds.iter().sum::<f64>()
            + self.recovery.total_overhead_seconds()
            + self.handoff_seconds
    }
}

/// Policy knobs of an elastic run. `Default` is the full elastic
/// behaviour; the chaos harness compares it against the degraded
/// baseline (`no_handoff()`) to check elasticity never hurts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticOptions {
    /// Stream a departing worker's state out before it goes (true), or
    /// treat every leave as an unannounced crash (false — the
    /// "crash-without-handoff" baseline).
    pub graceful_handoff: bool,
    /// After a join's minimal repair, attempt a *global* master/owner
    /// rebalance under migrate-then-commit (true), or stick with the
    /// repair-accreted layout (false). Joins always bring their shard
    /// back online either way.
    pub rebalance_on_join: bool,
}

impl Default for ElasticOptions {
    fn default() -> Self {
        ElasticOptions { graceful_handoff: true, rebalance_on_join: true }
    }
}

impl ElasticOptions {
    /// The degraded baseline: leaves are crashes, joins are never
    /// rebalanced beyond the minimal repair.
    pub fn no_handoff() -> Self {
        ElasticOptions { graceful_handoff: false, rebalance_on_join: false }
    }
}

/// Convenience: the plan's crash epochs as a membership view — which
/// workers a [`FaultPlan`] removes before each epoch. Engines use this
/// to keep fleet state and crash handling consistent.
pub fn crashed_by_epoch(plan: &FaultPlan, epoch: u32) -> Vec<u32> {
    plan.crashed_before(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> ChurnSpec {
        ChurnSpec { machines: 8, epochs: 64, leave_prob: 0.05, rejoin_prob: 0.2, min_live: 4, seed }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = ChurnPlan::generate(&spec(7));
        let b = ChurnPlan::generate(&spec(7));
        assert_eq!(a, b);
        let c = ChurnPlan::generate(&spec(8));
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn events_are_ordered_and_consistent() {
        let plan = ChurnPlan::generate(&spec(42));
        assert!(!plan.is_empty(), "moderate churn over 64 epochs yields events");
        let mut fleet = Fleet::full(8);
        let mut last_epoch = 0;
        for ev in &plan.events {
            assert!(ev.epoch() >= last_epoch, "events sorted by epoch");
            last_epoch = ev.epoch();
            match *ev {
                ChurnEvent::Leave { worker, .. } => {
                    assert!(fleet.is_live(worker), "only live workers leave");
                    fleet.mark_left(worker);
                }
                ChurnEvent::Join { worker, .. } => {
                    assert!(!fleet.is_live(worker), "only absent workers join");
                    fleet.mark_joined(worker);
                }
            }
        }
    }

    #[test]
    fn min_live_floor_is_respected() {
        let mut s = spec(3);
        s.leave_prob = 0.9;
        s.rejoin_prob = 0.0;
        let plan = ChurnPlan::generate(&s);
        let mut fleet = Fleet::full(8);
        for ev in &plan.events {
            if let ChurnEvent::Leave { worker, .. } = *ev {
                fleet.mark_left(worker);
            }
        }
        assert!(fleet.live_count() >= s.min_live, "never below min_live");
        assert_eq!(fleet.live_count(), s.min_live, "aggressive churn drains to the floor");
    }

    #[test]
    fn rejoins_target_departed_workers() {
        let plan = ChurnPlan::generate(&spec(11));
        let mut departed: u64 = 0;
        for ev in &plan.events {
            match *ev {
                ChurnEvent::Leave { worker, .. } => departed |= 1 << worker,
                ChurnEvent::Join { worker, .. } => {
                    assert!(departed & (1 << worker) != 0, "joins are rejoins of departed slots");
                }
            }
        }
    }

    #[test]
    fn events_at_splits_by_kind() {
        let plan = ChurnPlan {
            events: vec![
                ChurnEvent::Leave { worker: 3, epoch: 2 },
                ChurnEvent::Leave { worker: 5, epoch: 2 },
                ChurnEvent::Join { worker: 1, epoch: 2 },
                ChurnEvent::Leave { worker: 0, epoch: 4 },
            ],
            machines: 8,
            epochs: 8,
        };
        let (leaves, joins) = plan.events_at(2);
        assert_eq!(leaves, vec![3, 5]);
        assert_eq!(joins, vec![1]);
        assert_eq!(plan.events_at(3), (Vec::new(), Vec::new()));
        assert_eq!(plan.total_leaves(), 3);
        assert_eq!(plan.total_joins(), 1);
    }

    #[test]
    fn fleet_tracks_masks_and_counts() {
        let mut fleet = Fleet::full(5);
        assert_eq!(fleet.live_mask(), 0b11111);
        assert_eq!(fleet.live_count(), 5);
        fleet.mark_left(2);
        fleet.mark_left(2); // idempotent
        assert!(!fleet.is_live(2));
        assert_eq!(fleet.live_workers(), vec![0, 1, 3, 4]);
        assert_eq!(fleet.absent_workers(), vec![2]);
        fleet.mark_joined(2);
        assert_eq!(fleet.live_mask(), 0b11111);
        // Out-of-range ids are ignored, not panicking.
        fleet.mark_left(64);
        assert_eq!(fleet.live_count(), 5);
    }

    #[test]
    fn full_fleet_of_64_slots_works() {
        let fleet = Fleet::full(64);
        assert_eq!(fleet.live_mask(), !0u64);
        assert_eq!(fleet.live_count(), 64);
    }

    #[test]
    fn standard_spec_produces_bounded_churn() {
        let plan = ChurnPlan::generate(&ChurnSpec::standard(8, 200, 0xc0de));
        assert!(plan.total_leaves() >= 5, "200-epoch standard churn: {}", plan.total_leaves());
        assert!(plan.total_joins() >= 3, "200-epoch standard churn: {}", plan.total_joins());
    }

    #[test]
    fn elastic_report_totals_include_overheads() {
        let mut report = ElasticRunReport {
            completed_epochs: 2,
            epoch_seconds: vec![1.0, 2.0],
            handoff_seconds: 0.5,
            ..ElasticRunReport::default()
        };
        report.recovery.restore_seconds = 0.25;
        assert_eq!(report.total_seconds(), 3.75);
    }
}
