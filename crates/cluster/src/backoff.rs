//! Shared retry/backoff policy: capped exponential delays with
//! deterministic jitter, plus the flow-level loss-retry charge both
//! training engines price lossy exchanges with.
//!
//! Before this module the "how much does message loss cost" arithmetic
//! lived inline in three places — the DistDGL sampling-RPC and
//! feature-fetch fault paths and the DistGNN replica-sync loop — each
//! repeating the same four lines (expected retries, proportional retry
//! bytes, transfer + timeout backoff). [`charge_loss_retries`] is that
//! logic extracted verbatim: the float operation order is identical, so
//! every previously published simulated time is bit-for-bit unchanged.
//!
//! [`BackoffPolicy`] is the per-attempt ladder the message-level
//! transport model ([`crate::net`]) walks: capped exponential growth
//! with jitter derived from a [`DetRng`] keyed on (seed, flow, attempt)
//! — deterministic across reruns and thread counts, yet decorrelated
//! between concurrent flows the way production RPC stacks spread
//! retry storms.

use crate::faults::{expected_retries, retry_backoff_secs, DetRng, RecoveryReport};
use crate::spec::NetworkSpec;
use crate::time::transfer_time;

/// Capped-exponential retry ladder with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in simulated seconds.
    pub base_secs: f64,
    /// Multiplier applied per attempt (2.0 = classic doubling).
    pub factor: f64,
    /// Ceiling of any single delay, in simulated seconds.
    pub cap_secs: f64,
    /// Jitter amplitude as a fraction of the delay: each delay is
    /// scaled by a factor drawn uniformly from `[1 − j, 1 + j)`.
    pub jitter_frac: f64,
    /// Seed of the jitter stream (mixed with the flow key and attempt
    /// index, so equal policies give equal delays).
    pub seed: u64,
}

impl BackoffPolicy {
    /// The ladder an RPC stack on `network` would run: first retry
    /// after one timeout (modelled as `3 × latency`, matching
    /// [`retry_backoff_secs`]), doubling, capped at
    /// [`crate::MAX_RETRY_BACKOFF_SECS`], ±10% jitter.
    pub fn rpc(network: &NetworkSpec, seed: u64) -> BackoffPolicy {
        BackoffPolicy {
            base_secs: 3.0 * network.latency_sec,
            factor: 2.0,
            cap_secs: crate::MAX_RETRY_BACKOFF_SECS,
            jitter_frac: 0.1,
            seed,
        }
    }

    /// The jitter multiplier of `(key, attempt)`: uniform in
    /// `[1 − jitter_frac, 1 + jitter_frac)`, a pure function of the
    /// policy seed, the flow key and the attempt index.
    fn jitter(&self, key: u64, attempt: u32) -> f64 {
        if self.jitter_frac <= 0.0 {
            return 1.0;
        }
        let mut rng = DetRng::new(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key.rotate_left(17))
                .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        );
        1.0 + self.jitter_frac * (2.0 * rng.next_f64() - 1.0)
    }

    /// Delay before retry number `attempt` (0-based) of flow `key`:
    /// `base · factor^attempt`, capped, then jittered. Never negative.
    pub fn delay(&self, key: u64, attempt: u32) -> f64 {
        let raw = self.base_secs * self.factor.powi(attempt.min(62) as i32);
        (raw.min(self.cap_secs) * self.jitter(key, attempt)).max(0.0)
    }

    /// Total delay of the first `attempts` retries of flow `key`.
    pub fn total_delay(&self, key: u64, attempts: u32) -> f64 {
        (0..attempts).map(|a| self.delay(key, a)).sum()
    }
}

/// What one lossy exchange costs beyond its lossless price.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryCharge {
    /// Retransmitted messages.
    pub retries: u64,
    /// Bytes moved by the retransmissions.
    pub retry_bytes: u64,
    /// Simulated seconds of retransmission transfer plus
    /// timeout/backoff wait.
    pub extra_secs: f64,
}

impl RetryCharge {
    /// Whether the exchange was effectively lossless.
    pub fn is_zero(&self) -> bool {
        self.retries == 0 && self.retry_bytes == 0 && self.extra_secs == 0.0
    }

    /// Fold the retry/byte counts into a [`RecoveryReport`]. The
    /// seconds stay with the caller — which phase they land in is the
    /// engine's decision.
    pub fn apply_counts(&self, recovery: &mut RecoveryReport) {
        recovery.retries += self.retries;
        recovery.retry_bytes += self.retry_bytes;
    }
}

/// Flow-level price of message loss on one exchange of `messages`
/// messages totalling `bytes`: the expected retransmissions at
/// `loss_rate`, the proportional share of the payload they re-move, and
/// the transfer + timeout-backoff seconds they add.
///
/// This is the exact arithmetic (operation order included) previously
/// inlined in both engines' fault paths, so replacing those blocks with
/// this call changes no simulated time.
pub fn charge_loss_retries(
    network: &NetworkSpec,
    messages: u64,
    bytes: u64,
    loss_rate: f64,
) -> RetryCharge {
    if messages == 0 || loss_rate <= 0.0 {
        return RetryCharge::default();
    }
    let retries = expected_retries(messages, loss_rate);
    let retry_bytes = bytes / messages * retries;
    let extra_secs = transfer_time(network, retry_bytes, retries)
        + retry_backoff_secs(retries, network.latency_sec);
    RetryCharge { retries, retry_bytes, extra_secs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkSpec {
        NetworkSpec::ten_gbit()
    }

    #[test]
    fn charge_matches_the_inlined_engine_arithmetic() {
        let n = net();
        let (messages, bytes, loss) = (120u64, 7_500_000u64, 0.05);
        let c = charge_loss_retries(&n, messages, bytes, loss);
        // The exact expressions the engines used inline.
        let retries = expected_retries(messages, loss);
        let retry_bytes = bytes / messages * retries;
        let extra = transfer_time(&n, retry_bytes, retries)
            + retry_backoff_secs(retries, n.latency_sec);
        assert_eq!(c.retries, retries);
        assert_eq!(c.retry_bytes, retry_bytes);
        assert_eq!(c.extra_secs, extra, "bit-exact, not approximate");
        assert!(!c.is_zero());
    }

    #[test]
    fn charge_is_zero_without_loss_or_messages() {
        let n = net();
        assert!(charge_loss_retries(&n, 0, 1_000, 0.5).is_zero());
        assert!(charge_loss_retries(&n, 10, 1_000, 0.0).is_zero());
        assert!(charge_loss_retries(&n, 10, 1_000, -1.0).is_zero());
    }

    #[test]
    fn charge_is_monotone_in_loss() {
        let n = net();
        let lo = charge_loss_retries(&n, 100, 1_000_000, 0.02);
        let hi = charge_loss_retries(&n, 100, 1_000_000, 0.2);
        assert!(hi.retries > lo.retries);
        assert!(hi.retry_bytes > lo.retry_bytes);
        assert!(hi.extra_secs > lo.extra_secs);
    }

    #[test]
    fn apply_counts_folds_into_recovery() {
        let mut r = RecoveryReport::default();
        let c = RetryCharge { retries: 5, retry_bytes: 500, extra_secs: 0.25 };
        c.apply_counts(&mut r);
        c.apply_counts(&mut r);
        assert_eq!(r.retries, 10);
        assert_eq!(r.retry_bytes, 1_000);
        assert_eq!(r.retry_seconds, 0.0, "seconds placement is the caller's call");
    }

    #[test]
    fn ladder_grows_exponentially_then_caps() {
        let p = BackoffPolicy {
            base_secs: 1.0,
            factor: 2.0,
            cap_secs: 8.0,
            jitter_frac: 0.0,
            seed: 0,
        };
        assert_eq!(p.delay(0, 0), 1.0);
        assert_eq!(p.delay(0, 1), 2.0);
        assert_eq!(p.delay(0, 2), 4.0);
        assert_eq!(p.delay(0, 3), 8.0);
        assert_eq!(p.delay(0, 10), 8.0, "capped");
        assert_eq!(p.delay(0, 62), 8.0, "huge attempt indices cannot overflow");
        assert_eq!(p.total_delay(0, 4), 15.0);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_flow_decorrelated() {
        let p = BackoffPolicy {
            base_secs: 1.0,
            factor: 2.0,
            cap_secs: 30.0,
            jitter_frac: 0.1,
            seed: 0xabc,
        };
        for attempt in 0..6 {
            let d = p.delay(7, attempt);
            let nominal = (1.0f64 * 2.0f64.powi(attempt as i32)).min(30.0);
            assert!(d >= nominal * 0.9 - 1e-12 && d < nominal * 1.1 + 1e-12, "bounded: {d}");
            assert_eq!(d, p.delay(7, attempt), "deterministic");
        }
        // Different flows see different jitter (retry storms spread out).
        let flows: Vec<f64> = (0..16).map(|k| p.delay(k, 0)).collect();
        let distinct = flows.iter().filter(|&&d| d != flows[0]).count();
        assert!(distinct > 0, "flow key must decorrelate jitter: {flows:?}");
    }

    #[test]
    fn rpc_policy_matches_the_flow_level_timeout_model() {
        let n = net();
        let p = BackoffPolicy::rpc(&n, 9);
        assert_eq!(p.base_secs, 3.0 * n.latency_sec);
        assert_eq!(p.cap_secs, crate::MAX_RETRY_BACKOFF_SECS);
        // First-retry nominal delay equals the flow-level per-retry
        // charge of `retry_backoff_secs(1, latency)`.
        let nominal = retry_backoff_secs(1, n.latency_sec);
        let d = p.delay(0, 0);
        assert!((d - nominal).abs() <= nominal * p.jitter_frac + 1e-15);
    }
}
