//! # gp-cluster — deterministic cluster cost model
//!
//! The paper runs on a 32-machine cluster (8 CPU cores @ 2.4 GHz, 64 GB
//! RAM per machine). This crate replaces that hardware with a
//! deterministic model: the training engines *count* work (FLOPs, bytes,
//! messages, resident state) per simulated machine, and this crate
//! converts the counts into simulated seconds and memory footprints.
//!
//! Because every quantity is computed exactly from the real partition
//! and the real sampled mini-batches, the *relative* numbers between
//! partitioners — the paper's subject — are faithful; only the absolute
//! scale depends on the calibration constants in [`MachineSpec`] and
//! [`NetworkSpec`].
//!
//! Beyond the healthy-cluster model, [`faults`] supplies a seeded,
//! fully deterministic fault schedule (crashes, stragglers, network
//! degradation) and the [`RecoveryReport`] accounting that both training
//! engines use to price retries, checkpoints and crash recovery, while
//! [`detect`] supplies the online straggler/degradation detector and
//! [`MitigationPolicy`]/[`MitigationReport`] types behind the engines'
//! mitigation layers (work stealing, speculation, adaptive cd-r).
//!
//! [`trace`] adds a zero-cost-when-disabled span recorder over
//! simulated time ([`TraceSink`]): engines emit per-worker, per-phase
//! [`Span`]s whose sums reproduce the reported phase totals exactly,
//! exportable as `chrome://tracing` JSON or per-phase CSV, and
//! [`EpochOutcome`] unifies the engines' per-epoch report accessors.
//!
//! [`metrics`] aggregates those spans and counter events (or, on the
//! non-traced fast path, plain epoch outcomes) into fixed-bucket
//! histograms and mergeable per-worker/per-phase snapshots with derived
//! skew statistics and a Prometheus text exporter — the substrate of
//! the `gnnpart diagnose` run-diagnosis layer.
//!
//! [`membership`] and [`checkpoint`] extend the fault model across
//! epochs: seeded leave/join/rejoin schedules ([`ChurnPlan`]) over a
//! fixed-slot [`Fleet`], and a crash-consistent snapshot store whose
//! restores are checksum-validated against the fault plan's corruption
//! schedule — the substrate of the engines' `simulate_run_elastic`
//! paths and the `gnnpart chaos` soak harness.
//!
//! [`net`] drops below the scalar brownout model to *message*
//! granularity: typed flows with sequence numbers, seeded per-message
//! loss/duplication/reorder priced by [`noise_charge`], exactly-once
//! effective delivery via [`DedupWindow`], and [`PartitionWindow`]s
//! that split the fleet into quorum/minority islands — the substrate of
//! the engines' `simulate_run_partitioned` paths and `gnnpart
//! netchaos`. [`backoff`] is the shared capped-exponential retry ladder
//! (deterministic jitter) both that transport and the engines' scalar
//! loss paths charge through.
//!
//! [`stream`] declares the dynamic-graph run leg: a [`StreamLeg`]
//! attaches a `gp_graph::stream` mutation schedule and a
//! `gp_partition` repartition policy to a [`RunSpec`], and the engines
//! answer with per-batch [`StreamBatchReport`] quality-decay rows
//! (replication factor / edge-cut / balance as the stream ages, and
//! the modeled, simulated-seconds cost of adopted repartitions).

pub mod backoff;
pub mod checkpoint;
pub mod counters;
pub mod detect;
pub mod faults;
pub mod membership;
pub mod metrics;
pub mod net;
pub mod outcome;
pub mod runspec;
pub mod spec;
pub mod stream;
pub mod time;
pub mod trace;

pub use backoff::{charge_loss_retries, BackoffPolicy, RetryCharge};

pub use checkpoint::{
    CheckpointConfig, CheckpointStore, RestoreOutcome, SnapshotMeta, WriteOutcome,
    DEFAULT_CHECKPOINT_BW,
};
pub use counters::{max_mean_ratio, ClusterCounters, MachineCounters};
pub use membership::{
    ChurnEvent, ChurnPlan, ChurnSpec, ElasticOptions, ElasticRunReport, Fleet,
};
pub use metrics::{
    fold_exact, CounterStat, MetricsRegistry, MetricsSnapshot, PhaseStat, StragglerAttribution,
    AGGREGATE_WORKER, DURATION_BUCKETS,
};
pub use detect::{DetectorConfig, MitigationPolicy, MitigationReport, StragglerDetector};
pub use faults::{
    expected_retries, retry_backoff_secs, retry_backoff_secs_capped, FaultEvent, FaultPlan,
    FaultSpec, RecoveryReport, MAX_RETRY_BACKOFF_SECS,
};
pub use net::{
    noise_charge, validate_fault_churn, DedupWindow, MessageKind, NetCharge, NetFaultPlan,
    NetFaultSpec, NetRunOptions, NetRunReport, PartitionWindow, PartitionedRunReport,
    MAX_DELIVERY_ATTEMPTS,
};
pub use outcome::EpochOutcome;
pub use runspec::{ElasticSpec, NetSpec, RunSpec, RunSpecError, Scenario};
pub use spec::{ClusterSpec, MachineSpec, NetworkSpec, SpecError};
pub use stream::{StreamBatchReport, StreamLeg, StreamRunReport};
pub use time::{compute_time, transfer_time};
pub use trace::{CounterEvent, PhaseRow, Span, TracePhase, TraceSink};
