//! Converting counted work into simulated seconds.

use crate::spec::{MachineSpec, NetworkSpec};

/// Parallel-efficiency factor applied to peak FLOPs. Dense GEMM kernels
/// (LIBXSMM in DistGNN, ATen in DistDGL) sustain a large fraction of
/// peak; the sparse aggregation share pulls the blend down somewhat.
const COMPUTE_EFFICIENCY: f64 = 0.7;

/// Time to execute `flops` floating-point operations on one machine.
pub fn compute_time(machine: &MachineSpec, flops: u64) -> f64 {
    flops as f64 / (machine.flops_per_sec() * COMPUTE_EFFICIENCY)
}

/// Time to transfer `bytes` in `messages` messages over the network
/// (bandwidth term + per-message latency term).
pub fn transfer_time(network: &NetworkSpec, bytes: u64, messages: u64) -> f64 {
    bytes as f64 / network.bandwidth_bytes_per_sec + messages as f64 * network.latency_sec
}

/// Time for a ring all-reduce of `bytes` across `machines` machines:
/// `2 (m - 1) / m` of the buffer crosses each link, plus `2 (m - 1)`
/// latency hops.
pub fn allreduce_time(network: &NetworkSpec, bytes: u64, machines: u32) -> f64 {
    if machines <= 1 {
        return 0.0;
    }
    let m = f64::from(machines);
    let volume = 2.0 * (m - 1.0) / m * bytes as f64;
    volume / network.bandwidth_bytes_per_sec + 2.0 * (m - 1.0) * network.latency_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_linearly() {
        let m = MachineSpec::paper();
        let t1 = compute_time(&m, 1_000_000);
        let t2 = compute_time(&m, 2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let n = NetworkSpec::ten_gbit();
        let t = transfer_time(&n, 0, 1);
        assert!((t - n.latency_sec).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_bandwidth_term() {
        let n = NetworkSpec::ten_gbit();
        // 1.25 GB at 1.25 GB/s = 1 second (plus zero messages).
        let t = transfer_time(&n, 1_250_000_000, 0);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_single_machine_free() {
        let n = NetworkSpec::ten_gbit();
        assert_eq!(allreduce_time(&n, 1_000_000, 1), 0.0);
    }

    #[test]
    fn allreduce_grows_mildly_with_machines() {
        // In the bandwidth-dominated regime (large buffers) the ring
        // volume converges to 2×bytes, so 32 machines cost < 2× of 2.
        let n = NetworkSpec::ten_gbit();
        let t2 = allreduce_time(&n, 1_000_000_000, 2);
        let t32 = allreduce_time(&n, 1_000_000_000, 32);
        assert!(t32 < 2.5 * t2, "t2 {t2} t32 {t32}");
        assert!(t32 > t2);
    }
}
