//! Seeded, fully deterministic fault injection.
//!
//! The paper benchmarks a *healthy* 32-machine cluster, but the systems
//! it models are built for environments where workers crash and links
//! degrade (DistDGL's KVStore RPC layer exists precisely because remote
//! fetches can stall). This module supplies the failure model both
//! training engines consume:
//!
//! * [`FaultSpec`] — generation parameters (crash MTBF, slowdown and
//!   network-degradation windows) plus a seed;
//! * [`FaultPlan`] — the concrete, reproducible schedule of
//!   [`FaultEvent`]s derived from a spec. Same seed ⇒ bit-identical
//!   plan, report and simulated times;
//! * [`RecoveryReport`] — what the faults cost: retries, re-executed
//!   work, checkpoint/restore time, recovery traffic, lost progress.
//!
//! An empty plan is the healthy baseline: engines short-circuit on
//! [`FaultPlan::is_empty`] and produce bit-identical results to their
//! fault-free paths, so existing figures and tables never drift.
//!
//! All randomness goes through the self-contained [`DetRng`] (SplitMix64)
//! so this crate stays dependency-free.

use crate::spec::NetworkSpec;

/// Loss rates are capped below 1.0 so the expected retransmission count
/// `p / (1 - p)` stays finite.
const MAX_LOSS_RATE: f64 = 0.95;

/// A minimal deterministic RNG (SplitMix64). Not cryptographic; used
/// only to derive reproducible fault schedules without pulling `rand`
/// into this dependency-free crate.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53-bit resolution).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`; 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// `machine` crashes during `epoch`, a fraction `step_frac ∈ [0, 1)`
    /// of the way through it (mini-batch engines map the fraction onto a
    /// step index; full-batch engines onto partial epoch work).
    Crash {
        /// Crashing machine.
        machine: u32,
        /// Epoch of the crash.
        epoch: u32,
        /// Position within the epoch, in `[0, 1)`.
        step_frac: f64,
    },
    /// `machine` computes at `factor` (< 1.0 = slower) of its nominal
    /// rate during `[from_epoch, until_epoch)` — a transient straggler.
    Slowdown {
        /// Affected machine.
        machine: u32,
        /// First affected epoch.
        from_epoch: u32,
        /// First unaffected epoch.
        until_epoch: u32,
        /// Compute-rate multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Cluster-wide network degradation during `[from_epoch,
    /// until_epoch)`: bandwidth is multiplied by `bandwidth_factor` and
    /// each message is lost (and retried) with probability `loss_rate`.
    Degradation {
        /// First affected epoch.
        from_epoch: u32,
        /// First unaffected epoch.
        until_epoch: u32,
        /// Bandwidth multiplier in `(0, 1]`.
        bandwidth_factor: f64,
        /// Per-message loss probability in `[0, 1)`.
        loss_rate: f64,
    },
    /// The checkpoint `machine` wrote at the end of `epoch` is corrupt
    /// (bit rot / torn write). Engines verify a checksum on restore:
    /// corruption is *detected* and recovery falls back to the previous
    /// checkpoint instead of silently restoring garbage.
    CheckpointCorruption {
        /// Machine whose checkpoint shard is corrupt.
        machine: u32,
        /// Epoch at whose end the corrupt checkpoint was written.
        epoch: u32,
    },
}

/// Parameters from which a [`FaultPlan`] is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Cluster size.
    pub machines: u32,
    /// Horizon (epochs) covered by the schedule.
    pub epochs: u32,
    /// Mean epochs between crashes *cluster-wide* (0 = no crashes).
    /// Each machine crashes at most once.
    pub crash_mtbf_epochs: f64,
    /// Per-machine, per-epoch probability that a slowdown window starts.
    pub slowdown_prob: f64,
    /// Compute-rate multiplier of a slowdown window.
    pub slowdown_factor: f64,
    /// Length of a slowdown window in epochs.
    pub slowdown_epochs: u32,
    /// Per-epoch probability that a network-degradation window starts.
    pub degradation_prob: f64,
    /// Bandwidth multiplier of a degradation window.
    pub degradation_bandwidth_factor: f64,
    /// Per-message loss rate of a degradation window.
    pub degradation_loss_rate: f64,
    /// Length of a degradation window in epochs.
    pub degradation_epochs: u32,
    /// Per-machine, per-epoch probability that the checkpoint written at
    /// that epoch's end (if any) is corrupt on disk.
    pub checkpoint_corruption_prob: f64,
    /// Abort threshold for total recovery overhead in simulated seconds
    /// (engines return `RecoveryBudgetExceeded` beyond it).
    pub recovery_budget_secs: f64,
    /// Schedule seed.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            machines: 0,
            epochs: 0,
            crash_mtbf_epochs: 0.0,
            slowdown_prob: 0.0,
            slowdown_factor: 1.0,
            slowdown_epochs: 0,
            degradation_prob: 0.0,
            degradation_bandwidth_factor: 1.0,
            degradation_loss_rate: 0.0,
            degradation_epochs: 0,
            checkpoint_corruption_prob: 0.0,
            recovery_budget_secs: f64::INFINITY,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// Crash-only spec: machines fail with the given cluster-wide MTBF,
    /// no stragglers, no degradation.
    pub fn crashes_only(machines: u32, epochs: u32, mtbf_epochs: f64, seed: u64) -> Self {
        FaultSpec {
            machines,
            epochs,
            crash_mtbf_epochs: mtbf_epochs,
            seed,
            ..FaultSpec::default()
        }
    }

    /// A realistic mixed workload: crashes at the given MTBF plus mild
    /// transient stragglers (half speed, 2 epochs) and occasional
    /// network brownouts (half bandwidth, 5% message loss, 2 epochs).
    pub fn standard(machines: u32, epochs: u32, mtbf_epochs: f64, seed: u64) -> Self {
        FaultSpec {
            machines,
            epochs,
            crash_mtbf_epochs: mtbf_epochs,
            slowdown_prob: 0.02,
            slowdown_factor: 0.5,
            slowdown_epochs: 2,
            degradation_prob: 0.05,
            degradation_bandwidth_factor: 0.5,
            degradation_loss_rate: 0.05,
            degradation_epochs: 2,
            checkpoint_corruption_prob: 0.0,
            recovery_budget_secs: f64::INFINITY,
            seed,
        }
    }
}

/// A reproducible fault schedule.
///
/// Event order is deterministic (crashes by epoch, then slowdowns by
/// (machine, epoch), then degradations by epoch), so two plans generated
/// from equal specs compare equal bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
    /// Cluster size the plan was generated for.
    pub machines: u32,
    /// Horizon (epochs) the plan covers.
    pub epochs: u32,
    /// Abort threshold for total recovery overhead in simulated seconds.
    pub recovery_budget_secs: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::empty()
    }
}

impl FaultPlan {
    /// The healthy baseline: no events. Engines treat it as "faults
    /// disabled" and produce bit-identical results to their fault-free
    /// paths.
    pub fn empty() -> Self {
        FaultPlan {
            events: Vec::new(),
            machines: 0,
            epochs: 0,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate the schedule for a spec. Deterministic: equal specs
    /// produce equal plans.
    pub fn generate(spec: &FaultSpec) -> FaultPlan {
        let mut events = Vec::new();
        let mut rng = DetRng::new(spec.seed);

        // Crashes: a cluster-wide Bernoulli process with per-epoch rate
        // 1 / MTBF; the victim machine and intra-epoch position are
        // drawn uniformly. Each machine crashes at most once.
        if spec.crash_mtbf_epochs > 0.0 && spec.machines > 0 {
            let p = (1.0 / spec.crash_mtbf_epochs).min(1.0);
            let mut crashed = vec![false; spec.machines as usize];
            for epoch in 0..spec.epochs {
                if !rng.chance(p) {
                    continue;
                }
                let machine = rng.below(u64::from(spec.machines)) as u32;
                let step_frac = rng.next_f64();
                if !crashed[machine as usize] {
                    crashed[machine as usize] = true;
                    events.push(FaultEvent::Crash { machine, epoch, step_frac });
                }
            }
        }

        // Transient slowdowns, per machine per epoch.
        if spec.slowdown_prob > 0.0 && spec.slowdown_factor < 1.0 && spec.slowdown_epochs > 0 {
            for machine in 0..spec.machines {
                for epoch in 0..spec.epochs {
                    if rng.chance(spec.slowdown_prob) {
                        events.push(FaultEvent::Slowdown {
                            machine,
                            from_epoch: epoch,
                            until_epoch: epoch.saturating_add(spec.slowdown_epochs),
                            factor: spec.slowdown_factor.max(1e-3),
                        });
                    }
                }
            }
        }

        // Cluster-wide network degradation windows.
        if spec.degradation_prob > 0.0 && spec.degradation_epochs > 0 {
            for epoch in 0..spec.epochs {
                if rng.chance(spec.degradation_prob) {
                    events.push(FaultEvent::Degradation {
                        from_epoch: epoch,
                        until_epoch: epoch.saturating_add(spec.degradation_epochs),
                        bandwidth_factor: spec.degradation_bandwidth_factor.clamp(1e-3, 1.0),
                        loss_rate: spec.degradation_loss_rate.clamp(0.0, MAX_LOSS_RATE),
                    });
                }
            }
        }

        // Checkpoint corruption, per machine per epoch. Whether an
        // engine actually wrote a checkpoint at that epoch depends on
        // its `checkpoint_every`; events for epochs without one are
        // simply inert. Generated last so enabling corruption never
        // perturbs the crash/slowdown/degradation streams above.
        if spec.checkpoint_corruption_prob > 0.0 {
            for machine in 0..spec.machines {
                for epoch in 0..spec.epochs {
                    if rng.chance(spec.checkpoint_corruption_prob) {
                        events.push(FaultEvent::CheckpointCorruption { machine, epoch });
                    }
                }
            }
        }

        FaultPlan {
            events,
            machines: spec.machines,
            epochs: spec.epochs,
            recovery_budget_secs: spec.recovery_budget_secs,
        }
    }

    /// Crashes scheduled for `epoch`, as `(machine, step_frac)` pairs in
    /// schedule order.
    pub fn crashes_in_epoch(&self, epoch: u32) -> Vec<(u32, f64)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash { machine, epoch: ce, step_frac } if ce == epoch => {
                    Some((machine, step_frac))
                }
                _ => None,
            })
            .collect()
    }

    /// Machines that crashed strictly before `epoch`.
    pub fn crashed_before(&self, epoch: u32) -> Vec<u32> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash { machine, epoch: ce, .. } if ce < epoch => Some(machine),
                _ => None,
            })
            .collect()
    }

    /// Compute-rate multiplier of `machine` during `epoch` (1.0 =
    /// nominal; the product of all active slowdown windows).
    pub fn compute_factor(&self, machine: u32, epoch: u32) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Slowdown { machine: m, from_epoch, until_epoch, factor }
                    if m == machine && from_epoch <= epoch && epoch < until_epoch =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .fold(1.0, |acc, f| acc * f)
    }

    /// The network as seen during `epoch`: bandwidth scaled by every
    /// active degradation window (latency is unaffected).
    pub fn degraded_network(&self, base: &NetworkSpec, epoch: u32) -> NetworkSpec {
        let factor = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Degradation { from_epoch, until_epoch, bandwidth_factor, .. }
                    if from_epoch <= epoch && epoch < until_epoch =>
                {
                    Some(bandwidth_factor)
                }
                _ => None,
            })
            .fold(1.0, |acc, f| acc * f);
        NetworkSpec {
            bandwidth_bytes_per_sec: base.bandwidth_bytes_per_sec * factor,
            latency_sec: base.latency_sec,
        }
    }

    /// Whether the checkpoint `machine` wrote at the end of `epoch` is
    /// corrupt (its checksum will fail verification on restore).
    pub fn corrupted_checkpoint(&self, machine: u32, epoch: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(*e, FaultEvent::CheckpointCorruption { machine: m, epoch: ce }
                if m == machine && ce == epoch)
        })
    }

    /// Per-message loss rate during `epoch`: independent losses combine
    /// as `1 − Π (1 − pᵢ)`, capped so retries stay finite.
    pub fn loss_rate(&self, epoch: u32) -> f64 {
        let survive = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Degradation { from_epoch, until_epoch, loss_rate, .. }
                    if from_epoch <= epoch && epoch < until_epoch =>
                {
                    Some(1.0 - loss_rate)
                }
                _ => None,
            })
            .fold(1.0, |acc, s| acc * s);
        (1.0 - survive).clamp(0.0, MAX_LOSS_RATE)
    }
}

/// Deterministic expected retransmission count for `messages` messages
/// under per-message loss rate `loss_rate`: `⌈messages · p / (1 − p)⌉`
/// (each lost transmission is retried until it succeeds).
pub fn expected_retries(messages: u64, loss_rate: f64) -> u64 {
    if messages == 0 || loss_rate <= 0.0 {
        return 0;
    }
    let p = loss_rate.min(MAX_LOSS_RATE);
    (messages as f64 * p / (1.0 - p)).ceil() as u64
}

/// Ceiling of the total backoff wait charged to one exchange, in
/// simulated seconds. Without a cap the linear-in-retries model grows
/// unbounded for pathological loss rates / message counts; real RPC
/// stacks clamp the ladder at a maximum cumulative wait and fail over.
/// 30 s is far above anything a sane exchange accrues (at the paper's
/// 50 µs latency the cap only binds beyond 200 000 retries), so every
/// previously published number is unchanged.
pub const MAX_RETRY_BACKOFF_SECS: f64 = 30.0;

/// Wall-time overhead of `retries` retransmissions with timeout-based
/// detection and exponential backoff: each retry waits out one RPC
/// timeout (modelled as 2× the network latency) plus the resend latency,
/// i.e. `3 × latency` per retry. Retries across a batched exchange
/// overlap, so the model charges the per-retry cost once, not the full
/// backoff ladder — clamped at [`MAX_RETRY_BACKOFF_SECS`].
pub fn retry_backoff_secs(retries: u64, latency_sec: f64) -> f64 {
    retry_backoff_secs_capped(retries, latency_sec, MAX_RETRY_BACKOFF_SECS)
}

/// [`retry_backoff_secs`] with a caller-chosen cap (clamped to it).
pub fn retry_backoff_secs_capped(retries: u64, latency_sec: f64, max_secs: f64) -> f64 {
    (retries as f64 * 3.0 * latency_sec).min(max_secs)
}

/// What a fault-injected run cost beyond the healthy baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Machine crashes handled.
    pub crashes: u32,
    /// Retransmitted messages (loss-induced retries).
    pub retries: u64,
    /// Bytes moved by retransmissions.
    pub retry_bytes: u64,
    /// Wall time spent on retries (transfer + timeout/backoff).
    pub retry_seconds: f64,
    /// Work units (steps or partial epochs) re-executed after crashes.
    pub reexecuted_steps: u64,
    /// Wall time of re-executed work.
    pub reexecution_seconds: f64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Wall time spent writing checkpoints.
    pub checkpoint_seconds: f64,
    /// Wall time restoring crashed state (replica fetch + reload).
    pub restore_seconds: f64,
    /// Network bytes moved to restore crashed state.
    pub recovery_bytes: u64,
    /// Training progress lost to crashes, in epochs.
    pub lost_progress_epochs: f64,
    /// Training vertices redistributed from crashed workers to
    /// survivors (mini-batch graceful degradation).
    pub redistributed_train_vertices: u64,
    /// Checkpoints whose checksum failed verification on restore
    /// (recovery fell back to the previous checkpoint).
    pub corrupted_checkpoints: u64,
}

impl RecoveryReport {
    /// Total wall-time overhead attributable to faults and their
    /// mitigation.
    pub fn total_overhead_seconds(&self) -> f64 {
        self.retry_seconds
            + self.reexecution_seconds
            + self.checkpoint_seconds
            + self.restore_seconds
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.crashes += other.crashes;
        self.retries += other.retries;
        self.retry_bytes += other.retry_bytes;
        self.retry_seconds += other.retry_seconds;
        self.reexecuted_steps += other.reexecuted_steps;
        self.reexecution_seconds += other.reexecution_seconds;
        self.checkpoints += other.checkpoints;
        self.checkpoint_seconds += other.checkpoint_seconds;
        self.restore_seconds += other.restore_seconds;
        self.recovery_bytes += other.recovery_bytes;
        self.lost_progress_epochs += other.lost_progress_epochs;
        self.redistributed_train_vertices += other.redistributed_train_vertices;
        self.corrupted_checkpoints += other.corrupted_checkpoints;
    }

    /// Merge many reports into one canonical aggregate. Integer fields
    /// sum exactly under any grouping; the `f64` fields go through
    /// [`crate::metrics::fold_exact`], so the result is bit-identical
    /// for every permutation and association of `reports` — the same
    /// canonical-form trick [`crate::MetricsSnapshot::merge`] uses.
    pub fn merge_all(reports: &[RecoveryReport]) -> RecoveryReport {
        let field = |f: fn(&RecoveryReport) -> f64| {
            crate::metrics::fold_exact(&reports.iter().map(f).collect::<Vec<f64>>())
        };
        let mut out = RecoveryReport::default();
        for r in reports {
            out.crashes += r.crashes;
            out.retries += r.retries;
            out.retry_bytes += r.retry_bytes;
            out.reexecuted_steps += r.reexecuted_steps;
            out.checkpoints += r.checkpoints;
            out.recovery_bytes += r.recovery_bytes;
            out.redistributed_train_vertices += r.redistributed_train_vertices;
            out.corrupted_checkpoints += r.corrupted_checkpoints;
        }
        out.retry_seconds = field(|r| r.retry_seconds);
        out.reexecution_seconds = field(|r| r.reexecution_seconds);
        out.checkpoint_seconds = field(|r| r.checkpoint_seconds);
        out.restore_seconds = field(|r| r.restore_seconds);
        out.lost_progress_epochs = field(|r| r.lost_progress_epochs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec::standard(8, 50, 5.0, 0xfa11)
    }

    #[test]
    fn same_seed_identical_plan() {
        let a = FaultPlan::generate(&spec());
        let b = FaultPlan::generate(&spec());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "standard spec over 50 epochs must inject something");
    }

    #[test]
    fn different_seed_differs() {
        let a = FaultPlan::generate(&spec());
        let mut s = spec();
        s.seed = 0xdead;
        let b = FaultPlan::generate(&s);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.compute_factor(0, 0), 1.0);
        assert_eq!(p.loss_rate(3), 0.0);
        let net = NetworkSpec::ten_gbit();
        assert_eq!(p.degraded_network(&net, 0), net);
        assert!(p.crashes_in_epoch(0).is_empty());
    }

    #[test]
    fn machines_crash_at_most_once() {
        let plan = FaultPlan::generate(&FaultSpec::crashes_only(4, 500, 1.0, 7));
        let mut seen = [false; 4];
        for e in &plan.events {
            if let FaultEvent::Crash { machine, .. } = *e {
                assert!(!seen[machine as usize], "machine {machine} crashed twice");
                seen[machine as usize] = true;
            }
        }
        assert!(seen.iter().any(|&c| c), "MTBF 1 over 500 epochs must crash someone");
    }

    #[test]
    fn crash_queries_partition_by_epoch() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::Crash { machine: 1, epoch: 3, step_frac: 0.5 },
                FaultEvent::Crash { machine: 2, epoch: 7, step_frac: 0.0 },
            ],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        assert_eq!(plan.crashes_in_epoch(3), vec![(1, 0.5)]);
        assert!(plan.crashes_in_epoch(4).is_empty());
        assert_eq!(plan.crashed_before(7), vec![1]);
        assert_eq!(plan.crashed_before(8), vec![1, 2]);
    }

    #[test]
    fn slowdown_window_bounds() {
        let plan = FaultPlan {
            events: vec![FaultEvent::Slowdown {
                machine: 0,
                from_epoch: 2,
                until_epoch: 4,
                factor: 0.5,
            }],
            machines: 2,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        assert_eq!(plan.compute_factor(0, 1), 1.0);
        assert_eq!(plan.compute_factor(0, 2), 0.5);
        assert_eq!(plan.compute_factor(0, 3), 0.5);
        assert_eq!(plan.compute_factor(0, 4), 1.0);
        assert_eq!(plan.compute_factor(1, 3), 1.0, "other machines unaffected");
    }

    #[test]
    fn degradation_scales_bandwidth_and_loss() {
        let plan = FaultPlan {
            events: vec![FaultEvent::Degradation {
                from_epoch: 0,
                until_epoch: 2,
                bandwidth_factor: 0.5,
                loss_rate: 0.1,
            }],
            machines: 2,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        let base = NetworkSpec::ten_gbit();
        let degraded = plan.degraded_network(&base, 1);
        assert!((degraded.bandwidth_bytes_per_sec - base.bandwidth_bytes_per_sec * 0.5).abs() < 1.0);
        assert_eq!(degraded.latency_sec, base.latency_sec);
        assert!((plan.loss_rate(1) - 0.1).abs() < 1e-12);
        assert_eq!(plan.loss_rate(2), 0.0);
    }

    #[test]
    fn retries_deterministic_and_monotone() {
        assert_eq!(expected_retries(0, 0.5), 0);
        assert_eq!(expected_retries(100, 0.0), 0);
        let r5 = expected_retries(100, 0.05);
        let r20 = expected_retries(100, 0.2);
        assert!(r5 > 0);
        assert!(r20 > r5);
        assert_eq!(r5, expected_retries(100, 0.05));
        // Extreme loss stays finite (capped).
        assert!(expected_retries(100, 1.0) < 100 * 100);
    }

    #[test]
    fn backoff_scales_with_retries() {
        assert_eq!(retry_backoff_secs(0, 50e-6), 0.0);
        let one = retry_backoff_secs(1, 50e-6);
        assert!(one > 0.0);
        assert!((retry_backoff_secs(10, 50e-6) - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn recovery_report_merges() {
        let mut a = RecoveryReport { crashes: 1, retries: 10, retry_seconds: 0.5, ..Default::default() };
        let b = RecoveryReport {
            crashes: 2,
            recovery_bytes: 100,
            checkpoint_seconds: 1.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.crashes, 3);
        assert_eq!(a.recovery_bytes, 100);
        assert!((a.total_overhead_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_corruption_generated_and_queryable() {
        // Enabling corruption must not perturb the other streams.
        let base = FaultPlan::generate(&spec());
        let mut s = spec();
        s.checkpoint_corruption_prob = 0.1;
        let plan = FaultPlan::generate(&s);
        let prefix: Vec<_> = plan
            .events
            .iter()
            .filter(|e| !matches!(e, FaultEvent::CheckpointCorruption { .. }))
            .cloned()
            .collect();
        assert_eq!(prefix, base.events, "corruption must extend, not reshuffle");
        let corrupt: Vec<_> = plan
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::CheckpointCorruption { machine, epoch } => Some((machine, epoch)),
                _ => None,
            })
            .collect();
        assert!(!corrupt.is_empty(), "p=0.1 over 8x50 cells must corrupt something");
        for &(m, e) in &corrupt {
            assert!(plan.corrupted_checkpoint(m, e));
        }
        assert!(!FaultPlan::empty().corrupted_checkpoint(0, 0));
        // Determinism.
        assert_eq!(plan, FaultPlan::generate(&s));
    }

    #[test]
    fn det_rng_reproducible() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(42);
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.below(10) < 10);
        }
    }

    #[test]
    fn backoff_is_capped_for_large_retry_counts() {
        // Regression: before the clamp, 10^12 retries at 50 µs latency
        // charged 1.5e8 simulated seconds (~5 simulated years) to one
        // exchange.
        let latency = 50e-6;
        assert_eq!(retry_backoff_secs(1_000_000_000_000, latency), MAX_RETRY_BACKOFF_SECS);
        assert_eq!(retry_backoff_secs(u64::MAX, latency), MAX_RETRY_BACKOFF_SECS);
        // The clamp never binds in the regime published results live in.
        let uncapped = 10.0 * 3.0 * latency;
        assert_eq!(retry_backoff_secs(10, latency), uncapped);
        // Exactly at the knee the two sides agree.
        let knee = (MAX_RETRY_BACKOFF_SECS / (3.0 * latency)) as u64;
        assert!(retry_backoff_secs(knee, latency) <= MAX_RETRY_BACKOFF_SECS);
        assert_eq!(retry_backoff_secs(knee + 1, latency), MAX_RETRY_BACKOFF_SECS);
        // Custom caps are honoured.
        assert_eq!(retry_backoff_secs_capped(1_000_000, latency, 1.0), 1.0);
    }

    /// Deterministic, irregular-valued reports for merge-property tests
    /// (f64 values that actually expose rounding-order sensitivity).
    fn arbitrary_reports(n: usize, seed: u64) -> Vec<RecoveryReport> {
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|_| RecoveryReport {
                crashes: rng.below(5) as u32,
                retries: rng.below(1000),
                retry_bytes: rng.below(1 << 30),
                retry_seconds: rng.next_f64() * 13.7,
                reexecuted_steps: rng.below(40),
                reexecution_seconds: rng.next_f64() * 101.3,
                checkpoints: rng.below(10),
                checkpoint_seconds: rng.next_f64() * 3.1,
                restore_seconds: rng.next_f64() * 7.9,
                recovery_bytes: rng.below(1 << 32),
                lost_progress_epochs: rng.next_f64() * 5.0,
                redistributed_train_vertices: rng.below(10_000),
                corrupted_checkpoints: rng.below(3),
            })
            .collect()
    }

    #[test]
    fn merge_is_commutative_bit_exactly() {
        let reports = arbitrary_reports(2, 0x517e);
        let mut ab = reports[0];
        ab.merge(&reports[1]);
        let mut ba = reports[1];
        ba.merge(&reports[0]);
        assert_eq!(ab, ba, "f64 addition commutes, so pairwise merge must too");
    }

    #[test]
    fn merge_identity_is_the_default_report() {
        let reports = arbitrary_reports(1, 0x1d);
        let mut merged = reports[0];
        merged.merge(&RecoveryReport::default());
        assert_eq!(merged, reports[0]);
        assert_eq!(RecoveryReport::merge_all(&[]), RecoveryReport::default());
        assert_eq!(RecoveryReport::merge_all(&reports), reports[0]);
    }

    #[test]
    fn merge_all_is_order_insensitive_bit_exactly() {
        let reports = arbitrary_reports(9, 0xacc);
        let oracle = RecoveryReport::merge_all(&reports);
        let mut rng = DetRng::new(0x0dd);
        let mut perm = reports.clone();
        for _ in 0..20 {
            // Fisher–Yates on the report list itself.
            for i in (1..perm.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                perm.swap(i, j);
            }
            assert_eq!(RecoveryReport::merge_all(&perm), oracle);
        }
    }

    #[test]
    fn merge_is_associative() {
        // Pairwise merge under every split of an 8-report sequence:
        // (r0..ri) merged with (ri..r8) must agree with the left fold.
        // Integer fields are exact under any grouping; the f64 fields
        // are compared at a tight relative tolerance (FP addition is
        // not bit-associative — `merge_all` is the canonical form when
        // grouping-independent bit equality is required, exactly like
        // MetricsSnapshot's sorted `sum_parts`).
        let reports = arbitrary_reports(8, 0xa550);
        let mut left_fold = RecoveryReport::default();
        for r in &reports {
            left_fold.merge(r);
        }
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
        for split in 1..reports.len() {
            let mut left = RecoveryReport::default();
            for r in &reports[..split] {
                left.merge(r);
            }
            let mut right = RecoveryReport::default();
            for r in &reports[split..] {
                right.merge(r);
            }
            left.merge(&right);
            assert_eq!(left.crashes, left_fold.crashes, "split at {split}");
            assert_eq!(left.retries, left_fold.retries, "split at {split}");
            assert_eq!(left.retry_bytes, left_fold.retry_bytes, "split at {split}");
            assert_eq!(left.reexecuted_steps, left_fold.reexecuted_steps, "split at {split}");
            assert_eq!(left.checkpoints, left_fold.checkpoints, "split at {split}");
            assert_eq!(left.recovery_bytes, left_fold.recovery_bytes, "split at {split}");
            assert_eq!(
                left.redistributed_train_vertices,
                left_fold.redistributed_train_vertices,
                "split at {split}"
            );
            assert_eq!(
                left.corrupted_checkpoints, left_fold.corrupted_checkpoints,
                "split at {split}"
            );
            assert!(close(left.retry_seconds, left_fold.retry_seconds), "split at {split}");
            assert!(
                close(left.reexecution_seconds, left_fold.reexecution_seconds),
                "split at {split}"
            );
            assert!(
                close(left.checkpoint_seconds, left_fold.checkpoint_seconds),
                "split at {split}"
            );
            assert!(close(left.restore_seconds, left_fold.restore_seconds), "split at {split}");
            assert!(
                close(left.lost_progress_epochs, left_fold.lost_progress_epochs),
                "split at {split}"
            );
        }
        // And merge_all agrees with the left fold at the same tolerance
        // (exactly on the integer fields).
        let canonical = RecoveryReport::merge_all(&reports);
        assert_eq!(canonical.crashes, left_fold.crashes);
        assert_eq!(canonical.retries, left_fold.retries);
        assert!(close(canonical.total_overhead_seconds(), left_fold.total_overhead_seconds()));
    }
}
