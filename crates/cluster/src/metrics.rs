//! Metrics aggregation over recorded traces and engine outcomes.
//!
//! [`MetricsRegistry`] turns the raw [`Span`]/[`CounterEvent`] streams
//! of a [`TraceSink`] (or, on the non-traced fast path, the phase
//! breakdown of an [`EpochOutcome`]) into fixed-bucket histograms and
//! per-worker, per-phase aggregates. [`MetricsRegistry::snapshot`]
//! freezes them into a [`MetricsSnapshot`] — the mergeable, comparable,
//! exportable artifact behind `gnnpart diagnose` and the `diagnose`
//! ablation.
//!
//! Two invariants shape the design:
//!
//! * **Exact per-epoch mass.** Phase mass is accumulated *sequentially
//!   in recording order within each epoch*, exactly like the engines'
//!   own `+=` phase accumulators, so per-worker, per-phase mass equals
//!   the engine's reported phase total bit-for-bit (`f64 ==`) — the
//!   same discipline as [`TraceSink::worker_phase_seconds`].
//! * **Order-insensitive merge.** A snapshot keeps one *sum part* per
//!   epoch (per run) and canonicalises the part list by sorting with
//!   [`f64::total_cmp`]. Merging concatenates part multisets and
//!   re-canonicalises, so `merge` is associative and commutative and
//!   the folded totals are bit-identical no matter how per-cell
//!   snapshots from a parallel sweep are grouped or ordered. Totals
//!   compare exactly against engine totals folded through
//!   [`fold_exact`] (the same sorted fold over the same per-epoch
//!   values).
//!
//! Derived statistics (bucket-quantiles, imbalance indices, straggler
//! attribution) are deterministic but *approximate* — the histogram
//! buckets quantise durations; only the sums are exact. See DESIGN.md
//! ("metrics model") for the boundary.

use std::collections::BTreeMap;

use crate::counters::{max_mean_ratio, ClusterCounters};
use crate::outcome::EpochOutcome;
use crate::trace::{counter_names, CounterEvent, Span, TracePhase, TraceSink};

/// Pseudo-worker id for aggregate observations made on the non-traced
/// fast path (an [`EpochOutcome`] has no per-worker attribution).
pub const AGGREGATE_WORKER: u32 = u32::MAX;

/// Histogram bucket upper bounds for phase durations, in simulated
/// seconds: a 1–2–5 ladder per decade from 1 µs to 1000 s. Observations
/// beyond the last bound land in the implicit `+Inf` bucket.
pub const DURATION_BUCKETS: [f64; 28] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
];

/// Fold `values` into a total after sorting by [`f64::total_cmp`] — the
/// canonical order-insensitive sum used by snapshots. Two multisets of
/// identical values fold to the identical `f64` regardless of how they
/// were produced or merged.
pub fn fold_exact(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v.iter().fold(0.0, |acc, x| acc + x)
}

/// Frozen per-(worker, phase) aggregate: a fixed-bucket histogram of
/// span durations plus exact byte/flop totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Per-bucket observation counts; the last slot is the `+Inf`
    /// overflow bucket.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// One exact sequential sum per epoch, sorted by `total_cmp`
    /// (canonical form; see the module docs).
    pub sum_parts: Vec<f64>,
    /// Largest single observation (exact).
    pub max: f64,
    /// Network bytes attributed to this worker and phase.
    pub bytes: u64,
    /// FLOPs attributed to this worker and phase.
    pub flops: u64,
}

impl Default for PhaseStat {
    fn default() -> Self {
        PhaseStat {
            bucket_counts: vec![0; DURATION_BUCKETS.len() + 1],
            count: 0,
            sum_parts: Vec::new(),
            max: 0.0,
            bytes: 0,
            flops: 0,
        }
    }
}

impl PhaseStat {
    /// Total seconds: the canonical sorted fold of the per-epoch parts.
    pub fn seconds(&self) -> f64 {
        fold_exact(&self.sum_parts)
    }

    /// Deterministic bucket-quantile (`q` in `[0, 1]`): the upper bound
    /// of the bucket containing the `⌈q·count⌉`-th observation, clamped
    /// to the exact maximum. 0.0 for an empty stat.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < DURATION_BUCKETS.len() {
                    DURATION_BUCKETS[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Merge another stat into this one (associative, commutative,
    /// canonical — see the module docs).
    pub fn merge(&mut self, other: &PhaseStat) {
        for (a, b) in self.bucket_counts.iter_mut().zip(other.bucket_counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_parts.extend_from_slice(&other.sum_parts);
        self.sum_parts.sort_by(f64::total_cmp);
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        self.bytes += other.bytes;
        self.flops += other.flops;
    }
}

/// Frozen per-(worker, name) counter aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterStat {
    /// Number of samples recorded.
    pub samples: u64,
    /// Largest sampled value (for the cumulative traffic counters the
    /// engines emit, this is the final running total).
    pub peak: f64,
}

impl CounterStat {
    fn observe(&mut self, value: f64) {
        self.samples += 1;
        if value.total_cmp(&self.peak).is_gt() {
            self.peak = value;
        }
    }

    fn merge(&mut self, other: &CounterStat) {
        self.samples += other.samples;
        if other.peak.total_cmp(&self.peak).is_gt() {
            self.peak = other.peak;
        }
    }
}

impl Default for CounterStat {
    fn default() -> Self {
        CounterStat { samples: 0, peak: f64::NEG_INFINITY }
    }
}

/// Which worker a straggler diagnosis points at, and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerAttribution {
    /// The worker with the largest total phase mass.
    pub worker: u32,
    /// The phase contributing the largest excess over the mean.
    pub phase: TracePhase,
    /// Seconds of critical path the straggler adds in that phase
    /// (its mass minus the cross-worker mean).
    pub excess_seconds: f64,
}

#[derive(Debug, Default)]
struct OpenStat {
    bucket_counts: Vec<u64>,
    count: u64,
    closed_parts: Vec<f64>,
    /// `(epoch, running sum)` of the part currently being accumulated.
    open: Option<(u32, f64)>,
    max: f64,
    bytes: u64,
    flops: u64,
}

impl OpenStat {
    fn observe(&mut self, epoch: u32, dur: f64, bytes: u64, flops: u64) {
        if self.bucket_counts.is_empty() {
            self.bucket_counts = vec![0; DURATION_BUCKETS.len() + 1];
        }
        let bucket = DURATION_BUCKETS
            .iter()
            .position(|&b| dur <= b)
            .unwrap_or(DURATION_BUCKETS.len());
        self.bucket_counts[bucket] += 1;
        self.count += 1;
        match &mut self.open {
            Some((e, sum)) if *e == epoch => *sum += dur,
            Some((_, sum)) => {
                let done = *sum;
                self.closed_parts.push(done);
                self.open = Some((epoch, dur));
            }
            None => self.open = Some((epoch, dur)),
        }
        if dur.total_cmp(&self.max).is_gt() {
            self.max = dur;
        }
        self.bytes += bytes;
        self.flops += flops;
    }

    fn freeze(&self) -> PhaseStat {
        let mut sum_parts = self.closed_parts.clone();
        if let Some((_, sum)) = self.open {
            sum_parts.push(sum);
        }
        sum_parts.sort_by(f64::total_cmp);
        PhaseStat {
            bucket_counts: if self.bucket_counts.is_empty() {
                vec![0; DURATION_BUCKETS.len() + 1]
            } else {
                self.bucket_counts.clone()
            },
            count: self.count,
            sum_parts,
            max: self.max,
            bytes: self.bytes,
            flops: self.flops,
        }
    }
}

/// Accumulating registry: feed it spans, counter events, whole sinks or
/// plain epoch outcomes, then [`MetricsRegistry::snapshot`] the result.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    phases: BTreeMap<(u32, TracePhase), OpenStat>,
    counters: BTreeMap<(u32, &'static str), CounterStat>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Observe one span: a histogram observation plus phase-mass
    /// accumulation under the span's epoch (see the module docs).
    pub fn observe_span(&mut self, span: &Span) {
        self.observe_phase(span.worker, span.phase, span.epoch, span.dur, span.bytes, span.flops);
    }

    /// Observe one phase window directly (the engine hook used by both
    /// the trace path and the non-traced fast path).
    pub fn observe_phase(
        &mut self,
        worker: u32,
        phase: TracePhase,
        epoch: u32,
        dur: f64,
        bytes: u64,
        flops: u64,
    ) {
        self.phases.entry((worker, phase)).or_default().observe(epoch, dur, bytes, flops);
    }

    /// Observe one counter sample.
    pub fn observe_counter(&mut self, ev: &CounterEvent) {
        self.counters.entry((ev.worker, ev.name)).or_default().observe(ev.value);
    }

    /// Ingest everything a sink recorded, in recording order.
    pub fn ingest_sink(&mut self, sink: &TraceSink) {
        for span in sink.spans() {
            self.observe_span(&span);
        }
        for ev in sink.counters() {
            self.observe_counter(&ev);
        }
    }

    /// Non-traced fast path: ingest a cluster's cumulative per-machine
    /// traffic counters under the canonical counter names (the same
    /// samples [`TraceSink`] records when tracing is enabled).
    pub fn ingest_cluster_counters(&mut self, counters: &ClusterCounters) {
        for (m, c) in counters.iter().enumerate() {
            let w = m as u32;
            self.counters
                .entry((w, counter_names::BYTES_SENT))
                .or_default()
                .observe(c.bytes_sent as f64);
            self.counters
                .entry((w, counter_names::BYTES_RECEIVED))
                .or_default()
                .observe(c.bytes_received as f64);
        }
    }

    /// Non-traced fast path: ingest an epoch outcome's phase breakdown
    /// as one observation per phase under [`AGGREGATE_WORKER`].
    pub fn ingest_outcome(&mut self, epoch: u32, outcome: &dyn EpochOutcome) {
        for (name, seconds) in outcome.phase_breakdown() {
            let phase = TracePhase::from_name(name)
                .expect("EpochOutcome phase names match TracePhase::name");
            self.observe_phase(AGGREGATE_WORKER, phase, epoch, seconds, 0, 0);
        }
    }

    /// Freeze the registry into a canonical, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            phases: self.phases.iter().map(|(k, v)| (*k, v.freeze())).collect(),
            counters: self.counters.clone(),
        }
    }
}

/// Frozen, canonical metrics: per-(worker, phase) histograms and
/// per-(worker, name) counter aggregates, plus the derived statistics
/// the diagnosis layer reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    phases: BTreeMap<(u32, TracePhase), PhaseStat>,
    counters: BTreeMap<(u32, &'static str), CounterStat>,
}

impl MetricsSnapshot {
    /// Snapshot of everything `sink` recorded.
    pub fn from_sink(sink: &TraceSink) -> Self {
        let mut reg = MetricsRegistry::new();
        reg.ingest_sink(sink);
        reg.snapshot()
    }

    /// Merge another snapshot into this one. Associative, commutative
    /// and canonical: any merge order or grouping of the same snapshot
    /// multiset produces a bit-identical result.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, stat) in &other.phases {
            self.phases.entry(*k).or_default().merge(stat);
        }
        for (k, c) in &other.counters {
            self.counters.entry(*k).or_default().merge(c);
        }
    }

    /// The frozen stat for `(worker, phase)`, if any observation landed
    /// there.
    pub fn phase_stat(&self, worker: u32, phase: TracePhase) -> Option<&PhaseStat> {
        self.phases.get(&(worker, phase))
    }

    /// Exact total seconds for `(worker, phase)` (0.0 when absent).
    pub fn phase_seconds(&self, worker: u32, phase: TracePhase) -> f64 {
        self.phases.get(&(worker, phase)).map_or(0.0, PhaseStat::seconds)
    }

    /// Counter aggregate for `(worker, name)`.
    pub fn counter(&self, worker: u32, name: &str) -> Option<&CounterStat> {
        self.counters.iter().find(|((w, n), _)| *w == worker && *n == name).map(|(_, c)| c)
    }

    /// Distinct counter names present, sorted.
    pub fn counter_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.counters.keys().map(|(_, n)| *n).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Real workers observed (excludes [`AGGREGATE_WORKER`]), sorted.
    pub fn workers(&self) -> Vec<u32> {
        let mut w: Vec<u32> = self
            .phases
            .keys()
            .map(|(w, _)| *w)
            .chain(self.counters.keys().map(|(w, _)| *w))
            .filter(|&w| w != AGGREGATE_WORKER)
            .collect();
        w.sort_unstable();
        w.dedup();
        w
    }

    /// Phases with at least one observation, in [`TracePhase::ALL`]
    /// order.
    pub fn phases_present(&self) -> Vec<TracePhase> {
        TracePhase::ALL
            .into_iter()
            .filter(|p| self.phases.keys().any(|(_, q)| q == p))
            .collect()
    }

    /// Per-worker load-imbalance index for one phase: `max / mean` of
    /// the per-worker exact phase mass (1.0 = perfectly balanced, 0.0
    /// when the phase carries no mass).
    pub fn imbalance_index(&self, phase: TracePhase) -> f64 {
        let workers = self.workers();
        let masses: Vec<f64> = workers.iter().map(|&w| self.phase_seconds(w, phase)).collect();
        if masses.is_empty() {
            return 0.0;
        }
        let sum = fold_exact(&masses);
        if sum <= 0.0 {
            return 0.0;
        }
        let mean = sum / masses.len() as f64;
        let max = masses.iter().copied().fold(0.0, f64::max);
        max / mean
    }

    /// Total exact mass of one worker across every phase.
    pub fn worker_seconds(&self, worker: u32) -> f64 {
        let masses: Vec<f64> =
            TracePhase::ALL.iter().map(|&p| self.phase_seconds(worker, p)).collect();
        fold_exact(&masses)
    }

    /// Communication skew: `max / mean` of per-worker network bytes
    /// across all phases (1.0 = balanced, 0.0 = no traffic).
    pub fn communication_skew(&self) -> f64 {
        max_mean_ratio(&self.per_worker(|s| s.bytes))
    }

    /// Compute skew: `max / mean` of per-worker FLOPs across all phases.
    /// In the straggler-gated engines every worker's *duration* mass is
    /// the shared critical path, so load imbalance shows up here (and in
    /// [`MetricsSnapshot::communication_skew`]), not in durations.
    pub fn compute_skew(&self) -> f64 {
        max_mean_ratio(&self.per_worker(|s| s.flops))
    }

    /// Per-phase `max / mean` of per-worker FLOPs (0.0 if no work).
    pub fn phase_flops_imbalance(&self, phase: TracePhase) -> f64 {
        let v: Vec<u64> = self
            .workers()
            .iter()
            .map(|&w| self.phase_stat(w, phase).map_or(0, |s| s.flops))
            .collect();
        max_mean_ratio(&v)
    }

    /// Per-phase `max / mean` of per-worker bytes (0.0 if no traffic).
    pub fn phase_bytes_imbalance(&self, phase: TracePhase) -> f64 {
        let v: Vec<u64> = self
            .workers()
            .iter()
            .map(|&w| self.phase_stat(w, phase).map_or(0, |s| s.bytes))
            .collect();
        max_mean_ratio(&v)
    }

    /// The per-worker, all-phase total stat merged across workers (for
    /// cluster-wide quantiles); [`None`] when nothing was observed for
    /// `phase`.
    pub fn cluster_phase_stat(&self, phase: TracePhase) -> Option<PhaseStat> {
        let mut merged: Option<PhaseStat> = None;
        for ((_, p), stat) in &self.phases {
            if *p == phase {
                match &mut merged {
                    Some(m) => m.merge(stat),
                    None => merged = Some(stat.clone()),
                }
            }
        }
        merged
    }

    fn per_worker(&self, f: impl Fn(&PhaseStat) -> u64) -> Vec<u64> {
        self.workers()
            .iter()
            .map(|&w| {
                TracePhase::ALL.iter().filter_map(|&p| self.phase_stat(w, p)).map(&f).sum()
            })
            .collect()
    }

    /// Straggler attribution: the worker with the largest total mass
    /// (ties broken toward the lowest id), the phase where it exceeds
    /// the cross-worker mean the most, and by how many seconds. `None`
    /// without at least two workers.
    pub fn straggler(&self) -> Option<StragglerAttribution> {
        let workers = self.workers();
        if workers.len() < 2 {
            return None;
        }
        let totals: Vec<f64> = workers.iter().map(|&w| self.worker_seconds(w)).collect();
        let mut straggler = 0usize;
        for (i, t) in totals.iter().enumerate() {
            if t.total_cmp(&totals[straggler]).is_gt() {
                straggler = i;
            }
        }
        let worker = workers[straggler];
        let n = workers.len() as f64;
        let mut best: Option<(TracePhase, f64)> = None;
        for phase in TracePhase::ALL {
            let masses: Vec<f64> =
                workers.iter().map(|&w| self.phase_seconds(w, phase)).collect();
            let mean = fold_exact(&masses) / n;
            let excess = self.phase_seconds(worker, phase) - mean;
            if best.is_none() || excess.total_cmp(&best.expect("set").1).is_gt() {
                best = Some((phase, excess));
            }
        }
        let (phase, excess_seconds) = best.expect("ALL is non-empty");
        Some(StragglerAttribution { worker, phase, excess_seconds })
    }

    /// Load-based straggler attribution: the worker carrying the most
    /// FLOPs, the phase where its load excess costs the most critical
    /// path, and that cost in seconds. In the straggler-gated engines a
    /// phase's time scales with the maximum per-worker load, so a
    /// balanced phase would take `observed · mean/max` — the excess is
    /// `observed · (load − mean)/max`. `None` without two workers or
    /// any recorded FLOPs.
    pub fn load_straggler(&self) -> Option<StragglerAttribution> {
        let workers = self.workers();
        if workers.len() < 2 {
            return None;
        }
        let loads = self.per_worker(|s| s.flops);
        if loads.iter().all(|&l| l == 0) {
            return None;
        }
        let mut si = 0usize;
        for (i, l) in loads.iter().enumerate() {
            if *l > loads[si] {
                si = i;
            }
        }
        let worker = workers[si];
        let mut best: Option<(TracePhase, f64)> = None;
        for phase in TracePhase::ALL {
            let v: Vec<u64> = workers
                .iter()
                .map(|&w| self.phase_stat(w, phase).map_or(0, |s| s.flops))
                .collect();
            let max = *v.iter().max().expect("workers non-empty");
            if max == 0 {
                continue;
            }
            let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
            let excess = self.phase_seconds(worker, phase) * (v[si] as f64 - mean).max(0.0)
                / max as f64;
            if best.is_none() || excess.total_cmp(&best.expect("set").1).is_gt() {
                best = Some((phase, excess));
            }
        }
        best.map(|(phase, excess_seconds)| StragglerAttribution { worker, phase, excess_seconds })
    }

    /// Prometheus text exposition: one `# HELP`/`# TYPE` pair per
    /// metric family, cumulative (monotone) histogram buckets, label
    /// order and float formatting fully deterministic.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP gnnpart_phase_duration_seconds Simulated per-span phase durations.\n\
             # TYPE gnnpart_phase_duration_seconds histogram\n",
        );
        for ((worker, phase), stat) in &self.phases {
            let labels = format!("worker=\"{}\",phase=\"{}\"", worker_label(*worker), phase.name());
            let mut cumulative = 0u64;
            for (i, &c) in stat.bucket_counts.iter().enumerate() {
                cumulative += c;
                let le = if i < DURATION_BUCKETS.len() {
                    prom_f64(DURATION_BUCKETS[i])
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!(
                    "gnnpart_phase_duration_seconds_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "gnnpart_phase_duration_seconds_sum{{{labels}}} {}\n",
                prom_f64(stat.seconds())
            ));
            out.push_str(&format!(
                "gnnpart_phase_duration_seconds_count{{{labels}}} {}\n",
                stat.count
            ));
        }
        out.push_str(
            "# HELP gnnpart_phase_bytes_total Network bytes attributed per worker and phase.\n\
             # TYPE gnnpart_phase_bytes_total counter\n",
        );
        for ((worker, phase), stat) in &self.phases {
            out.push_str(&format!(
                "gnnpart_phase_bytes_total{{worker=\"{}\",phase=\"{}\"}} {}\n",
                worker_label(*worker),
                phase.name(),
                stat.bytes
            ));
        }
        out.push_str(
            "# HELP gnnpart_phase_flops_total FLOPs attributed per worker and phase.\n\
             # TYPE gnnpart_phase_flops_total counter\n",
        );
        for ((worker, phase), stat) in &self.phases {
            out.push_str(&format!(
                "gnnpart_phase_flops_total{{worker=\"{}\",phase=\"{}\"}} {}\n",
                worker_label(*worker),
                phase.name(),
                stat.flops
            ));
        }
        out.push_str(
            "# HELP gnnpart_counter_peak Peak sampled value of each engine counter.\n\
             # TYPE gnnpart_counter_peak gauge\n",
        );
        for ((worker, name), c) in &self.counters {
            out.push_str(&format!(
                "gnnpart_counter_peak{{worker=\"{}\",name=\"{name}\"}} {}\n",
                worker_label(*worker),
                prom_f64(c.peak)
            ));
        }
        // Network transport families, present only when a run actually
        // recorded `net_*` counters (the partitioned path), so every
        // artifact produced by earlier paths stays byte-identical.
        let net_families: [(&str, &str, &str); 4] = [
            (
                crate::trace::counter_names::NET_RETRIES,
                "gnnpart_net_retries_total",
                "Loss-induced message retransmissions (message-level transport model).",
            ),
            (
                crate::trace::counter_names::NET_RETRY_SECONDS,
                "gnnpart_net_retry_seconds_total",
                "Simulated seconds lost to transport noise (retries, backoff, reorder).",
            ),
            (
                crate::trace::counter_names::NET_DUP_DISCARDED,
                "gnnpart_net_dup_discarded_total",
                "Duplicate message arrivals discarded by dedup windows.",
            ),
            (
                crate::trace::counter_names::NET_PARTITION_EPOCHS,
                "gnnpart_net_partition_epochs_total",
                "Epochs spent inside network partition windows.",
            ),
        ];
        for (counter, family, help) in net_families {
            let rows: Vec<_> =
                self.counters.iter().filter(|((_, name), _)| *name == counter).collect();
            if rows.is_empty() {
                continue;
            }
            out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} counter\n"));
            for ((worker, _), c) in rows {
                out.push_str(&format!(
                    "{family}{{worker=\"{}\"}} {}\n",
                    worker_label(*worker),
                    prom_f64(c.peak)
                ));
            }
        }
        // Streaming dynamic-graph families, present only when a run
        // actually recorded `stream_*` counters (the stream path), so
        // artifacts of every other path stay byte-identical. Quality
        // metrics fluctuate, so they export as gauges with the *peak*
        // (worst decay) value; the repartition tallies are cumulative
        // counters.
        let stream_families: [(&str, &str, &str, &str); 7] = [
            (
                crate::trace::counter_names::STREAM_LIVE_EDGES,
                "gnnpart_stream_live_edges",
                "gauge",
                "Live edges in the stream snapshot (peak over batches).",
            ),
            (
                crate::trace::counter_names::STREAM_REPLICATION_FACTOR,
                "gnnpart_stream_replication_factor",
                "gauge",
                "Replication factor as the stream ages (peak = worst decay).",
            ),
            (
                crate::trace::counter_names::STREAM_EDGE_CUT,
                "gnnpart_stream_edge_cut",
                "gauge",
                "Edge-cut ratio as the stream ages (peak = worst decay).",
            ),
            (
                crate::trace::counter_names::STREAM_BALANCE,
                "gnnpart_stream_balance",
                "gauge",
                "Partition balance (max/mean) as the stream ages (peak).",
            ),
            (
                crate::trace::counter_names::STREAM_TRAIN_BALANCE,
                "gnnpart_stream_train_balance",
                "gauge",
                "Training-vertex balance as the stream ages (peak).",
            ),
            (
                crate::trace::counter_names::STREAM_REPARTITIONS,
                "gnnpart_stream_repartitions_total",
                "counter",
                "Adopted full repartitions over the stream.",
            ),
            (
                crate::trace::counter_names::STREAM_PARTITION_SECONDS,
                "gnnpart_stream_partition_seconds_total",
                "counter",
                "Modeled repartitioning cost in simulated seconds.",
            ),
        ];
        for (counter, family, kind, help) in stream_families {
            let rows: Vec<_> =
                self.counters.iter().filter(|((_, name), _)| *name == counter).collect();
            if rows.is_empty() {
                continue;
            }
            out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {kind}\n"));
            for ((worker, _), c) in rows {
                out.push_str(&format!(
                    "{family}{{worker=\"{}\"}} {}\n",
                    worker_label(*worker),
                    prom_f64(c.peak)
                ));
            }
        }
        out
    }
}

fn worker_label(worker: u32) -> String {
    if worker == AGGREGATE_WORKER {
        "aggregate".to_string()
    } else {
        worker.to_string()
    }
}

/// Deterministic Prometheus float formatting (shortest round-trip; no
/// NaN/inf can reach an export — peaks start at -inf only when a
/// counter family is empty, which never serialises).
fn prom_f64(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        "0".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DetRng;

    fn span(worker: u32, epoch: u32, phase: TracePhase, dur: f64, bytes: u64) -> Span {
        Span { worker, epoch, step: 0, phase, t_start: 0.0, dur, bytes, flops: bytes * 2 }
    }

    #[test]
    fn per_epoch_mass_matches_sequential_accumulation() {
        let mut reg = MetricsRegistry::new();
        let durs = [0.1, 0.2, 0.3, 1e-9, 0.7];
        let mut expect_e0 = 0.0;
        for d in durs {
            reg.observe_span(&span(1, 0, TracePhase::Forward, d, 0));
            expect_e0 += d;
        }
        let mut expect_e1 = 0.0;
        for d in [0.5, 1e-12] {
            reg.observe_span(&span(1, 1, TracePhase::Forward, d, 0));
            expect_e1 += d;
        }
        let snap = reg.snapshot();
        let stat = snap.phase_stat(1, TracePhase::Forward).unwrap();
        assert_eq!(stat.count, 7);
        assert_eq!(stat.sum_parts.len(), 2, "one part per epoch");
        // The canonical fold reproduces the sorted per-epoch sums.
        assert_eq!(snap.phase_seconds(1, TracePhase::Forward), fold_exact(&[expect_e0, expect_e1]));
        assert_eq!(stat.max, 0.7);
    }

    #[test]
    fn bucket_counts_and_quantiles() {
        let mut reg = MetricsRegistry::new();
        // 90 fast observations, 10 slow ones.
        for i in 0..90 {
            reg.observe_span(&span(0, 0, TracePhase::Sync, 1.5e-4, i));
        }
        for _ in 0..10 {
            reg.observe_span(&span(0, 0, TracePhase::Sync, 3.0, 0));
        }
        let snap = reg.snapshot();
        let stat = snap.phase_stat(0, TracePhase::Sync).unwrap();
        assert_eq!(stat.count, 100);
        assert_eq!(stat.bucket_counts.iter().sum::<u64>(), 100);
        // p50 and p90 land in the 2e-4 bucket, p95/p99 in the 5.0 one.
        assert_eq!(stat.quantile(0.5), 2e-4);
        assert_eq!(stat.quantile(0.9), 2e-4);
        assert_eq!(stat.quantile(0.95), 3.0, "clamped to the exact max");
        assert_eq!(stat.quantile(0.99), 3.0);
        assert_eq!(stat.quantile(1.0), 3.0);
        assert_eq!(stat.bytes, (0..90).sum::<u64>());
    }

    #[test]
    fn overflow_bucket_quantile_returns_max() {
        let mut reg = MetricsRegistry::new();
        reg.observe_span(&span(0, 0, TracePhase::Forward, 5000.0, 0));
        let snap = reg.snapshot();
        let stat = snap.phase_stat(0, TracePhase::Forward).unwrap();
        assert_eq!(*stat.bucket_counts.last().unwrap(), 1, "beyond the ladder = +Inf bucket");
        assert_eq!(stat.quantile(0.5), 5000.0);
        assert_eq!(stat.quantile(0.0), 5000.0, "rank clamps to 1");
    }

    #[test]
    fn empty_stat_is_zero() {
        let stat = PhaseStat::default();
        assert_eq!(stat.quantile(0.99), 0.0);
        assert_eq!(stat.seconds(), 0.0);
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.phase_seconds(0, TracePhase::Forward), 0.0);
        assert_eq!(snap.imbalance_index(TracePhase::Forward), 0.0);
        assert_eq!(snap.communication_skew(), 0.0);
        assert!(snap.straggler().is_none());
        assert!(snap.workers().is_empty());
    }

    #[test]
    fn imbalance_and_skew() {
        let mut reg = MetricsRegistry::new();
        reg.observe_span(&span(0, 0, TracePhase::Forward, 1.0, 100));
        reg.observe_span(&span(1, 0, TracePhase::Forward, 3.0, 300));
        let snap = reg.snapshot();
        // max 3 / mean 2 = 1.5.
        assert!((snap.imbalance_index(TracePhase::Forward) - 1.5).abs() < 1e-12);
        assert!((snap.communication_skew() - 1.5).abs() < 1e-12);
        assert_eq!(snap.workers(), vec![0, 1]);
    }

    #[test]
    fn straggler_attribution_points_at_worst_phase() {
        let mut reg = MetricsRegistry::new();
        for w in 0..4u32 {
            reg.observe_span(&span(w, 0, TracePhase::Forward, 1.0, 0));
            reg.observe_span(&span(w, 0, TracePhase::Sync, 0.5, 0));
        }
        // Worker 2 drags sync.
        reg.observe_span(&span(2, 0, TracePhase::Sync, 4.0, 0));
        let snap = reg.snapshot();
        let s = snap.straggler().unwrap();
        assert_eq!(s.worker, 2);
        assert_eq!(s.phase, TracePhase::Sync);
        // Its sync mass 4.5 vs mean (0.5*3 + 4.5)/4 = 1.5 → excess 3.0.
        assert!((s.excess_seconds - 3.0).abs() < 1e-12);
    }

    #[test]
    fn load_skew_and_straggler_from_flops() {
        let mut reg = MetricsRegistry::new();
        // Equal gated durations (as the engines emit), skewed loads.
        for w in 0..4u32 {
            let flops = if w == 3 { 700 } else { 100 };
            reg.observe_phase(w, TracePhase::Forward, 0, 2.0, 50, flops);
            reg.observe_phase(w, TracePhase::Sync, 0, 1.0, if w == 3 { 400 } else { 200 }, 0);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.imbalance_index(TracePhase::Forward), 1.0, "durations are gated");
        // flops: max 700 / mean 250 = 2.8.
        assert!((snap.phase_flops_imbalance(TracePhase::Forward) - 2.8).abs() < 1e-12);
        assert!((snap.compute_skew() - 2.8).abs() < 1e-12);
        // bytes: per-worker totals 250,250,250,450 → max/mean = 1.5.
        assert!((snap.communication_skew() - 1.5).abs() < 1e-12);
        assert!(snap.phase_bytes_imbalance(TracePhase::Sync) > 1.0);
        let s = snap.load_straggler().unwrap();
        assert_eq!(s.worker, 3);
        assert_eq!(s.phase, TracePhase::Forward);
        // 2.0 s · (700 − 250)/700 ≈ 1.2857 s of critical path.
        assert!((s.excess_seconds - 2.0 * 450.0 / 700.0).abs() < 1e-12);
        // Cluster-wide stat merges all four workers' observations.
        let cs = snap.cluster_phase_stat(TracePhase::Forward).unwrap();
        assert_eq!(cs.count, 4);
        assert_eq!(cs.flops, 1000);
        assert!(snap.cluster_phase_stat(TracePhase::Migration).is_none());
    }

    #[test]
    fn counters_track_peak_and_samples() {
        let mut reg = MetricsRegistry::new();
        for (t, v) in [(0.0, 10.0), (1.0, 25.0), (2.0, 15.0)] {
            reg.observe_counter(&CounterEvent { t, worker: 1, name: "bytes_sent", value: v });
        }
        let snap = reg.snapshot();
        let c = snap.counter(1, "bytes_sent").unwrap();
        assert_eq!(c.samples, 3);
        assert_eq!(c.peak, 25.0);
        assert_eq!(snap.counter_names(), vec!["bytes_sent"]);
    }

    #[test]
    fn ingest_cluster_counters_mirrors_trace_samples() {
        let mut counters = ClusterCounters::new(2);
        counters.machine_mut(0).send(100);
        counters.machine_mut(1).receive(40);
        let mut reg = MetricsRegistry::new();
        reg.ingest_cluster_counters(&counters);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(0, counter_names::BYTES_SENT).unwrap().peak, 100.0);
        assert_eq!(snap.counter(1, counter_names::BYTES_RECEIVED).unwrap().peak, 40.0);
        assert_eq!(snap.counter_names(), vec!["bytes_received", "bytes_sent"]);
    }

    #[test]
    fn ingest_outcome_records_aggregate_phases() {
        struct Fake;
        impl EpochOutcome for Fake {
            fn epoch_time(&self) -> f64 {
                0.6
            }
            fn total_bytes(&self) -> u64 {
                0
            }
            fn phase_breakdown(&self) -> Vec<(&'static str, f64)> {
                vec![("forward", 0.4), ("sync", 0.2)]
            }
        }
        let mut reg = MetricsRegistry::new();
        reg.ingest_outcome(0, &Fake);
        reg.ingest_outcome(1, &Fake);
        let snap = reg.snapshot();
        assert_eq!(
            snap.phase_seconds(AGGREGATE_WORKER, TracePhase::Forward),
            fold_exact(&[0.4, 0.4])
        );
        assert!(snap.workers().is_empty(), "aggregate worker is not a real worker");
    }

    /// Random snapshots via the deterministic RNG: merge must be
    /// associative and order-insensitive bit-for-bit (the property the
    /// threaded sweeps rely on).
    #[test]
    fn merge_is_associative_and_order_insensitive() {
        let mut rng = DetRng::new(0x5eed_beef);
        let mut random_snapshot = |salt: u32| {
            let mut reg = MetricsRegistry::new();
            for _ in 0..(1 + rng.below(20)) {
                let worker = rng.below(3) as u32;
                let phase = TracePhase::ALL[rng.below(10) as usize];
                let epoch = rng.below(4) as u32;
                let dur = rng.next_f64() * 10f64.powi(rng.below(8) as i32 - 6);
                reg.observe_phase(worker, phase, epoch, dur, rng.below(1000), salt as u64);
            }
            for _ in 0..rng.below(5) {
                reg.observe_counter(&CounterEvent {
                    t: 0.0,
                    worker: rng.below(3) as u32,
                    name: "bytes_sent",
                    value: rng.next_f64() * 1e6,
                });
            }
            reg.snapshot()
        };
        for round in 0..50u32 {
            let a = random_snapshot(round);
            let b = random_snapshot(round + 1000);
            let c = random_snapshot(round + 2000);
            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "round {round}: associativity");
            // Any permutation agrees.
            let mut cba = c.clone();
            cba.merge(&b);
            cba.merge(&a);
            assert_eq!(left, cba, "round {round}: order-insensitivity");
            // Identity element.
            let mut with_empty = left.clone();
            with_empty.merge(&MetricsSnapshot::default());
            assert_eq!(with_empty, left, "round {round}: empty is identity");
        }
    }

    #[test]
    fn merged_totals_are_exact_folds() {
        // Two runs of the same cell merged must fold their per-epoch
        // parts exactly like fold_exact over the union.
        let mut r1 = MetricsRegistry::new();
        r1.observe_phase(0, TracePhase::Forward, 0, 0.1, 0, 0);
        r1.observe_phase(0, TracePhase::Forward, 1, 0.2, 0, 0);
        let mut r2 = MetricsRegistry::new();
        r2.observe_phase(0, TracePhase::Forward, 0, 1e16, 0, 0);
        r2.observe_phase(0, TracePhase::Forward, 1, 1.0, 0, 0);
        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(
            m.phase_seconds(0, TracePhase::Forward),
            fold_exact(&[0.1, 0.2, 1e16, 1.0])
        );
    }

    #[test]
    fn prometheus_export_shape() {
        let mut reg = MetricsRegistry::new();
        reg.observe_span(&span(0, 0, TracePhase::Forward, 1.5e-4, 64));
        reg.observe_span(&span(1, 0, TracePhase::Sync, 2.0, 32));
        reg.observe_counter(&CounterEvent { t: 0.0, worker: 0, name: "bytes_sent", value: 64.0 });
        let text = reg.snapshot().to_prometheus();
        // One # TYPE per family.
        assert_eq!(text.matches("# TYPE gnnpart_phase_duration_seconds histogram").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_phase_bytes_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_phase_flops_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_counter_peak gauge").count(), 1);
        // Monotone cumulative buckets ending in +Inf == count.
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains(
            "gnnpart_phase_duration_seconds_count{worker=\"0\",phase=\"forward\"} 1"
        ));
        assert!(text.contains("gnnpart_phase_bytes_total{worker=\"1\",phase=\"sync\"} 32"));
        assert!(text.contains("gnnpart_counter_peak{worker=\"0\",name=\"bytes_sent\"} 64"));
        // Deterministic: identical rebuild, identical bytes.
        let mut reg2 = MetricsRegistry::new();
        reg2.observe_span(&span(0, 0, TracePhase::Forward, 1.5e-4, 64));
        reg2.observe_span(&span(1, 0, TracePhase::Sync, 2.0, 32));
        reg2.observe_counter(&CounterEvent { t: 0.0, worker: 0, name: "bytes_sent", value: 64.0 });
        assert_eq!(text, reg2.snapshot().to_prometheus());
    }

    #[test]
    fn prometheus_net_families_appear_only_when_recorded() {
        let mut reg = MetricsRegistry::new();
        reg.observe_span(&span(0, 0, TracePhase::Forward, 1.5e-4, 64));
        let without = reg.snapshot().to_prometheus();
        assert!(!without.contains("gnnpart_net_"), "no net counters, no net families");
        reg.observe_counter(&CounterEvent {
            t: 0.0,
            worker: 0,
            name: crate::trace::counter_names::NET_RETRIES,
            value: 12.0,
        });
        reg.observe_counter(&CounterEvent {
            t: 0.0,
            worker: 0,
            name: crate::trace::counter_names::NET_RETRY_SECONDS,
            value: 0.5,
        });
        reg.observe_counter(&CounterEvent {
            t: 0.0,
            worker: 0,
            name: crate::trace::counter_names::NET_DUP_DISCARDED,
            value: 3.0,
        });
        reg.observe_counter(&CounterEvent {
            t: 0.0,
            worker: 0,
            name: crate::trace::counter_names::NET_PARTITION_EPOCHS,
            value: 2.0,
        });
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE gnnpart_net_retries_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_net_retry_seconds_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_net_dup_discarded_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_net_partition_epochs_total counter").count(), 1);
        assert!(text.contains("gnnpart_net_retries_total{worker=\"0\"} 12"));
        assert!(text.contains("gnnpart_net_retry_seconds_total{worker=\"0\"} 0.5"));
        assert!(text.contains("gnnpart_net_dup_discarded_total{worker=\"0\"} 3"));
        assert!(text.contains("gnnpart_net_partition_epochs_total{worker=\"0\"} 2"));
        // The untouched prefix (pre-existing families) is unchanged.
        assert!(text.starts_with(&without));
    }

    #[test]
    fn prometheus_stream_families_appear_only_when_recorded() {
        let mut reg = MetricsRegistry::new();
        reg.observe_span(&span(0, 0, TracePhase::Forward, 1.5e-4, 64));
        let without = reg.snapshot().to_prometheus();
        assert!(!without.contains("gnnpart_stream_"), "no stream counters, no stream families");
        let samples: [(&str, f64); 7] = [
            (crate::trace::counter_names::STREAM_LIVE_EDGES, 120.0),
            (crate::trace::counter_names::STREAM_REPLICATION_FACTOR, 2.5),
            (crate::trace::counter_names::STREAM_EDGE_CUT, 0.75),
            (crate::trace::counter_names::STREAM_BALANCE, 1.25),
            (crate::trace::counter_names::STREAM_TRAIN_BALANCE, 1.5),
            (crate::trace::counter_names::STREAM_REPARTITIONS, 3.0),
            (crate::trace::counter_names::STREAM_PARTITION_SECONDS, 0.125),
        ];
        for (name, value) in samples {
            reg.observe_counter(&CounterEvent { t: 0.0, worker: 0, name, value });
        }
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE gnnpart_stream_live_edges gauge").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_stream_replication_factor gauge").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_stream_edge_cut gauge").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_stream_balance gauge").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_stream_train_balance gauge").count(), 1);
        assert_eq!(text.matches("# TYPE gnnpart_stream_repartitions_total counter").count(), 1);
        assert_eq!(
            text.matches("# TYPE gnnpart_stream_partition_seconds_total counter").count(),
            1
        );
        assert!(text.contains("gnnpart_stream_live_edges{worker=\"0\"} 120"));
        assert!(text.contains("gnnpart_stream_replication_factor{worker=\"0\"} 2.5"));
        assert!(text.contains("gnnpart_stream_edge_cut{worker=\"0\"} 0.75"));
        assert!(text.contains("gnnpart_stream_balance{worker=\"0\"} 1.25"));
        assert!(text.contains("gnnpart_stream_train_balance{worker=\"0\"} 1.5"));
        assert!(text.contains("gnnpart_stream_repartitions_total{worker=\"0\"} 3"));
        assert!(text.contains("gnnpart_stream_partition_seconds_total{worker=\"0\"} 0.125"));
        // The untouched prefix (pre-existing families) is unchanged.
        assert!(text.starts_with(&without));
    }

    #[test]
    fn prometheus_buckets_are_monotone() {
        let mut reg = MetricsRegistry::new();
        let mut rng = DetRng::new(7);
        for i in 0..200 {
            let dur = rng.next_f64() * 10f64.powi((i % 9) as i32 - 6);
            reg.observe_phase(0, TracePhase::Backward, 0, dur, 0, 0);
        }
        let text = reg.snapshot().to_prometheus();
        let mut last = 0u64;
        let mut seen_bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("gnnpart_phase_duration_seconds_bucket") {
                let v: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative buckets must be monotone: {line}");
                last = v;
                seen_bucket_lines += 1;
            }
        }
        assert_eq!(seen_bucket_lines, DURATION_BUCKETS.len() + 1);
        assert_eq!(last, 200, "+Inf bucket equals the observation count");
    }

    #[test]
    fn snapshot_from_sink_matches_worker_phase_seconds() {
        let sink = TraceSink::enabled();
        sink.set_epoch(0);
        for d in [0.125, 0.25, 1e-10] {
            sink.span(2, 0, TracePhase::Optimizer, 0.0, d, 5, 7);
        }
        sink.set_epoch(1);
        sink.span(2, 0, TracePhase::Optimizer, 0.0, 0.5, 0, 0);
        sink.counter(2, "bytes_sent", 10.0);
        let snap = MetricsSnapshot::from_sink(&sink);
        // Single-run snapshots reproduce the sink's own exact sums: the
        // per-epoch parts fold to the same values the sink accumulated.
        let expect = fold_exact(&[0.125 + 0.25 + 1e-10, 0.5]);
        assert_eq!(snap.phase_seconds(2, TracePhase::Optimizer), expect);
        assert_eq!(sink.worker_phase_seconds(2, TracePhase::Optimizer), 0.125 + 0.25 + 1e-10 + 0.5);
        assert_eq!(snap.phase_stat(2, TracePhase::Optimizer).unwrap().bytes, 15);
        assert_eq!(snap.counter(2, "bytes_sent").unwrap().peak, 10.0);
        assert_eq!(snap.phases_present(), vec![TracePhase::Optimizer]);
    }
}
