//! Unified run scenario builder.
//!
//! Seven PRs of growth left the engines with five parallel entry points
//! (`simulate_epoch`, `simulate_epoch_with_faults`,
//! `simulate_epoch_mitigated`, `simulate_run_elastic`,
//! `simulate_run_partitioned`) whose option structs do not compose —
//! every new scenario multiplied the API surface. [`RunSpec`] collapses
//! them into one declarative description:
//!
//! ```
//! use gp_cluster::{FaultPlan, MitigationPolicy, RunSpec, Scenario};
//!
//! let plan = FaultPlan::empty();
//! let spec = RunSpec::healthy().epochs(4).faults(plan).mitigate(MitigationPolicy::all());
//! assert!(matches!(spec.scenario(), Ok(Scenario::Mitigated { .. })));
//! ```
//!
//! The engines consume a spec through `engine.run(&spec)`, which
//! resolves it to a [`Scenario`] and dispatches to the one matching
//! internal path, returning a common report enum. Invalid combinations
//! (mitigation layered on elastic membership, message-level network
//! faults without the elastic substrate they run on) are rejected up
//! front as [`RunSpecError`]s instead of panicking mid-run.

use gp_graph::StreamSpec;
use gp_partition::RepartitionPolicy;

use crate::checkpoint::CheckpointConfig;
use crate::detect::MitigationPolicy;
use crate::faults::FaultPlan;
use crate::membership::{ChurnPlan, ElasticOptions};
use crate::net::{NetFaultPlan, NetRunOptions};
use crate::stream::StreamLeg;

/// The elastic-membership leg of a [`RunSpec`]: a churn schedule plus
/// the checkpoint and handoff policies that make it survivable.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSpec {
    /// Seeded leave/join/rejoin schedule.
    pub churn: ChurnPlan,
    /// Snapshot policy (period, retention, bandwidths).
    pub checkpoints: CheckpointConfig,
    /// Handoff/rebalance knobs.
    pub options: ElasticOptions,
}

/// The message-level network leg of a [`RunSpec`]. Requires the elastic
/// leg: partitions act on the fleet the churn schedule maintains.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Partition windows and per-message noise schedule.
    pub plan: NetFaultPlan,
    /// Degraded-mode vs abort-only policy.
    pub options: NetRunOptions,
}

/// Declarative description of one engine run.
///
/// Build with [`RunSpec::healthy`] and layer scenarios on with the
/// chainable setters; [`RunSpec::scenario`] validates the combination.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSpec {
    epochs: u32,
    faults: Option<FaultPlan>,
    mitigate: Option<MitigationPolicy>,
    elastic: Option<ElasticSpec>,
    net: Option<NetSpec>,
    stream: Option<StreamLeg>,
    stream_partitioner: Option<String>,
}

impl RunSpec {
    /// A healthy single-epoch run — the base every scenario builds on.
    pub fn healthy() -> Self {
        RunSpec { epochs: 1, ..RunSpec::default() }
    }

    /// Set the run horizon in epochs.
    #[must_use]
    pub fn epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }

    /// Inject a machine-fault schedule (crashes, stragglers,
    /// degradations).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Run the straggler detector and the given mitigations on top of
    /// the (possibly healthy) fault schedule.
    #[must_use]
    pub fn mitigate(mut self, policy: MitigationPolicy) -> Self {
        self.mitigate = Some(policy);
        self
    }

    /// Run on an elastic fleet: apply a churn schedule under the given
    /// checkpoint and handoff policies.
    #[must_use]
    pub fn elastic(
        mut self,
        churn: ChurnPlan,
        checkpoints: CheckpointConfig,
        options: ElasticOptions,
    ) -> Self {
        self.elastic = Some(ElasticSpec { churn, checkpoints, options });
        self
    }

    /// Drop to message-level network faults (partitions, loss,
    /// duplication). Only valid together with [`RunSpec::elastic`].
    #[must_use]
    pub fn net(mut self, plan: NetFaultPlan, options: NetRunOptions) -> Self {
        self.net = Some(NetSpec { plan, options });
        self
    }

    /// Replay a dynamic-graph mutation stream, training one epoch per
    /// batch on the live snapshot while the engine's partition is
    /// maintained incrementally. Composes with no other leg; the run
    /// horizon is the stream's batch count (the `epochs` setter is
    /// ignored). The incremental partitioner defaults to the engine's
    /// streaming default (HDRF / LDG); override it with
    /// [`RunSpec::stream_partitioner`].
    #[must_use]
    pub fn stream(mut self, spec: StreamSpec, policy: RepartitionPolicy) -> Self {
        self.stream = Some(StreamLeg { spec, policy, partitioner: None });
        self
    }

    /// Name the partitioner the stream leg drives incrementally (and
    /// re-runs on adopted repartitions). Order-independent with
    /// [`RunSpec::stream`]; resolving a spec that names a partitioner
    /// but never called [`RunSpec::stream`] is an error.
    #[must_use]
    pub fn stream_partitioner(mut self, name: impl Into<String>) -> Self {
        self.stream_partitioner = Some(name.into());
        self
    }

    /// The run horizon in epochs.
    pub fn num_epochs(&self) -> u32 {
        self.epochs
    }

    /// The fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Resolve the spec to the single scenario it describes.
    ///
    /// # Errors
    ///
    /// [`RunSpecError::MitigateWithElastic`] when mitigation is layered
    /// on an elastic or partitioned run (the elastic paths have their
    /// own recovery machinery), [`RunSpecError::NetWithoutElastic`]
    /// when message-level faults are requested without the elastic
    /// fleet they act on.
    pub fn scenario(&self) -> Result<Scenario<'_>, RunSpecError> {
        if let Some(leg) = &self.stream {
            if self.faults.is_some()
                || self.mitigate.is_some()
                || self.elastic.is_some()
                || self.net.is_some()
            {
                return Err(RunSpecError::StreamWithOtherLegs);
            }
            return Ok(Scenario::Stream {
                leg,
                partitioner: self.stream_partitioner.as_deref().or(leg.partitioner.as_deref()),
            });
        }
        if self.stream_partitioner.is_some() {
            return Err(RunSpecError::StreamPartitionerWithoutStream);
        }
        if self.mitigate.is_some() && (self.elastic.is_some() || self.net.is_some()) {
            return Err(RunSpecError::MitigateWithElastic);
        }
        if let Some(net) = &self.net {
            let Some(elastic) = &self.elastic else {
                return Err(RunSpecError::NetWithoutElastic);
            };
            return Ok(Scenario::Partitioned { faults: self.faults.as_ref(), elastic, net });
        }
        if let Some(elastic) = &self.elastic {
            return Ok(Scenario::Elastic { faults: self.faults.as_ref(), elastic });
        }
        if let Some(policy) = &self.mitigate {
            return Ok(Scenario::Mitigated { plan: self.faults.as_ref(), policy });
        }
        match &self.faults {
            Some(plan) => Ok(Scenario::Faulty(plan)),
            None => Ok(Scenario::Healthy),
        }
    }
}

/// The resolved scenario of a [`RunSpec`] — exactly one of the engines'
/// five internal run paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario<'a> {
    /// No faults, no mitigation, fixed fleet.
    Healthy,
    /// Machine faults priced by the recovery model, no mitigation.
    Faulty(&'a FaultPlan),
    /// Detector plus mitigations over a (possibly empty) fault plan.
    Mitigated {
        /// Fault schedule the mitigations respond to (`None` = healthy
        /// cluster, detector still runs).
        plan: Option<&'a FaultPlan>,
        /// Which mitigations are armed.
        policy: &'a MitigationPolicy,
    },
    /// Elastic fleet under churn, checkpoint-protected.
    Elastic {
        /// Machine faults layered on the churn (`None` = churn only).
        faults: Option<&'a FaultPlan>,
        /// Churn schedule and policies.
        elastic: &'a ElasticSpec,
    },
    /// Elastic fleet with message-level network faults.
    Partitioned {
        /// Machine faults layered on the churn (`None` = none).
        faults: Option<&'a FaultPlan>,
        /// Churn schedule and policies.
        elastic: &'a ElasticSpec,
        /// Message-level fault schedule and partition policy.
        net: &'a NetSpec,
    },
    /// Dynamic-graph stream replay: one training epoch per mutation
    /// batch on the live snapshot, partition maintained incrementally.
    Stream {
        /// Mutation schedule and repartition policy.
        leg: &'a StreamLeg,
        /// Partitioner override ([`RunSpec::stream_partitioner`] wins
        /// over the leg's own field; `None` = engine default).
        partitioner: Option<&'a str>,
    },
}

/// Rejected [`RunSpec`] combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSpecError {
    /// Mitigation composed with elastic membership or network faults —
    /// the elastic paths carry their own recovery machinery.
    MitigateWithElastic,
    /// Message-level network faults without the elastic fleet they act
    /// on.
    NetWithoutElastic,
    /// A stream leg composed with faults, mitigation, elastic
    /// membership or network faults — the stream path rebuilds the
    /// training substrate every batch and supports none of them.
    StreamWithOtherLegs,
    /// [`RunSpec::stream_partitioner`] named a partitioner but no
    /// stream leg was attached with [`RunSpec::stream`].
    StreamPartitionerWithoutStream,
}

impl std::fmt::Display for RunSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunSpecError::MitigateWithElastic => {
                write!(f, "mitigation cannot compose with elastic/partitioned runs")
            }
            RunSpecError::NetWithoutElastic => {
                write!(f, "network faults require an elastic fleet (add .elastic(..))")
            }
            RunSpecError::StreamWithOtherLegs => {
                write!(f, "a stream leg cannot compose with faults/mitigation/elastic/net legs")
            }
            RunSpecError::StreamPartitionerWithoutStream => {
                write!(f, "stream_partitioner set without a stream leg (add .stream(..))")
            }
        }
    }
}

impl std::error::Error for RunSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn elastic_args() -> (ChurnPlan, CheckpointConfig, ElasticOptions) {
        (ChurnPlan::empty(), CheckpointConfig::default(), ElasticOptions::default())
    }

    #[test]
    fn healthy_by_default() {
        let spec = RunSpec::healthy();
        assert_eq!(spec.num_epochs(), 1);
        assert!(matches!(spec.scenario(), Ok(Scenario::Healthy)));
    }

    #[test]
    fn faults_alone_is_faulty() {
        let spec = RunSpec::healthy().epochs(8).faults(FaultPlan::empty());
        assert_eq!(spec.num_epochs(), 8);
        assert!(matches!(spec.scenario(), Ok(Scenario::Faulty(_))));
    }

    #[test]
    fn mitigate_with_or_without_faults() {
        let with = RunSpec::healthy().faults(FaultPlan::empty()).mitigate(MitigationPolicy::all());
        assert!(matches!(with.scenario(), Ok(Scenario::Mitigated { plan: Some(_), .. })));
        let without = RunSpec::healthy().mitigate(MitigationPolicy::steal());
        assert!(matches!(without.scenario(), Ok(Scenario::Mitigated { plan: None, .. })));
    }

    #[test]
    fn elastic_and_partitioned() {
        let (churn, ckpt, opts) = elastic_args();
        let spec = RunSpec::healthy().epochs(10).elastic(churn.clone(), ckpt, opts);
        assert!(matches!(spec.scenario(), Ok(Scenario::Elastic { faults: None, .. })));
        let spec = spec
            .faults(FaultPlan::empty())
            .net(NetFaultPlan::empty(), NetRunOptions::default());
        assert!(matches!(spec.scenario(), Ok(Scenario::Partitioned { faults: Some(_), .. })));
    }

    #[test]
    fn net_requires_elastic() {
        let spec = RunSpec::healthy().net(NetFaultPlan::empty(), NetRunOptions::default());
        assert_eq!(spec.scenario().unwrap_err(), RunSpecError::NetWithoutElastic);
    }

    #[test]
    fn mitigate_conflicts_with_elastic() {
        let (churn, ckpt, opts) = elastic_args();
        let spec = RunSpec::healthy()
            .mitigate(MitigationPolicy::all())
            .elastic(churn, ckpt, opts);
        assert_eq!(spec.scenario().unwrap_err(), RunSpecError::MitigateWithElastic);
    }

    #[test]
    fn errors_display() {
        assert!(RunSpecError::MitigateWithElastic.to_string().contains("mitigation"));
        assert!(RunSpecError::NetWithoutElastic.to_string().contains("elastic"));
        assert!(RunSpecError::StreamWithOtherLegs.to_string().contains("stream"));
        assert!(RunSpecError::StreamPartitionerWithoutStream.to_string().contains("stream"));
    }

    #[test]
    fn stream_leg_resolves() {
        let spec = RunSpec::healthy()
            .stream(StreamSpec::paper_default(4, 1), RepartitionPolicy::Never);
        match spec.scenario().unwrap() {
            Scenario::Stream { leg, partitioner } => {
                assert_eq!(leg.spec.batches, 4);
                assert_eq!(leg.policy, RepartitionPolicy::Never);
                assert_eq!(partitioner, None);
            }
            other => panic!("expected stream scenario, got {other:?}"),
        }
    }

    #[test]
    fn stream_partitioner_is_order_independent() {
        let before = RunSpec::healthy()
            .stream_partitioner("HDRF")
            .stream(StreamSpec::paper_default(2, 0), RepartitionPolicy::Periodic { every: 2 });
        let after = RunSpec::healthy()
            .stream(StreamSpec::paper_default(2, 0), RepartitionPolicy::Periodic { every: 2 })
            .stream_partitioner("HDRF");
        for spec in [before, after] {
            match spec.scenario().unwrap() {
                Scenario::Stream { partitioner, .. } => assert_eq!(partitioner, Some("HDRF")),
                other => panic!("expected stream scenario, got {other:?}"),
            }
        }
    }

    #[test]
    fn stream_composes_with_nothing_else() {
        let spec = RunSpec::healthy()
            .stream(StreamSpec::paper_default(2, 0), RepartitionPolicy::Never)
            .faults(FaultPlan::empty());
        assert_eq!(spec.scenario().unwrap_err(), RunSpecError::StreamWithOtherLegs);
        let (churn, ckpt, opts) = elastic_args();
        let spec = RunSpec::healthy()
            .stream(StreamSpec::paper_default(2, 0), RepartitionPolicy::Never)
            .elastic(churn, ckpt, opts);
        assert_eq!(spec.scenario().unwrap_err(), RunSpecError::StreamWithOtherLegs);
    }

    #[test]
    fn stream_partitioner_requires_stream_leg() {
        let spec = RunSpec::healthy().stream_partitioner("LDG");
        assert_eq!(
            spec.scenario().unwrap_err(),
            RunSpecError::StreamPartitionerWithoutStream
        );
    }
}
