//! Engine-agnostic view of one simulated training epoch.
//!
//! `gp-distgnn` reports an `EpochReport` (four phases, full-batch) and
//! `gp-distdgl` an `EpochSummary` (five phases, mini-batch). Consumers
//! that only care about *where the time and traffic went* — sweeps,
//! tables, the trace layer — can take `impl EpochOutcome` instead of
//! matching on the engine.

/// Common accessors over the per-epoch reports of both engines.
pub trait EpochOutcome {
    /// Simulated wall-clock seconds of the epoch (sum of phase times).
    fn epoch_time(&self) -> f64;

    /// Total network bytes of the epoch (sent + received, cluster-wide —
    /// [`crate::ClusterCounters::total_network_bytes`]).
    fn total_bytes(&self) -> u64;

    /// `(phase name, seconds)` in the engine's canonical phase order.
    /// Phase names match `trace::TracePhase::name`.
    fn phase_breakdown(&self) -> Vec<(&'static str, f64)>;
}
