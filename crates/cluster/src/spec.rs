//! Cluster hardware specification.

use std::fmt;

/// A rejected hardware specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecError {
    /// A field that must be strictly positive was zero or negative.
    NonPositive {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NonPositive { field, value } => {
                write!(f, "{field} must be strictly positive, got {value}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn require_positive(field: &'static str, value: f64) -> Result<(), SpecError> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(SpecError::NonPositive { field, value })
    }
}

/// One machine of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// CPU cores.
    pub cores: u32,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Effective f32 FLOPs retired per core per cycle (vectorised GEMM
    /// kernels sustain ~8 on Haswell AVX2).
    pub flops_per_cycle: f64,
    /// Installed memory in bytes.
    pub memory_bytes: u64,
}

impl MachineSpec {
    /// The paper's machines: 8 Haswell cores @ 2.4 GHz, 64 GB.
    pub fn paper() -> Self {
        MachineSpec {
            cores: 8,
            clock_ghz: 2.4,
            flops_per_cycle: 8.0,
            memory_bytes: 64 * (1 << 30),
        }
    }

    /// Validating constructor: rejects zero/negative cores, clock,
    /// FLOPs-per-cycle and memory (a machine that cannot compute or
    /// hold state would divide by zero throughout the cost model).
    pub fn validated(
        cores: u32,
        clock_ghz: f64,
        flops_per_cycle: f64,
        memory_bytes: u64,
    ) -> Result<Self, SpecError> {
        require_positive("cores", f64::from(cores))?;
        require_positive("clock_ghz", clock_ghz)?;
        require_positive("flops_per_cycle", flops_per_cycle)?;
        require_positive("memory_bytes", memory_bytes as f64)?;
        Ok(MachineSpec { cores, clock_ghz, flops_per_cycle, memory_bytes })
    }

    /// Peak f32 FLOPs per second of the whole machine.
    pub fn flops_per_sec(&self) -> f64 {
        f64::from(self.cores) * self.clock_ghz * 1e9 * self.flops_per_cycle
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::paper()
    }
}

/// The interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSpec {
    /// Point-to-point bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message latency in seconds.
    pub latency_sec: f64,
}

impl NetworkSpec {
    /// Validating constructor: rejects zero/negative bandwidth and
    /// latency ([`crate::transfer_time`] divides by bandwidth, and a
    /// non-positive latency would let message-heavy exchanges cost
    /// nothing or go backwards in time).
    pub fn validated(bandwidth_bytes_per_sec: f64, latency_sec: f64) -> Result<Self, SpecError> {
        require_positive("bandwidth_bytes_per_sec", bandwidth_bytes_per_sec)?;
        require_positive("latency_sec", latency_sec)?;
        Ok(NetworkSpec { bandwidth_bytes_per_sec, latency_sec })
    }

    /// 10 Gbit Ethernet with 50 µs latency (commodity cluster).
    pub fn ten_gbit() -> Self {
        NetworkSpec { bandwidth_bytes_per_sec: 1.25e9, latency_sec: 50e-6 }
    }

    /// 10 Gbit Ethernet with the per-message latency scaled to the
    /// analogue datasets: the paper's graphs are ~200× larger than the
    /// scaled-down analogues, so keeping the full 50 µs per message
    /// against 1/200-scale message *volumes* would make latency dominate
    /// every exchange — which it does not on the paper's testbed. The
    /// scaled value preserves the paper's volume:latency ratio.
    pub fn ten_gbit_scaled() -> Self {
        NetworkSpec { bandwidth_bytes_per_sec: 1.25e9, latency_sec: 2e-6 }
    }

    /// 1 Gbit Ethernet (used by the cost-model sensitivity ablation).
    pub fn one_gbit() -> Self {
        NetworkSpec { bandwidth_bytes_per_sec: 1.25e8, latency_sec: 50e-6 }
    }

    /// 100 Gbit fabric (used by the cost-model sensitivity ablation).
    pub fn hundred_gbit() -> Self {
        NetworkSpec { bandwidth_bytes_per_sec: 1.25e10, latency_sec: 10e-6 }
    }
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec::ten_gbit()
    }
}

/// A homogeneous cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of machines (= number of partitions).
    pub machines: u32,
    /// Per-machine hardware.
    pub machine: MachineSpec,
    /// Interconnect.
    pub network: NetworkSpec,
}

impl ClusterSpec {
    /// The paper's cluster at a given scale-out factor, with the
    /// network latency scaled to the analogue datasets (see
    /// [`NetworkSpec::ten_gbit_scaled`]).
    pub fn paper(machines: u32) -> Self {
        ClusterSpec {
            machines,
            machine: MachineSpec::paper(),
            network: NetworkSpec::ten_gbit_scaled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_flops() {
        let m = MachineSpec::paper();
        // 8 cores * 2.4e9 Hz * 8 flops = 153.6 GFLOP/s.
        assert!((m.flops_per_sec() - 153.6e9).abs() < 1e6);
    }

    #[test]
    fn scaled_latency_preserves_bandwidth() {
        let real = NetworkSpec::ten_gbit();
        let scaled = NetworkSpec::ten_gbit_scaled();
        assert_eq!(real.bandwidth_bytes_per_sec, scaled.bandwidth_bytes_per_sec);
        assert!(scaled.latency_sec < real.latency_sec);
    }

    #[test]
    fn network_presets_ordered() {
        assert!(
            NetworkSpec::one_gbit().bandwidth_bytes_per_sec
                < NetworkSpec::ten_gbit().bandwidth_bytes_per_sec
        );
        assert!(
            NetworkSpec::ten_gbit().bandwidth_bytes_per_sec
                < NetworkSpec::hundred_gbit().bandwidth_bytes_per_sec
        );
    }

    #[test]
    fn cluster_preset() {
        let c = ClusterSpec::paper(32);
        assert_eq!(c.machines, 32);
        assert_eq!(c.machine.memory_bytes, 64 * (1 << 30));
    }

    #[test]
    fn validated_accepts_presets() {
        let m = MachineSpec::paper();
        let v = MachineSpec::validated(m.cores, m.clock_ghz, m.flops_per_cycle, m.memory_bytes)
            .expect("paper machine must validate");
        assert_eq!(v, m);
        for n in [
            NetworkSpec::one_gbit(),
            NetworkSpec::ten_gbit(),
            NetworkSpec::ten_gbit_scaled(),
            NetworkSpec::hundred_gbit(),
        ] {
            let v = NetworkSpec::validated(n.bandwidth_bytes_per_sec, n.latency_sec)
                .expect("preset network must validate");
            assert_eq!(v, n);
        }
    }

    #[test]
    fn validated_rejects_nonpositive() {
        assert!(matches!(
            NetworkSpec::validated(0.0, 50e-6),
            Err(SpecError::NonPositive { field: "bandwidth_bytes_per_sec", .. })
        ));
        assert!(matches!(
            NetworkSpec::validated(1.25e9, -1e-6),
            Err(SpecError::NonPositive { field: "latency_sec", .. })
        ));
        assert!(NetworkSpec::validated(f64::NAN, 50e-6).is_err());
        assert!(NetworkSpec::validated(f64::INFINITY, 50e-6).is_err());
        assert!(matches!(
            MachineSpec::validated(0, 2.4, 8.0, 1 << 30),
            Err(SpecError::NonPositive { field: "cores", .. })
        ));
        assert!(matches!(
            MachineSpec::validated(8, -2.4, 8.0, 1 << 30),
            Err(SpecError::NonPositive { field: "clock_ghz", .. })
        ));
        assert!(MachineSpec::validated(8, 2.4, 0.0, 1 << 30).is_err());
        assert!(MachineSpec::validated(8, 2.4, 8.0, 0).is_err());
    }
}
