//! Deterministic span recorder over **simulated time**.
//!
//! The engines in `gp-distgnn` / `gp-distdgl` are cost models: they add
//! up straggler-gated phase windows into scalar reports. This module
//! lets them *also* emit the per-worker, per-phase structure as
//! [`Span`]s on a shared [`TraceSink`], without perturbing the reports:
//!
//! * **Zero-cost when disabled.** A disabled sink (the default) stores
//!   nothing; every recording call is a no-op behind an `Option` check,
//!   and engines only assemble per-worker attribution when
//!   [`TraceSink::is_enabled`] is true.
//! * **Purely observational.** Tracing must never change a report:
//!   a run with tracing enabled is bit-identical to one without
//!   (enforced by tests in both engines).
//! * **Exact span accounting.** Every span's [`Span::dur`] is the very
//!   `f64` the engine added to its phase total, recorded in the same
//!   order — so the per-worker, per-phase span sums reproduce the
//!   reported phase totals *exactly* (`==`, not approximately). This is
//!   why [`Span`] stores `dur` rather than `t_end`: `(t + d) - t != d`
//!   in floating point.
//!
//! Exports: [`TraceSink::to_chrome_json`] emits `chrome://tracing` JSON
//! (one "process" per logical worker), [`TraceSink::phase_csv`] the
//! per-phase aggregate table used by the ablations.

use std::sync::{Arc, Mutex};

/// Phase taxonomy across both engines. DistGNN uses
/// Forward/Backward/Sync/Optimizer plus Checkpoint/Recovery/Migration;
/// DistDGL uses Sampling/FeatureLoad/Forward/Backward/Update plus
/// Recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    Forward,
    Backward,
    Sync,
    Optimizer,
    Sampling,
    FeatureLoad,
    Update,
    Checkpoint,
    Recovery,
    Migration,
}

impl TracePhase {
    /// Every phase, in the stable order used by exports and the metrics
    /// registry (matches the declaration order above).
    pub const ALL: [TracePhase; 10] = [
        TracePhase::Forward,
        TracePhase::Backward,
        TracePhase::Sync,
        TracePhase::Optimizer,
        TracePhase::Sampling,
        TracePhase::FeatureLoad,
        TracePhase::Update,
        TracePhase::Checkpoint,
        TracePhase::Recovery,
        TracePhase::Migration,
    ];

    /// Inverse of [`TracePhase::name`]: parse a stable snake_case name
    /// (as emitted by [`crate::EpochOutcome::phase_breakdown`]).
    pub fn from_name(name: &str) -> Option<TracePhase> {
        TracePhase::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Stable lower-snake name, used in Chrome JSON and the phase CSV.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Forward => "forward",
            TracePhase::Backward => "backward",
            TracePhase::Sync => "sync",
            TracePhase::Optimizer => "optimizer",
            TracePhase::Sampling => "sampling",
            TracePhase::FeatureLoad => "feature_load",
            TracePhase::Update => "update",
            TracePhase::Checkpoint => "checkpoint",
            TracePhase::Recovery => "recovery",
            TracePhase::Migration => "migration",
        }
    }
}

/// One phase occurrence on one logical worker, in simulated seconds.
///
/// `dur` is stored explicitly (not derived from an end timestamp) so
/// that span-duration sums are bit-identical to the engine's phase
/// totals; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    pub worker: u32,
    pub epoch: u32,
    /// DistGNN: GNN layer index (or `num_layers` for epoch-level sync /
    /// optimizer). DistDGL: mini-batch step index.
    pub step: u32,
    pub phase: TracePhase,
    /// Simulated start time, seconds since the sink was created.
    pub t_start: f64,
    /// Simulated duration in seconds — the exact `f64` the engine added
    /// to its phase total for this window.
    pub dur: f64,
    /// Network bytes attributed to this worker in this window.
    pub bytes: u64,
    /// FLOPs attributed to this worker in this window.
    pub flops: u64,
}

impl Span {
    /// Simulated end time. Derived; do not sum `t_end - t_start` when
    /// exactness matters — sum [`Span::dur`].
    pub fn t_end(&self) -> f64 {
        self.t_start + self.dur
    }
}

/// Canonical [`CounterEvent::name`] strings. Engines must emit counter
/// events under these names so the per-path event sets stay pinned (see
/// the engine test suites) and the metrics registry can aggregate them
/// without string drift.
pub mod counter_names {
    /// Cumulative bytes sent by a worker (healthy traffic).
    pub const BYTES_SENT: &str = "bytes_sent";
    /// Cumulative bytes received by a worker (healthy traffic).
    pub const BYTES_RECEIVED: &str = "bytes_received";
    /// Bytes written into a checkpoint shard (fault path).
    pub const CHECKPOINT_BYTES: &str = "checkpoint_bytes";
    /// Bytes moved to restore crashed state (fault path).
    pub const RECOVERY_BYTES: &str = "recovery_bytes";
    /// Bytes moved by an adopted master migration (mitigation path).
    pub const MIGRATION_BYTES: &str = "migration_bytes";
    /// Bytes fetched by work-stealing helpers (mitigation path).
    pub const STOLEN_BYTES: &str = "stolen_bytes";
    /// Bytes fetched by speculative backup executions (mitigation path).
    pub const SPECULATION_BYTES: &str = "speculation_bytes";
    /// Cumulative loss-induced message retransmissions (network path).
    pub const NET_RETRIES: &str = "net_retries";
    /// Cumulative simulated seconds lost to transport noise — retry
    /// transfer, timeout/backoff wait, reorder release (network path).
    pub const NET_RETRY_SECONDS: &str = "net_retry_seconds";
    /// Cumulative duplicate arrivals discarded by dedup windows
    /// (network path).
    pub const NET_DUP_DISCARDED: &str = "net_dup_discarded";
    /// Cumulative epochs spent inside partition windows (network path).
    pub const NET_PARTITION_EPOCHS: &str = "net_partition_epochs";
    /// Live edges in the stream snapshot after a batch (stream path).
    pub const STREAM_LIVE_EDGES: &str = "stream_live_edges";
    /// Replication factor after a batch (vertex-cut stream path).
    pub const STREAM_REPLICATION_FACTOR: &str = "stream_replication_factor";
    /// Edge-cut ratio after a batch (edge-cut stream path).
    pub const STREAM_EDGE_CUT: &str = "stream_edge_cut";
    /// Partition balance (max/mean) after a batch (stream path).
    pub const STREAM_BALANCE: &str = "stream_balance";
    /// Training-vertex balance after a batch (edge-cut stream path).
    pub const STREAM_TRAIN_BALANCE: &str = "stream_train_balance";
    /// Cumulative adopted repartitions (stream path).
    pub const STREAM_REPARTITIONS: &str = "stream_repartitions";
    /// Cumulative modeled repartitioning cost in simulated seconds
    /// (stream path).
    pub const STREAM_PARTITION_SECONDS: &str = "stream_partition_seconds";
}

/// A named counter sample at a simulated time (Chrome `ph:"C"` event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterEvent {
    pub t: f64,
    pub worker: u32,
    pub name: &'static str,
    pub value: f64,
}

/// One aggregate row of [`TraceSink::phase_csv`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    pub worker: u32,
    pub phase: TracePhase,
    pub spans: usize,
    pub seconds: f64,
    pub bytes: u64,
    pub flops: u64,
}

#[derive(Debug, Default)]
struct TraceData {
    spans: Vec<Span>,
    counters: Vec<CounterEvent>,
    clock: f64,
    epoch: u32,
}

/// Shared handle to a trace buffer, or a disabled no-op.
///
/// Cloning shares the underlying buffer (`Arc`), so the sink handed to
/// an engine and the one kept by the caller observe the same spans.
/// The buffer is `Mutex`-guarded, so a sink can be moved into a sweep
/// cell running on the `gp-exec` pool (the engines themselves record
/// single-threaded; the lock is uncontended there). `Default` is the
/// disabled sink.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<Mutex<TraceData>>>);

impl TraceSink {
    /// A recording sink with an empty buffer and clock at 0.
    pub fn enabled() -> Self {
        TraceSink(Some(Arc::new(Mutex::new(TraceData::default()))))
    }

    /// The no-op sink: records nothing, costs nothing.
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Current simulated time in seconds (0 when disabled).
    pub fn now(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |d| d.lock().expect("trace lock").clock)
    }

    /// Advance the simulated clock. No-op when disabled.
    pub fn advance(&self, secs: f64) {
        if let Some(d) = &self.0 {
            d.lock().expect("trace lock").clock += secs;
        }
    }

    /// Set the epoch stamped onto subsequently recorded spans.
    pub fn set_epoch(&self, epoch: u32) {
        if let Some(d) = &self.0 {
            d.lock().expect("trace lock").epoch = epoch;
        }
    }

    pub fn current_epoch(&self) -> u32 {
        self.0.as_ref().map_or(0, |d| d.lock().expect("trace lock").epoch)
    }

    /// Record one span (no-op when disabled). The epoch is the one last
    /// given to [`TraceSink::set_epoch`].
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        worker: u32,
        step: u32,
        phase: TracePhase,
        t_start: f64,
        dur: f64,
        bytes: u64,
        flops: u64,
    ) {
        if let Some(d) = &self.0 {
            let mut d = d.lock().expect("trace lock");
            let epoch = d.epoch;
            d.spans.push(Span { worker, epoch, step, phase, t_start, dur, bytes, flops });
        }
    }

    /// Record a counter sample at the current simulated time.
    pub fn counter(&self, worker: u32, name: &'static str, value: f64) {
        if let Some(d) = &self.0 {
            let mut d = d.lock().expect("trace lock");
            let t = d.clock;
            d.counters.push(CounterEvent { t, worker, name, value });
        }
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.0.as_ref().map_or_else(Vec::new, |d| d.lock().expect("trace lock").spans.clone())
    }

    /// Snapshot of all recorded counter events, in recording order.
    pub fn counters(&self) -> Vec<CounterEvent> {
        self.0.as_ref().map_or_else(Vec::new, |d| d.lock().expect("trace lock").counters.clone())
    }

    /// Drop all recorded events and reset the clock and epoch.
    pub fn clear(&self) {
        if let Some(d) = &self.0 {
            *d.lock().expect("trace lock") = TraceData::default();
        }
    }

    /// Sum of span durations for one worker and phase, added in
    /// recording order — the quantity the span-accounting invariant
    /// compares against the engine's reported phase total.
    pub fn worker_phase_seconds(&self, worker: u32, phase: TracePhase) -> f64 {
        let Some(d) = &self.0 else { return 0.0 };
        d.lock().expect("trace lock")
            .spans
            .iter()
            .filter(|s| s.worker == worker && s.phase == phase)
            .fold(0.0, |acc, s| acc + s.dur)
    }

    /// Per-(worker, phase) aggregates, sorted by worker then phase.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        let spans = match &self.0 {
            Some(d) => d.lock().expect("trace lock").spans.clone(),
            None => return Vec::new(),
        };
        let mut keys: Vec<(u32, TracePhase)> =
            spans.iter().map(|s| (s.worker, s.phase)).collect();
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .map(|(worker, phase)| {
                let mut row =
                    PhaseRow { worker, phase, spans: 0, seconds: 0.0, bytes: 0, flops: 0 };
                for s in spans.iter().filter(|s| s.worker == worker && s.phase == phase) {
                    row.spans += 1;
                    row.seconds += s.dur;
                    row.bytes += s.bytes;
                    row.flops += s.flops;
                }
                row
            })
            .collect()
    }

    /// Per-phase aggregate CSV: `worker,phase,spans,seconds,bytes,flops`.
    pub fn phase_csv(&self) -> String {
        let mut out = String::from("worker,phase,spans,seconds,bytes,flops\n");
        for r in self.phase_rows() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.worker,
                r.phase.name(),
                r.spans,
                r.seconds,
                r.bytes,
                r.flops
            ));
        }
        out
    }

    /// Chrome `chrome://tracing` / Perfetto JSON: one "process" per
    /// logical worker, complete (`ph:"X"`) events with microsecond
    /// timestamps, plus `ph:"C"` counter tracks.
    pub fn to_chrome_json(&self) -> String {
        let (spans, counters) = match &self.0 {
            Some(d) => {
                let d = d.lock().expect("trace lock");
                (d.spans.clone(), d.counters.clone())
            }
            None => (Vec::new(), Vec::new()),
        };
        let mut workers: Vec<u32> = spans
            .iter()
            .map(|s| s.worker)
            .chain(counters.iter().map(|c| c.worker))
            .collect();
        workers.sort_unstable();
        workers.dedup();
        let mut events = Vec::new();
        for w in &workers {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{w},\"tid\":0,\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            ));
        }
        for s in &spans {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":0,\"args\":{{\"epoch\":{},\"step\":{},\"bytes\":{},\
                 \"flops\":{}}}}}",
                s.phase.name(),
                json_f64(s.t_start * 1e6),
                json_f64(s.dur * 1e6),
                s.worker,
                s.epoch,
                s.step,
                s.bytes,
                s.flops
            ));
        }
        for c in &counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\
                 \"args\":{{\"{}\":{}}}}}",
                c.name,
                json_f64(c.t * 1e6),
                c.worker,
                c.name,
                json_f64(c.value)
            ));
        }
        format!("[{}]", events.join(",\n"))
    }
}

/// JSON-safe float formatting: finite shortest-roundtrip, with a
/// decimal point so strict parsers see a number, never `NaN`/`inf`.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.span(0, 0, TracePhase::Forward, 0.0, 1.0, 10, 20);
        sink.counter(0, "bytes_sent", 1.0);
        sink.advance(5.0);
        sink.set_epoch(3);
        assert_eq!(sink.now(), 0.0);
        assert_eq!(sink.current_epoch(), 0);
        assert!(sink.spans().is_empty());
        assert!(sink.counters().is_empty());
        assert_eq!(sink.to_chrome_json(), "[]");
        assert!(sink.phase_rows().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!TraceSink::default().is_enabled());
    }

    #[test]
    fn clock_advances_and_spans_record() {
        let sink = TraceSink::enabled();
        assert!(sink.is_enabled());
        sink.set_epoch(2);
        sink.span(1, 0, TracePhase::Forward, sink.now(), 0.5, 100, 200);
        sink.advance(0.5);
        sink.span(1, 0, TracePhase::Backward, sink.now(), 0.25, 0, 400);
        sink.advance(0.25);
        assert_eq!(sink.now(), 0.75);
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].epoch, 2);
        assert_eq!(spans[0].phase, TracePhase::Forward);
        assert_eq!(spans[0].t_start, 0.0);
        assert_eq!(spans[0].dur, 0.5);
        assert_eq!(spans[0].t_end(), 0.5);
        assert_eq!(spans[1].t_start, 0.5);
        assert_eq!(spans[1].flops, 400);
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::enabled();
        let handle = sink.clone();
        handle.span(0, 0, TracePhase::Sync, 0.0, 1.0, 8, 0);
        assert_eq!(sink.spans().len(), 1);
        handle.advance(1.0);
        assert_eq!(sink.now(), 1.0);
    }

    #[test]
    fn worker_phase_seconds_sums_in_order() {
        let sink = TraceSink::enabled();
        // Sums must reproduce sequential += accumulation exactly.
        let parts = [0.1, 0.2, 0.3, 0.7, 1e-9];
        let mut expect = 0.0;
        for (i, p) in parts.iter().enumerate() {
            sink.span(3, i as u32, TracePhase::Sync, 0.0, *p, 0, 0);
            expect += *p;
        }
        sink.span(2, 0, TracePhase::Sync, 0.0, 99.0, 0, 0);
        sink.span(3, 0, TracePhase::Forward, 0.0, 42.0, 0, 0);
        assert_eq!(sink.worker_phase_seconds(3, TracePhase::Sync), expect);
    }

    #[test]
    fn phase_rows_aggregate_and_sort() {
        let sink = TraceSink::enabled();
        sink.span(1, 0, TracePhase::Backward, 0.0, 2.0, 10, 100);
        sink.span(0, 0, TracePhase::Forward, 0.0, 1.0, 0, 50);
        sink.span(1, 1, TracePhase::Backward, 2.0, 3.0, 20, 200);
        let rows = sink.phase_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].worker, 0);
        assert_eq!(rows[0].phase, TracePhase::Forward);
        assert_eq!(rows[1].worker, 1);
        assert_eq!(rows[1].spans, 2);
        assert_eq!(rows[1].seconds, 5.0);
        assert_eq!(rows[1].bytes, 30);
        assert_eq!(rows[1].flops, 300);
        let csv = sink.phase_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("worker,phase,spans,seconds,bytes,flops"));
        assert_eq!(lines.next(), Some("0,forward,1,1,0,50"));
        assert_eq!(lines.next(), Some("1,backward,2,5,30,300"));
    }

    #[test]
    fn chrome_json_shape() {
        let sink = TraceSink::enabled();
        sink.set_epoch(1);
        sink.span(0, 2, TracePhase::Sampling, 0.0, 0.001, 64, 0);
        sink.advance(0.001);
        sink.counter(0, "bytes_sent", 64.0);
        let json = sink.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"worker 0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"sampling\""));
        assert!(json.contains("\"dur\":1000.0")); // 0.001 s = 1000 µs
        assert!(json.contains("\"epoch\":1"));
        assert!(json.contains("\"step\":2"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"bytes_sent\""));
        // No NaN/inf can reach the JSON.
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn json_floats_are_strict() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn clear_resets_everything() {
        let sink = TraceSink::enabled();
        sink.set_epoch(7);
        sink.span(0, 0, TracePhase::Forward, 0.0, 1.0, 0, 0);
        sink.advance(1.0);
        sink.clear();
        assert!(sink.spans().is_empty());
        assert_eq!(sink.now(), 0.0);
        assert_eq!(sink.current_epoch(), 0);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(TracePhase::FeatureLoad.name(), "feature_load");
        assert_eq!(TracePhase::Checkpoint.name(), "checkpoint");
        assert_eq!(TracePhase::Migration.name(), "migration");
    }

    #[test]
    fn phase_name_roundtrip() {
        for p in TracePhase::ALL {
            assert_eq!(TracePhase::from_name(p.name()), Some(p));
        }
        assert_eq!(TracePhase::from_name("no_such_phase"), None);
        let mut all = TracePhase::ALL.to_vec();
        all.dedup();
        assert_eq!(all.len(), 10, "ALL lists every variant once");
    }
}
