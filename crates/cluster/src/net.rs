//! Seeded message-level transport simulation: loss, duplication,
//! reorder, and network partitions.
//!
//! Every earlier robustness layer models the network as a scalar
//! brownout on link bandwidth. Real distributed GNN training fails at
//! *message* granularity — DistDGL's KVStore RPC fetches get lost and
//! retried, DistGNN's delayed-remote-aggregation sync messages arrive
//! duplicated or out of order, and racks partition into islands that
//! cannot reach each other at all. This module supplies that model:
//!
//! * [`MessageKind`] — the four typed flows the engines exchange
//!   (feature fetch, gradient sync, shard handoff, checkpoint write),
//!   each with per-flow sequence numbers;
//! * [`NetFaultSpec`] / [`NetFaultPlan`] — seeded generation of
//!   per-message loss/duplication/reorder probabilities plus
//!   [`PartitionWindow`]s that split the fleet into a quorum island and
//!   a minority island for a bounded interval (mirrors
//!   [`crate::FaultPlan`]: same spec ⇒ bit-identical plan);
//! * [`DedupWindow`] — the receiver-side sequence-number window that
//!   makes delivery *exactly-once-effective*: retries and duplicates
//!   are discarded on arrival, so every unique message takes effect
//!   exactly once no matter how the transport mangles it;
//! * [`noise_charge`] — the pure per-flow cost function: each message
//!   is walked through seeded loss (timeout + capped-exponential retry
//!   with deterministic jitter via [`BackoffPolicy`]), duplication
//!   (second arrival discarded by the dedup window) and reorder (one
//!   extra latency of in-order release delay). Same arguments ⇒
//!   bit-identical [`NetCharge`], so the engines' adopt-only probes
//!   price exactly what execution later charges;
//! * [`validate_fault_churn`] — the composition guard: a crash
//!   schedule that could drop the live fleet below the churn plan's
//!   `min_live` quorum floor is rejected up front instead of draining
//!   the cluster mid-run.
//!
//! An empty plan ([`NetFaultPlan::empty`]) is the healthy transport:
//! engines short-circuit on it and reproduce their elastic paths
//! bit-for-bit, so no published artifact drifts.

use crate::backoff::BackoffPolicy;
use crate::faults::{DetRng, FaultPlan};
use crate::membership::{ChurnPlan, ElasticRunReport, Fleet};
use crate::spec::NetworkSpec;
use crate::time::transfer_time;

/// Retry attempts per message before the model hands the flow to the
/// application-level recovery path. At the loss rates the specs
/// schedule (≤ a few percent) the cap is effectively never reached —
/// it exists to bound the simulation, and the final attempt is assumed
/// to succeed (the retry-until-success idiom of the flow-level model).
pub const MAX_DELIVERY_ATTEMPTS: u32 = 8;

/// A typed message flow between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Remote feature / embedding fetch (DistDGL KVStore pull, DistGNN
    /// replica read).
    FeatureFetch,
    /// Gradient / model synchronisation (all-reduce segments, replica
    /// sync).
    GradientSync,
    /// Partition-shard migration (handoffs, rebalances).
    ShardHandoff,
    /// Checkpoint shard write to the snapshot store.
    CheckpointWrite,
}

impl MessageKind {
    /// Every kind, in stable order.
    pub const ALL: [MessageKind; 4] = [
        MessageKind::FeatureFetch,
        MessageKind::GradientSync,
        MessageKind::ShardHandoff,
        MessageKind::CheckpointWrite,
    ];

    /// Stable display / metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::FeatureFetch => "feature_fetch",
            MessageKind::GradientSync => "gradient_sync",
            MessageKind::ShardHandoff => "shard_handoff",
            MessageKind::CheckpointWrite => "checkpoint_write",
        }
    }

    /// Stable numeric id (seeds the per-flow RNG stream).
    fn id(self) -> u64 {
        match self {
            MessageKind::FeatureFetch => 1,
            MessageKind::GradientSync => 2,
            MessageKind::ShardHandoff => 3,
            MessageKind::CheckpointWrite => 4,
        }
    }
}

/// Parameters of a seeded message-level fault schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultSpec {
    /// Worker slots in the cluster (at most 64, like [`Fleet`]).
    pub machines: u32,
    /// Epochs the schedule covers.
    pub epochs: u32,
    /// Per-message loss probability (each loss costs one timeout +
    /// backoff rung + retransmission).
    pub loss_prob: f64,
    /// Per-message duplication probability (the duplicate arrival is
    /// discarded by the receiver's [`DedupWindow`]).
    pub dup_prob: f64,
    /// Per-message reorder probability (one extra latency of in-order
    /// release delay).
    pub reorder_prob: f64,
    /// Per-epoch probability that a partition window starts (outside an
    /// existing window).
    pub partition_prob: f64,
    /// Length of a partition window in epochs.
    pub partition_epochs: u32,
    /// Bounded-staleness budget: degraded mode may serve stale remote
    /// state for at most this many consecutive epochs; longer windows
    /// force abort-and-recover.
    pub staleness_bound: u32,
    /// Seed of the deterministic schedule and noise streams.
    pub seed: u64,
}

impl NetFaultSpec {
    /// A realistic lossy-datacenter schedule: 1% loss, 2% duplication,
    /// 5% reorder, and a partition window of 2 epochs starting with 4%
    /// probability per epoch, with a 3-epoch staleness budget.
    pub fn standard(machines: u32, epochs: u32, seed: u64) -> Self {
        NetFaultSpec {
            machines,
            epochs,
            loss_prob: 0.01,
            dup_prob: 0.02,
            reorder_prob: 0.05,
            partition_prob: 0.04,
            partition_epochs: 2,
            staleness_bound: 3,
            seed,
        }
    }
}

/// One network partition: during `[from_epoch, until_epoch)` the
/// `minority` island (a bitmask of worker slots) cannot reach the rest
/// of the fleet. The complement is always the strict majority, so the
/// quorum side is well defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First partitioned epoch.
    pub from_epoch: u32,
    /// First healed epoch (exclusive bound).
    pub until_epoch: u32,
    /// Bitmask of the minority-island worker slots.
    pub minority: u64,
}

impl PartitionWindow {
    /// Window length in epochs.
    pub fn len(&self) -> u32 {
        self.until_epoch.saturating_sub(self.from_epoch)
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `epoch` falls inside the window.
    pub fn contains(&self, epoch: u32) -> bool {
        self.from_epoch <= epoch && epoch < self.until_epoch
    }

    /// Minority-island members, ascending.
    pub fn minority_workers(&self) -> Vec<u32> {
        (0..64).filter(|&w| self.minority & (1u64 << w) != 0).collect()
    }
}

/// A fully materialised, deterministic message-level fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Partition windows, non-overlapping, ascending by epoch.
    pub windows: Vec<PartitionWindow>,
    /// Per-message loss probability.
    pub loss_prob: f64,
    /// Per-message duplication probability.
    pub dup_prob: f64,
    /// Per-message reorder probability.
    pub reorder_prob: f64,
    /// Bounded-staleness budget for degraded mode, in epochs.
    pub staleness_bound: u32,
    /// Worker slots the plan was generated for.
    pub machines: u32,
    /// Epochs the plan covers.
    pub epochs: u32,
    /// Seed of the noise streams ([`noise_charge`] mixes it per flow).
    pub seed: u64,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan::empty()
    }
}

impl NetFaultPlan {
    /// The healthy transport: no partitions, no noise. Engines
    /// short-circuit on it and reproduce their elastic paths
    /// bit-for-bit.
    pub fn empty() -> Self {
        NetFaultPlan {
            windows: Vec::new(),
            loss_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            staleness_bound: 0,
            machines: 0,
            epochs: 0,
            seed: 0,
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && !self.has_noise()
    }

    /// Whether any per-message noise (loss / duplication / reorder) is
    /// scheduled.
    pub fn has_noise(&self) -> bool {
        self.loss_prob > 0.0 || self.dup_prob > 0.0 || self.reorder_prob > 0.0
    }

    /// Materialise the schedule for a spec. Partition windows are drawn
    /// epoch by epoch (outside an existing window) with a minority
    /// island of `1 ..= (machines − 1) / 2` uniformly drawn members, so
    /// the complement is always a strict majority. Fleets of fewer than
    /// three machines cannot partition into quorum + minority and get
    /// noise only. Same spec ⇒ bit-identical plan.
    ///
    /// # Panics
    ///
    /// Panics if `spec.machines` exceeds 64.
    pub fn generate(spec: &NetFaultSpec) -> NetFaultPlan {
        assert!(spec.machines <= 64, "net fleet must have at most 64 worker slots");
        let mut windows = Vec::new();
        if spec.partition_prob > 0.0 && spec.partition_epochs > 0 && spec.machines >= 3 {
            let mut rng = DetRng::new(spec.seed ^ 0x9a11_ce11_ab1e_c0de);
            let max_minority = (spec.machines - 1) / 2;
            let mut epoch = 0;
            while epoch < spec.epochs {
                if !rng.chance(spec.partition_prob) {
                    epoch += 1;
                    continue;
                }
                let size = 1 + rng.below(u64::from(max_minority)) as u32;
                let mut minority = 0u64;
                while minority.count_ones() < size {
                    minority |= 1u64 << rng.below(u64::from(spec.machines));
                }
                let until = epoch.saturating_add(spec.partition_epochs).min(spec.epochs);
                windows.push(PartitionWindow { from_epoch: epoch, until_epoch: until, minority });
                epoch = until;
            }
        }
        NetFaultPlan {
            windows,
            loss_prob: spec.loss_prob.clamp(0.0, 0.9),
            dup_prob: spec.dup_prob.clamp(0.0, 1.0),
            reorder_prob: spec.reorder_prob.clamp(0.0, 1.0),
            staleness_bound: spec.staleness_bound,
            machines: spec.machines,
            epochs: spec.epochs,
            seed: spec.seed,
        }
    }

    /// The partition window covering `epoch`, if any.
    pub fn window_at(&self, epoch: u32) -> Option<&PartitionWindow> {
        self.windows.iter().find(|w| w.contains(epoch))
    }

    /// Minority-island bitmask at `epoch` (0 when unpartitioned).
    pub fn minority_at(&self, epoch: u32) -> u64 {
        self.window_at(epoch).map_or(0, |w| w.minority)
    }

    /// Total partitioned epochs scheduled.
    pub fn total_partition_epochs(&self) -> u32 {
        self.windows.iter().map(|w| w.len()).sum()
    }
}

/// Receiver-side sequence-number window: accepts each sequence number
/// at most once, discarding retransmissions and duplicates, so delivery
/// is exactly-once-effective as long as duplicates arrive within the
/// window.
#[derive(Debug, Clone)]
pub struct DedupWindow {
    capacity: usize,
    order: std::collections::VecDeque<u64>,
    seen: std::collections::BTreeSet<u64>,
    /// One past the highest accepted sequence number.
    high: u64,
}

impl DedupWindow {
    /// A window remembering the last `capacity` accepted sequence
    /// numbers (at least 1).
    pub fn new(capacity: usize) -> DedupWindow {
        DedupWindow {
            capacity: capacity.max(1),
            order: std::collections::VecDeque::new(),
            seen: std::collections::BTreeSet::new(),
            high: 0,
        }
    }

    /// Offer an arriving sequence number. Returns `true` exactly when
    /// the message should take effect: the first arrival of a number
    /// the window still covers. Duplicates inside the window and
    /// arrivals older than the window are rejected (an old arrival can
    /// only be a straggling retransmission of an already-effective
    /// message).
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq.saturating_add(self.capacity as u64) <= self.high {
            return false;
        }
        if !self.seen.insert(seq) {
            return false;
        }
        self.order.push_back(seq);
        if self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.high = self.high.max(seq + 1);
        true
    }

    /// Sequence numbers currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether nothing has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// What the transport noise did to one flow (or a whole run, via
/// [`NetCharge::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetCharge {
    /// Unique messages offered to the flow.
    pub messages: u64,
    /// Messages that took effect (always equals `messages`:
    /// exactly-once-effective).
    pub delivered: u64,
    /// Loss-induced retransmissions.
    pub retries: u64,
    /// Bytes re-moved by retransmissions.
    pub retry_bytes: u64,
    /// Duplicate arrivals injected by the transport.
    pub duplicates: u64,
    /// Duplicate arrivals discarded by the dedup window (equals
    /// `duplicates` when the window holds).
    pub dup_discarded: u64,
    /// Messages delivered out of order (held for in-order release).
    pub reordered: u64,
    /// Simulated seconds of retransmission transfer, timeout/backoff
    /// wait, and reorder release delay.
    pub extra_secs: f64,
}

impl NetCharge {
    /// Fold another charge into this one.
    pub fn merge(&mut self, other: &NetCharge) {
        self.messages += other.messages;
        self.delivered += other.delivered;
        self.retries += other.retries;
        self.retry_bytes += other.retry_bytes;
        self.duplicates += other.duplicates;
        self.dup_discarded += other.dup_discarded;
        self.reordered += other.reordered;
        self.extra_secs += other.extra_secs;
    }

    /// Whether the noise was free.
    pub fn is_zero(&self) -> bool {
        self.retries == 0 && self.duplicates == 0 && self.reordered == 0 && self.extra_secs == 0.0
    }
}

/// Price the transport noise on one flow: `messages` sequence-numbered
/// messages totalling `bytes`, of kind `kind`, sent by `src` during
/// `epoch`. Pure and seeded — equal arguments give a bit-identical
/// charge on any thread, which is what lets the engines' adopt-only
/// probes price exactly what execution later pays.
///
/// Per message: loss retries up to [`MAX_DELIVERY_ATTEMPTS`] walk the
/// [`BackoffPolicy::rpc`] ladder (deterministic jitter keyed on the
/// sequence number); a duplicate arrival is offered to the
/// [`DedupWindow`] and discarded; a reordered message waits one extra
/// network latency for in-order release. Retransmission bytes are
/// charged flow-level through [`transfer_time`], mirroring the
/// scalar-loss model, and the total backoff wait is clamped at
/// [`crate::MAX_RETRY_BACKOFF_SECS`] like every other retry ladder in
/// the crate.
pub fn noise_charge(
    plan: &NetFaultPlan,
    kind: MessageKind,
    epoch: u32,
    src: u32,
    messages: u64,
    bytes: u64,
    network: &NetworkSpec,
) -> NetCharge {
    let mut charge = NetCharge { messages, delivered: messages, ..NetCharge::default() };
    if messages == 0 || !plan.has_noise() {
        return charge;
    }
    let mut rng = DetRng::new(
        plan.seed
            .wrapping_mul(0x94d0_49bb_1331_11eb)
            .wrapping_add(kind.id().rotate_left(48))
            .wrapping_add(u64::from(epoch).rotate_left(24))
            .wrapping_add(u64::from(src)),
    );
    let policy = BackoffPolicy::rpc(network, plan.seed ^ kind.id());
    let mut dedup = DedupWindow::new(messages.min(4096) as usize);
    let per_msg = bytes / messages;
    let mut backoff_secs = 0.0;
    for seq in 0..messages {
        let mut attempt = 0;
        while attempt + 1 < MAX_DELIVERY_ATTEMPTS && rng.chance(plan.loss_prob) {
            backoff_secs += policy.delay(seq, attempt);
            charge.retries += 1;
            charge.retry_bytes += per_msg;
            attempt += 1;
        }
        assert!(dedup.accept(seq), "first arrival of a fresh sequence number takes effect");
        if rng.chance(plan.dup_prob) {
            charge.duplicates += 1;
            if !dedup.accept(seq) {
                charge.dup_discarded += 1;
            }
        }
        if rng.chance(plan.reorder_prob) {
            charge.reordered += 1;
            charge.extra_secs += network.latency_sec;
        }
    }
    charge.extra_secs += transfer_time(network, charge.retry_bytes, charge.retries)
        + backoff_secs.min(crate::MAX_RETRY_BACKOFF_SECS);
    charge
}

/// Policy knobs of a partitioned run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetRunOptions {
    /// Allow bounded-staleness degraded mode during partitions (true),
    /// or always abort and recover from the last checkpoint (false —
    /// the baseline the degraded mode must never lose to).
    pub degraded: bool,
}

impl Default for NetRunOptions {
    fn default() -> Self {
        NetRunOptions { degraded: true }
    }
}

impl NetRunOptions {
    /// The abort-and-recover baseline.
    pub fn abort_only() -> Self {
        NetRunOptions { degraded: false }
    }
}

/// Transport-layer accounting of one partitioned run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetRunReport {
    /// Partition windows that actually split the live fleet.
    pub windows: u32,
    /// Windows served in bounded-staleness degraded mode.
    pub degraded_windows: u32,
    /// Windows handled by abort-and-recover.
    pub aborted_windows: u32,
    /// Epochs spent inside partition windows.
    pub partitioned_epochs: u32,
    /// Partitioned epochs served in degraded mode.
    pub degraded_epochs: u32,
    /// Partitioned epochs burned and re-executed by aborts.
    pub aborted_epochs: u32,
    /// Remote aggregations served from stale replicas (DistGNN degraded
    /// mode).
    pub stale_served: u64,
    /// Feature fetches deferred to the local cache (DistDGL degraded
    /// mode).
    pub deferred_fetches: u64,
    /// Maximum staleness any served value reached, in epochs.
    pub max_staleness: u32,
    /// Bytes streamed to refresh minority islands after heal.
    pub catchup_bytes: u64,
    /// Simulated seconds of post-heal catch-up streaming.
    pub catchup_seconds: f64,
    /// Transport noise totals over every charged flow.
    pub noise: NetCharge,
}

impl NetRunReport {
    /// Fold a flow charge into the run totals.
    pub fn absorb(&mut self, charge: &NetCharge) {
        self.noise.merge(charge);
    }

    /// Whether delivery stayed exactly-once-effective: every unique
    /// message took effect and every duplicate was discarded.
    pub fn exactly_once(&self) -> bool {
        self.noise.delivered == self.noise.messages
            && self.noise.dup_discarded == self.noise.duplicates
    }

    /// Total transport-layer overhead in simulated seconds.
    pub fn overhead_seconds(&self) -> f64 {
        self.noise.extra_secs + self.catchup_seconds
    }
}

/// Outcome of a `simulate_run_partitioned` call: the elastic run report
/// plus the transport-layer accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionedRunReport {
    /// The membership/fault accounting (same shape as
    /// `simulate_run_elastic`).
    pub elastic: ElasticRunReport,
    /// The transport accounting.
    pub net: NetRunReport,
}

impl PartitionedRunReport {
    /// Total simulated wall time: the elastic total plus transport
    /// noise and post-heal catch-up.
    pub fn total_seconds(&self) -> f64 {
        self.elastic.total_seconds() + self.net.overhead_seconds()
    }
}

/// Reject fault/churn compositions that can drain the cluster: if at
/// any epoch the scheduled churn leaves the fleet with `L` live workers
/// and the fault plan crashes `c` distinct live workers that same
/// epoch, then `L − c` must stay at or above `min_live`. (Churn alone
/// respects the floor by construction — [`ChurnPlan::generate`]
/// suppresses leaves at `min_live` — but crashes are scheduled blind,
/// so the composition must be checked.)
pub fn validate_fault_churn(
    faults: &FaultPlan,
    churn: &ChurnPlan,
    min_live: u32,
) -> Result<(), String> {
    if faults.is_empty() || churn.machines == 0 {
        return Ok(());
    }
    let mut fleet = Fleet::full(churn.machines);
    let epochs = churn.epochs.max(faults.epochs);
    for epoch in 0..epochs {
        let (leaves, joins) = churn.events_at(epoch);
        for w in &leaves {
            fleet.mark_left(*w);
        }
        for w in &joins {
            fleet.mark_joined(*w);
        }
        let mut crashing = 0u64;
        for (machine, _) in faults.crashes_in_epoch(epoch) {
            if fleet.is_live(machine) {
                crashing |= 1u64 << machine;
            }
        }
        let live_after = fleet.live_count() - crashing.count_ones();
        if live_after < min_live {
            return Err(format!(
                "fault/churn composition drains the cluster at epoch {epoch}: \
                 {} live workers minus {} crashing leaves {live_after} < min_live {min_live}",
                fleet.live_count(),
                crashing.count_ones(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultSpec};
    use crate::membership::{ChurnEvent, ChurnSpec};

    fn spec(seed: u64) -> NetFaultSpec {
        NetFaultSpec::standard(8, 64, seed)
    }

    #[test]
    fn generate_is_deterministic_and_seed_sensitive() {
        let a = NetFaultPlan::generate(&spec(7));
        let b = NetFaultPlan::generate(&spec(7));
        assert_eq!(a, b);
        let c = NetFaultPlan::generate(&spec(8));
        assert_ne!(a, c, "different seeds give different schedules");
        assert!(!a.is_empty());
    }

    #[test]
    fn windows_are_disjoint_with_strict_minorities() {
        let plan = NetFaultPlan::generate(&spec(0xbeef));
        assert!(!plan.windows.is_empty(), "standard spec over 64 epochs partitions");
        let mut last_end = 0;
        for w in &plan.windows {
            assert!(w.from_epoch >= last_end, "windows must not overlap");
            assert!(w.until_epoch <= plan.epochs);
            assert!(!w.is_empty());
            last_end = w.until_epoch;
            let size = w.minority.count_ones();
            assert!(size >= 1 && size <= (plan.machines - 1) / 2, "strict minority: {size}");
            assert!(w.minority < 1u64 << plan.machines, "members within the fleet");
            assert_eq!(w.minority_workers().len(), size as usize);
        }
    }

    #[test]
    fn tiny_fleets_get_noise_but_never_partitions() {
        for machines in [1u32, 2] {
            let plan = NetFaultPlan::generate(&NetFaultSpec::standard(machines, 64, 3));
            assert!(plan.windows.is_empty(), "{machines} machines cannot split into quorum+minority");
            assert!(plan.has_noise());
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = NetFaultPlan::empty();
        assert!(plan.is_empty());
        assert!(!plan.has_noise());
        assert_eq!(plan.minority_at(0), 0);
        let n = NetworkSpec::ten_gbit();
        let c = noise_charge(&plan, MessageKind::FeatureFetch, 0, 0, 100, 1_000_000, &n);
        assert!(c.is_zero());
        assert_eq!(c.delivered, 100);
    }

    #[test]
    fn window_lookup_matches_membership() {
        let plan = NetFaultPlan {
            windows: vec![PartitionWindow { from_epoch: 3, until_epoch: 5, minority: 0b0110 }],
            machines: 8,
            epochs: 10,
            ..NetFaultPlan::empty()
        };
        assert!(plan.window_at(2).is_none());
        assert_eq!(plan.minority_at(3), 0b0110);
        assert_eq!(plan.minority_at(4), 0b0110);
        assert!(plan.window_at(5).is_none());
        assert_eq!(plan.total_partition_epochs(), 2);
    }

    #[test]
    fn dedup_window_is_exactly_once_effective() {
        let mut w = DedupWindow::new(8);
        assert!(w.is_empty());
        assert!(w.accept(0), "first arrival takes effect");
        assert!(!w.accept(0), "duplicate discarded");
        assert!(w.accept(1));
        assert!(!w.accept(1));
        assert!(!w.accept(0), "late duplicate still discarded");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn dedup_window_rejects_arrivals_older_than_the_window() {
        let mut w = DedupWindow::new(4);
        for seq in 0..10 {
            assert!(w.accept(seq));
        }
        // 0..=5 have fallen out of the 4-wide window; a straggling
        // retransmission of them must not take effect twice.
        for seq in 0..6 {
            assert!(!w.accept(seq), "stale seq {seq} re-accepted");
        }
        assert!(!w.accept(9), "recent duplicate discarded");
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn noise_charge_is_deterministic_and_exactly_once() {
        let plan = NetFaultPlan::generate(&spec(0x7e57));
        let n = NetworkSpec::ten_gbit();
        let a = noise_charge(&plan, MessageKind::GradientSync, 5, 2, 500, 5_000_000, &n);
        let b = noise_charge(&plan, MessageKind::GradientSync, 5, 2, 500, 5_000_000, &n);
        assert_eq!(a, b, "pure function of its arguments");
        assert_eq!(a.delivered, 500, "every message takes effect");
        assert_eq!(a.dup_discarded, a.duplicates, "every duplicate discarded");
        assert!(a.retries > 0, "1% loss over 500 messages retries");
        assert!(a.duplicates > 0);
        assert!(a.reordered > 0);
        assert!(a.extra_secs > 0.0);
        // Different flows draw different noise.
        let other = noise_charge(&plan, MessageKind::FeatureFetch, 5, 2, 500, 5_000_000, &n);
        assert_ne!(a, other);
    }

    #[test]
    fn noise_charge_retry_bytes_are_proportional() {
        let plan = NetFaultPlan { loss_prob: 0.5, ..NetFaultPlan::empty() };
        let n = NetworkSpec::ten_gbit();
        let c = noise_charge(&plan, MessageKind::FeatureFetch, 0, 0, 100, 100_000, &n);
        assert_eq!(c.retry_bytes, c.retries * 1_000, "per-message share re-moved");
        assert!(c.retries >= 50, "heavy loss retries a lot: {}", c.retries);
        assert!(
            c.retries < 100 * u64::from(MAX_DELIVERY_ATTEMPTS),
            "attempt cap bounds the simulation"
        );
    }

    #[test]
    fn net_run_report_folds_charges() {
        let mut report = NetRunReport { catchup_seconds: 0.25, ..NetRunReport::default() };
        report.absorb(&NetCharge {
            messages: 10,
            delivered: 10,
            retries: 2,
            retry_bytes: 200,
            duplicates: 1,
            dup_discarded: 1,
            reordered: 3,
            extra_secs: 0.5,
        });
        assert!(report.exactly_once());
        assert_eq!(report.overhead_seconds(), 0.75);
        report.absorb(&NetCharge { messages: 5, delivered: 4, ..NetCharge::default() });
        assert!(!report.exactly_once(), "a swallowed message must trip the verdict");
    }

    #[test]
    fn partitioned_report_total_includes_transport_overhead() {
        let r = PartitionedRunReport {
            elastic: ElasticRunReport {
                epoch_seconds: vec![1.0, 2.0],
                ..ElasticRunReport::default()
            },
            net: NetRunReport {
                noise: NetCharge { extra_secs: 0.5, ..NetCharge::default() },
                catchup_seconds: 0.25,
                ..NetRunReport::default()
            },
        };
        assert_eq!(r.total_seconds(), 3.75);
    }

    #[test]
    fn validate_rejects_crashes_that_drain_the_quorum() {
        // 4 machines, min_live 2: churn removes workers 0 and 1 at
        // epoch 0; a crash of worker 2 the same epoch leaves 1 < 2.
        let churn = ChurnPlan {
            events: vec![
                ChurnEvent::Leave { worker: 0, epoch: 0 },
                ChurnEvent::Leave { worker: 1, epoch: 0 },
            ],
            machines: 4,
            epochs: 4,
        };
        let mut faults = FaultPlan::empty();
        faults.machines = 4;
        faults.epochs = 4;
        faults.events.push(FaultEvent::Crash { machine: 2, epoch: 0, step_frac: 0.5 });
        let err = validate_fault_churn(&faults, &churn, 2).unwrap_err();
        assert!(err.contains("epoch 0"), "{err}");
        assert!(err.contains("min_live 2"), "{err}");
        // The same crash against a machine that already left is inert.
        let mut inert = FaultPlan::empty();
        inert.machines = 4;
        inert.epochs = 4;
        inert.events.push(FaultEvent::Crash { machine: 0, epoch: 1, step_frac: 0.5 });
        assert!(validate_fault_churn(&inert, &churn, 2).is_ok());
    }

    #[test]
    fn validate_accepts_empty_and_safe_compositions() {
        let churn = ChurnPlan::generate(&ChurnSpec::standard(8, 100, 0xc0de));
        assert!(validate_fault_churn(&FaultPlan::empty(), &churn, 4).is_ok());
        let faults = FaultPlan::generate(&FaultSpec::crashes_only(8, 100, 25.0, 7));
        let safe_churn = ChurnPlan::generate(&ChurnSpec::standard(8, 100, 7));
        assert!(validate_fault_churn(&faults, &safe_churn, 4).is_ok());
    }

    #[test]
    fn validate_catches_a_generated_drain() {
        // Seed 0xc0de is a real example of a crash landing exactly when
        // churn has the fleet at the min_live floor — the composition
        // the guard exists for.
        let churn = ChurnPlan::generate(&ChurnSpec::standard(8, 100, 0xc0de));
        let faults = FaultPlan::generate(&FaultSpec::crashes_only(8, 100, 25.0, 0xc0de));
        let err = validate_fault_churn(&faults, &churn, 4).unwrap_err();
        assert!(err.contains("min_live 4"), "{err}");
        // The guard is monotone: a lower floor tolerates the same plan.
        assert!(validate_fault_churn(&faults, &churn, 0).is_ok());
    }
}
