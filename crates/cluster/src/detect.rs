//! Online straggler / network-degradation detection.
//!
//! The mitigation layer needs to *notice* misbehaviour before it can
//! react: a flagged straggler lets DistDGL steal its remaining
//! mini-batch work and DistGNN migrate its master replicas; a flagged
//! network brownout lets DistGNN lengthen its cd-r sync period. Both
//! engines already compute per-phase times per machine — this module
//! turns those streams into flags, deterministically.
//!
//! Detection rule (per observation round):
//!
//! 1. **EWMA baseline per machine** — each machine's own smoothed
//!    history. Comparing a machine against *itself* means a machine
//!    that is persistently slow because its partition is larger (the
//!    paper's balance axis) is *not* a straggler; only departures from
//!    its own baseline count.
//! 2. **Median-of-workers outlier rule** — a machine is *hot* when its
//!    elevation over its own baseline exceeds `outlier_ratio` times the
//!    median elevation across workers. Normalising by the median makes
//!    cluster-wide shifts (a bigger model, a global slowdown) invisible;
//!    only *relative* outliers fire.
//! 3. **Hysteresis** — `trigger_after` consecutive hot rounds raise the
//!    flag, `clear_after` consecutive cool rounds lower it, so a single
//!    noisy round never triggers (or cancels) mitigation.
//!
//! The baseline is frozen while a machine is hot so the anomaly is not
//! absorbed into it (a straggler would otherwise "become the new
//! normal" and unflag itself).
//!
//! Everything here is pure arithmetic over the observed streams: same
//! observations ⇒ same flags, bit for bit. With an empty fault plan the
//! engines never even construct a detector, so healthy runs stay
//! bit-identical to the pre-mitigation baseline.

/// Tuning knobs of a [`StragglerDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest sample).
    pub ewma_alpha: f64,
    /// A machine is hot when its elevation exceeds this multiple of the
    /// median elevation across workers.
    pub outlier_ratio: f64,
    /// Consecutive hot rounds before a machine is flagged.
    pub trigger_after: u32,
    /// Consecutive cool rounds before a flag clears.
    pub clear_after: u32,
    /// The network is hot when the communication-time elevation over
    /// its own baseline exceeds this ratio.
    pub degraded_ratio: f64,
    /// Flagged rounds after which a straggler counts as *persistent*
    /// (DistGNN migrates masters away only then — migration is paid
    /// once, so it must not chase transients).
    pub persist_rounds: u32,
}

impl DetectorConfig {
    /// Defaults for per-step observation streams (DistDGL: hundreds of
    /// rounds per epoch, so hysteresis is cheap and blips are frequent).
    pub fn per_step() -> Self {
        DetectorConfig {
            ewma_alpha: 0.2,
            outlier_ratio: 1.4,
            trigger_after: 3,
            clear_after: 3,
            degraded_ratio: 1.4,
            persist_rounds: 40,
        }
    }

    /// Defaults for per-epoch observation streams (DistGNN: one round
    /// per epoch, already integrated over the full graph, so a single
    /// elevated round is meaningful and reaction must be fast).
    pub fn per_epoch() -> Self {
        DetectorConfig {
            ewma_alpha: 0.4,
            outlier_ratio: 1.3,
            trigger_after: 1,
            clear_after: 1,
            degraded_ratio: 1.2,
            persist_rounds: 2,
        }
    }
}

/// Online straggler / degradation detector. See the module docs for the
/// rule; construct one per training run and feed it every round.
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    cfg: DetectorConfig,
    /// Per-machine EWMA baseline of observed times (None until first
    /// observation).
    ewma: Vec<Option<f64>>,
    /// Last observed elevation over the baseline (1.0 = nominal).
    elevation: Vec<f64>,
    hot_streak: Vec<u32>,
    cold_streak: Vec<u32>,
    flagged: Vec<bool>,
    /// Rounds the machine has spent flagged (0 when clear).
    flagged_rounds: Vec<u32>,
    net_ewma: Option<f64>,
    net_hot: u32,
    net_cold: u32,
    net_flagged: bool,
}

impl StragglerDetector {
    /// A fresh detector for `machines` machines.
    pub fn new(machines: u32, cfg: DetectorConfig) -> Self {
        let n = machines as usize;
        StragglerDetector {
            cfg,
            ewma: vec![None; n],
            elevation: vec![1.0; n],
            hot_streak: vec![0; n],
            cold_streak: vec![0; n],
            flagged: vec![false; n],
            flagged_rounds: vec![0; n],
            net_ewma: None,
            net_hot: 0,
            net_cold: 0,
            net_flagged: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Feed one round of per-machine times (all machines active).
    pub fn observe_compute(&mut self, times: &[f64]) {
        let active = vec![true; times.len()];
        self.observe_compute_active(times, &active);
    }

    /// Feed one round of per-machine times; inactive machines (crashed
    /// workers with nothing to do) are excluded from the median and
    /// their state cools down, so their near-zero times cannot skew the
    /// outlier rule against the survivors.
    pub fn observe_compute_active(&mut self, times: &[f64], active: &[bool]) {
        assert_eq!(times.len(), self.ewma.len(), "machine count mismatch");
        assert_eq!(active.len(), self.ewma.len(), "machine count mismatch");
        let mut elevations = Vec::with_capacity(times.len());
        for m in 0..times.len() {
            let e = match self.ewma[m] {
                Some(base) if base > 0.0 && active[m] => times[m] / base,
                _ => 1.0,
            };
            self.elevation[m] = if active[m] { e } else { 1.0 };
            if active[m] {
                elevations.push(e);
            }
        }
        let med = median(&mut elevations).max(1e-12);
        for m in 0..times.len() {
            let hot = active[m] && self.elevation[m] > self.cfg.outlier_ratio * med.max(1.0);
            self.step_machine(m, hot);
            // The baseline absorbs only normal rounds: a hot round left
            // in the EWMA would make the straggler its own new normal.
            if active[m] && !hot {
                self.ewma[m] = Some(match self.ewma[m] {
                    Some(base) => {
                        self.cfg.ewma_alpha * times[m] + (1.0 - self.cfg.ewma_alpha) * base
                    }
                    None => times[m],
                });
            }
        }
    }

    fn step_machine(&mut self, m: usize, hot: bool) {
        if hot {
            self.hot_streak[m] += 1;
            self.cold_streak[m] = 0;
            if self.hot_streak[m] >= self.cfg.trigger_after {
                self.flagged[m] = true;
            }
        } else {
            self.cold_streak[m] += 1;
            self.hot_streak[m] = 0;
            if self.cold_streak[m] >= self.cfg.clear_after {
                self.flagged[m] = false;
            }
        }
        if self.flagged[m] {
            self.flagged_rounds[m] += 1;
        } else {
            self.flagged_rounds[m] = 0;
        }
    }

    /// Feed one round of cluster-wide communication time (e.g. the sync
    /// phase): the network-degradation stream.
    pub fn observe_network(&mut self, comm_secs: f64) {
        let e = match self.net_ewma {
            Some(base) if base > 0.0 => comm_secs / base,
            _ => 1.0,
        };
        let hot = e > self.cfg.degraded_ratio;
        if hot {
            self.net_hot += 1;
            self.net_cold = 0;
            if self.net_hot >= self.cfg.trigger_after {
                self.net_flagged = true;
            }
        } else {
            self.net_cold += 1;
            self.net_hot = 0;
            if self.net_cold >= self.cfg.clear_after {
                self.net_flagged = false;
            }
            self.net_ewma = Some(match self.net_ewma {
                Some(base) => self.cfg.ewma_alpha * comm_secs + (1.0 - self.cfg.ewma_alpha) * base,
                None => comm_secs,
            });
        }
    }

    /// Whether `machine` is currently flagged as a straggler.
    pub fn is_straggler(&self, machine: u32) -> bool {
        self.flagged[machine as usize]
    }

    /// All currently flagged machines, ascending.
    pub fn stragglers(&self) -> Vec<u32> {
        (0..self.flagged.len() as u32).filter(|&m| self.flagged[m as usize]).collect()
    }

    /// How long `machine` has been flagged, in rounds (0 when clear).
    pub fn flagged_rounds(&self, machine: u32) -> u32 {
        self.flagged_rounds[machine as usize]
    }

    /// Last observed elevation of `machine` over its own baseline
    /// (≈ the inverse of its compute factor; 1.0 = nominal). Mitigation
    /// uses this as the detector's *estimate* of how slow a straggler
    /// is — it never peeks at the fault plan.
    pub fn elevation(&self, machine: u32) -> f64 {
        self.elevation[machine as usize]
    }

    /// Whether the network is currently flagged as degraded.
    pub fn network_degraded(&self) -> bool {
        self.net_flagged
    }

    /// Detector-derived deadline for one round: `outlier_ratio` times
    /// the median per-machine baseline. A worker whose sampled duration
    /// exceeds this is a candidate for speculative re-execution. `None`
    /// until at least one baseline exists.
    pub fn deadline(&self) -> Option<f64> {
        let mut bases: Vec<f64> = self.ewma.iter().filter_map(|b| *b).collect();
        if bases.is_empty() {
            return None;
        }
        Some(self.cfg.outlier_ratio * median(&mut bases))
    }
}

/// Median of a mutable sample buffer (sorted in place); 1.0 for empty
/// input. Even-length samples average the two central values.
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Which mitigations a run applies. The CLI's `--mitigate` modes map
/// one-to-one: `none`, `steal`, `speculate`, `adaptive`, `all`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPolicy {
    /// DistDGL: idle workers steal a flagged straggler's remaining
    /// mini-batch work (stolen inputs pay extra remote-fetch bytes).
    pub work_stealing: bool,
    /// DistDGL: re-execute a step whose sampled duration exceeds the
    /// detector-derived deadline on the fastest worker; the earlier
    /// finisher wins.
    pub speculation: bool,
    /// DistGNN: lengthen the cd-r sync period while the network is
    /// degraded (shorten back on recovery) and migrate master replicas
    /// away from persistently slow machines.
    pub adaptive_sync: bool,
    /// Detector tuning shared by whatever the engine observes.
    pub detector: DetectorConfig,
}

impl MitigationPolicy {
    /// No mitigation (engines fall through to the plain fault path).
    pub fn none() -> Self {
        MitigationPolicy {
            work_stealing: false,
            speculation: false,
            adaptive_sync: false,
            detector: DetectorConfig::per_step(),
        }
    }

    /// Work stealing only.
    pub fn steal() -> Self {
        MitigationPolicy { work_stealing: true, ..MitigationPolicy::none() }
    }

    /// Speculative re-execution only.
    pub fn speculate() -> Self {
        MitigationPolicy { speculation: true, ..MitigationPolicy::none() }
    }

    /// Adaptive cd-r + master rebalancing only.
    pub fn adaptive() -> Self {
        MitigationPolicy { adaptive_sync: true, ..MitigationPolicy::none() }
    }

    /// Everything on.
    pub fn all() -> Self {
        MitigationPolicy {
            work_stealing: true,
            speculation: true,
            adaptive_sync: true,
            detector: DetectorConfig::per_step(),
        }
    }

    /// Parse a CLI mode name.
    pub fn parse(mode: &str) -> Option<Self> {
        match mode {
            "none" => Some(MitigationPolicy::none()),
            "steal" => Some(MitigationPolicy::steal()),
            "speculate" => Some(MitigationPolicy::speculate()),
            "adaptive" => Some(MitigationPolicy::adaptive()),
            "all" => Some(MitigationPolicy::all()),
            _ => None,
        }
    }

    /// The canonical mode name.
    pub fn name(&self) -> &'static str {
        match (self.work_stealing, self.speculation, self.adaptive_sync) {
            (false, false, false) => "none",
            (true, false, false) => "steal",
            (false, true, false) => "speculate",
            (false, false, true) => "adaptive",
            (true, true, true) => "all",
            _ => "custom",
        }
    }

    /// Whether every mitigation is off.
    pub fn is_none(&self) -> bool {
        !self.work_stealing && !self.speculation && !self.adaptive_sync
    }
}

/// What the mitigation layer did (and what it cost) during a run.
/// Complements [`crate::RecoveryReport`]: recovery pays for faults,
/// mitigation pays to *reduce* that bill.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MitigationReport {
    /// Steps in which work was stolen from a straggler.
    pub stolen_steps: u64,
    /// Extra remote-fetch bytes paid because stolen inputs were local
    /// to the straggler, not the helpers.
    pub stolen_bytes: u64,
    /// Steps speculatively re-executed.
    pub speculated_steps: u64,
    /// Speculative re-executions whose backup finished first.
    pub speculation_wins: u64,
    /// Extra bytes fetched by speculative backups.
    pub speculation_bytes: u64,
    /// Duplicated wall time burnt by speculative backups (runs on
    /// otherwise-idle workers, so it wastes energy, not the critical
    /// path).
    pub speculation_wasted_secs: f64,
    /// Times the cd-r sync period was changed by the adaptive policy.
    pub sync_period_changes: u32,
    /// Master replicas migrated away from persistent stragglers.
    pub masters_migrated: u64,
    /// Bytes moved by master migration.
    pub migration_bytes: u64,
    /// Wall time of master migration (one-off, charged when it runs).
    pub migration_seconds: f64,
    /// Simulated wall time saved vs the unmitigated fault path
    /// (non-negative: mitigations that would not help are not applied).
    pub time_saved_secs: f64,
}

impl MitigationReport {
    /// All extra traffic the mitigation layer caused.
    pub fn total_extra_bytes(&self) -> u64 {
        self.stolen_bytes + self.speculation_bytes + self.migration_bytes
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: &MitigationReport) {
        self.stolen_steps += other.stolen_steps;
        self.stolen_bytes += other.stolen_bytes;
        self.speculated_steps += other.speculated_steps;
        self.speculation_wins += other.speculation_wins;
        self.speculation_bytes += other.speculation_bytes;
        self.speculation_wasted_secs += other.speculation_wasted_secs;
        self.sync_period_changes += other.sync_period_changes;
        self.masters_migrated += other.masters_migrated;
        self.migration_bytes += other.migration_bytes;
        self.migration_seconds += other.migration_seconds;
        self.time_saved_secs += other.time_saved_secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig { trigger_after: 2, clear_after: 2, ..DetectorConfig::per_step() }
    }

    #[test]
    fn healthy_streams_never_fire() {
        // Persistent imbalance (machine 3 is always 2x slower) is NOT a
        // straggler: each machine is compared against its own baseline.
        let mut d = StragglerDetector::new(4, cfg());
        for _ in 0..50 {
            d.observe_compute(&[1.0, 1.1, 0.9, 2.0]);
            d.observe_network(0.5);
        }
        assert!(d.stragglers().is_empty());
        assert!(!d.network_degraded());
        for m in 0..4 {
            assert!((d.elevation(m) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sustained_outlier_flagged_and_cleared_with_hysteresis() {
        let mut d = StragglerDetector::new(4, cfg());
        for _ in 0..5 {
            d.observe_compute(&[1.0, 1.0, 1.0, 1.0]);
        }
        // One blip: hot but below trigger_after = 2.
        d.observe_compute(&[1.0, 1.0, 1.0, 3.0]);
        assert!(!d.is_straggler(3), "a single blip must not trigger");
        d.observe_compute(&[1.0, 1.0, 1.0, 1.0]);
        // Sustained slowdown: flags on the second hot round.
        d.observe_compute(&[1.0, 1.0, 1.0, 3.0]);
        assert!(!d.is_straggler(3));
        d.observe_compute(&[1.0, 1.0, 1.0, 3.0]);
        assert!(d.is_straggler(3));
        assert!(d.elevation(3) > 2.0, "elevation estimates the slowdown");
        assert_eq!(d.stragglers(), vec![3]);
        // One cool round does not clear; two do.
        d.observe_compute(&[1.0, 1.0, 1.0, 1.0]);
        assert!(d.is_straggler(3));
        d.observe_compute(&[1.0, 1.0, 1.0, 1.0]);
        assert!(!d.is_straggler(3));
        assert_eq!(d.flagged_rounds(3), 0);
    }

    #[test]
    fn baseline_frozen_while_hot() {
        // A straggler that stays slow forever must stay flagged: the
        // anomaly must not leak into its baseline.
        let mut d = StragglerDetector::new(2, cfg());
        for _ in 0..5 {
            d.observe_compute(&[1.0, 1.0]);
        }
        for _ in 0..100 {
            d.observe_compute(&[1.0, 4.0]);
        }
        assert!(d.is_straggler(1));
        assert!(d.flagged_rounds(1) > 90);
    }

    #[test]
    fn global_shift_is_not_an_outlier() {
        // Everyone slows down 3x (e.g. a bigger model): the median
        // normalisation keeps every machine cool.
        let mut d = StragglerDetector::new(4, cfg());
        for _ in 0..5 {
            d.observe_compute(&[1.0, 1.0, 1.0, 1.0]);
        }
        for _ in 0..10 {
            d.observe_compute(&[3.0, 3.0, 3.0, 3.0]);
        }
        assert!(d.stragglers().is_empty());
    }

    #[test]
    fn network_degradation_flagged_and_recovers() {
        let mut d = StragglerDetector::new(2, cfg());
        for _ in 0..5 {
            d.observe_network(1.0);
        }
        d.observe_network(2.0);
        assert!(!d.network_degraded(), "hysteresis holds the first hot round");
        d.observe_network(2.0);
        assert!(d.network_degraded());
        d.observe_network(1.0);
        d.observe_network(1.0);
        assert!(!d.network_degraded());
    }

    #[test]
    fn inactive_machines_do_not_skew_the_median()
    {
        // Two crashed workers report ~0: with them in the median the
        // healthy pair would look hot.
        let mut d = StragglerDetector::new(4, cfg());
        let active = [true, true, false, false];
        for _ in 0..20 {
            d.observe_compute_active(&[1.0, 1.0, 0.0, 0.0], &active);
        }
        assert!(d.stragglers().is_empty());
    }

    #[test]
    fn deterministic_same_observations_same_flags() {
        let mk = || {
            let mut d = StragglerDetector::new(3, cfg());
            let mut x = 0x9e37u64;
            for round in 0..200 {
                let mut times = [0.0f64; 3];
                for t in times.iter_mut() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *t = 1.0 + (x >> 40) as f64 / (1u64 << 24) as f64;
                }
                if (50..80).contains(&round) {
                    times[1] *= 3.0;
                }
                d.observe_compute(&times);
                d.observe_network(times[0]);
            }
            d
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.stragglers(), b.stragglers());
        assert_eq!(a.network_degraded(), b.network_degraded());
        for m in 0..3 {
            assert_eq!(a.elevation(m), b.elevation(m));
            assert_eq!(a.flagged_rounds(m), b.flagged_rounds(m));
        }
        assert_eq!(a.deadline(), b.deadline());
    }

    #[test]
    fn deadline_tracks_baselines() {
        let mut d = StragglerDetector::new(3, cfg());
        assert!(d.deadline().is_none(), "no baseline yet");
        for _ in 0..10 {
            d.observe_compute(&[2.0, 2.0, 2.0]);
        }
        let dl = d.deadline().unwrap();
        assert!((dl - 2.0 * d.config().outlier_ratio).abs() < 1e-9);
    }

    #[test]
    fn policy_parse_roundtrip() {
        for mode in ["none", "steal", "speculate", "adaptive", "all"] {
            let p = MitigationPolicy::parse(mode).unwrap();
            assert_eq!(p.name(), mode);
        }
        assert!(MitigationPolicy::parse("bogus").is_none());
        assert!(MitigationPolicy::none().is_none());
        assert!(!MitigationPolicy::all().is_none());
        assert!(MitigationPolicy::steal().work_stealing);
        assert!(MitigationPolicy::speculate().speculation);
        assert!(MitigationPolicy::adaptive().adaptive_sync);
    }

    #[test]
    fn mitigation_report_merges() {
        let mut a = MitigationReport { stolen_steps: 2, stolen_bytes: 100, ..Default::default() };
        let b = MitigationReport {
            stolen_steps: 1,
            speculation_bytes: 50,
            migration_bytes: 7,
            time_saved_secs: 1.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.stolen_steps, 3);
        assert_eq!(a.total_extra_bytes(), 157);
        assert!((a.time_saved_secs - 1.5).abs() < 1e-12);
    }
}
