//! Simulated crash-consistent checkpoint store.
//!
//! Engines previously priced checkpoints inline with a constant
//! bandwidth and re-derived "which snapshot is intact" arithmetic at
//! every crash. This module makes the store a first-class modeled
//! object: snapshots are written per epoch with a simulated write cost,
//! carry per-machine shard sizes, are pruned by a retention policy, and
//! are *validated* at restore time — every read is checksummed against
//! the fault plan's [`FaultPlan::corrupted_checkpoint`] schedule, a
//! corrupt shard costs its read and forces fallback to the next older
//! snapshot, and running out of snapshots means restoring from scratch.
//!
//! Crash consistency: a snapshot becomes visible atomically at the end
//! of the epoch it covers (write-then-commit); a crash *during* epoch
//! `e` can therefore only ever restore a snapshot covering some epoch
//! `< e`, never a torn one.

use crate::faults::FaultPlan;

/// Default simulated checkpoint storage bandwidth (local SSD, ~500
/// MB/s) — matches the constant the DistGNN engine has always used.
pub const DEFAULT_CHECKPOINT_BW: f64 = 5e8;

/// Checkpoint policy of an elastic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// Snapshot period in epochs (0 = checkpointing disabled).
    pub every: u32,
    /// Snapshots retained (older ones are pruned). Must be at least 1
    /// when checkpointing is enabled; a deeper window survives more
    /// consecutive corrupted snapshots.
    pub retain: u32,
    /// Simulated write bandwidth in bytes/second.
    pub write_bw: f64,
    /// Simulated read (restore) bandwidth in bytes/second.
    pub read_bw: f64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            every: 0,
            retain: 2,
            write_bw: DEFAULT_CHECKPOINT_BW,
            read_bw: DEFAULT_CHECKPOINT_BW,
        }
    }
}

impl CheckpointConfig {
    /// A periodic policy with the default bandwidths and retention.
    pub fn periodic(every: u32) -> Self {
        CheckpointConfig { every, ..CheckpointConfig::default() }
    }

    /// Whether a snapshot is due at the end of `epoch`.
    pub fn due(&self, epoch: u32) -> bool {
        self.every > 0 && (epoch + 1) % self.every == 0
    }
}

/// One committed snapshot: the epoch it covers and each machine's shard
/// size in bytes (0 for machines absent at write time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Epoch the snapshot covers (progress through its end).
    pub epoch: u32,
    /// Per-machine shard bytes, indexed by machine id.
    pub shard_bytes: Vec<u64>,
}

/// Outcome of one snapshot write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOutcome {
    /// Simulated barrier time: machines write shards in parallel, the
    /// largest shard gates the checkpoint.
    pub seconds: f64,
}

/// Outcome of one restore attempt for a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoreOutcome {
    /// Epoch of the newest snapshot whose checksum validated, or `None`
    /// when every retained snapshot was corrupt (restore from scratch).
    pub epoch: Option<u32>,
    /// Simulated read time, including reads wasted on corrupt shards.
    pub seconds: f64,
    /// Bytes read, including wasted reads.
    pub bytes_read: u64,
    /// Corrupt snapshots encountered (each detected by checksum, never
    /// silently restored).
    pub corrupted: u64,
}

/// The store: committed snapshots, newest last.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStore {
    config: CheckpointConfig,
    snapshots: Vec<SnapshotMeta>,
}

impl CheckpointStore {
    /// An empty store under `config`.
    ///
    /// # Panics
    ///
    /// Panics if checkpointing is enabled with zero retention or a
    /// non-positive bandwidth — a store that can never restore.
    pub fn new(config: CheckpointConfig) -> CheckpointStore {
        if config.every > 0 {
            assert!(config.retain >= 1, "enabled checkpoint store must retain >= 1 snapshot");
            assert!(
                config.write_bw > 0.0 && config.read_bw > 0.0,
                "checkpoint bandwidths must be positive"
            );
        }
        CheckpointStore { config, snapshots: Vec::new() }
    }

    /// The configured policy.
    pub fn config(&self) -> &CheckpointConfig {
        &self.config
    }

    /// Whether a snapshot is due at the end of `epoch`.
    pub fn due(&self, epoch: u32) -> bool {
        self.config.due(epoch)
    }

    /// Retained snapshots, oldest first.
    pub fn snapshots(&self) -> &[SnapshotMeta] {
        &self.snapshots
    }

    /// Commit a snapshot covering `epoch` and apply retention. Returns
    /// the simulated write barrier (largest shard / write bandwidth).
    pub fn write(&mut self, epoch: u32, shard_bytes: Vec<u64>) -> WriteOutcome {
        let largest = shard_bytes.iter().copied().max().unwrap_or(0);
        let seconds = largest as f64 / self.config.write_bw;
        self.snapshots.push(SnapshotMeta { epoch, shard_bytes });
        let retain = self.config.retain.max(1) as usize;
        if self.snapshots.len() > retain {
            let drop = self.snapshots.len() - retain;
            self.snapshots.drain(..drop);
        }
        WriteOutcome { seconds }
    }

    /// Restore machine `machine`'s shard from the newest valid
    /// snapshot. Walks newest → oldest: each candidate's shard is read
    /// (costing `bytes / read_bw`), its checksum verified against
    /// `plan`'s corruption schedule; a corrupt shard wastes its read
    /// and falls back one snapshot. Snapshots with an empty shard for
    /// this machine (it was absent at write time) are skipped for free.
    pub fn restore(&self, machine: u32, plan: &FaultPlan) -> RestoreOutcome {
        let mut out = RestoreOutcome { epoch: None, seconds: 0.0, bytes_read: 0, corrupted: 0 };
        for snap in self.snapshots.iter().rev() {
            let bytes = snap.shard_bytes.get(machine as usize).copied().unwrap_or(0);
            if bytes == 0 {
                continue;
            }
            out.bytes_read += bytes;
            out.seconds += bytes as f64 / self.config.read_bw;
            if plan.corrupted_checkpoint(machine, snap.epoch) {
                out.corrupted += 1;
            } else {
                out.epoch = Some(snap.epoch);
                break;
            }
        }
        out
    }

    /// Epoch of the newest snapshot that would validate for `machine`,
    /// without charging any read cost.
    pub fn newest_valid_epoch(&self, machine: u32, plan: &FaultPlan) -> Option<u32> {
        self.snapshots
            .iter()
            .rev()
            .filter(|s| s.shard_bytes.get(machine as usize).copied().unwrap_or(0) > 0)
            .find(|s| !plan.corrupted_checkpoint(machine, s.epoch))
            .map(|s| s.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEvent;

    fn corrupting_plan(machine: u32, epochs: &[u32]) -> FaultPlan {
        FaultPlan {
            events: epochs
                .iter()
                .map(|&epoch| FaultEvent::CheckpointCorruption { machine, epoch })
                .collect(),
            machines: 4,
            epochs: 100,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn due_follows_period() {
        let cfg = CheckpointConfig::periodic(3);
        let due: Vec<u32> = (0..10).filter(|&e| cfg.due(e)).collect();
        assert_eq!(due, vec![2, 5, 8]);
        assert!(!CheckpointConfig::default().due(0), "every = 0 disables checkpointing");
    }

    #[test]
    fn write_prices_largest_shard_and_prunes() {
        let mut store = CheckpointStore::new(CheckpointConfig {
            every: 1,
            retain: 2,
            write_bw: 100.0,
            read_bw: 100.0,
        });
        let w = store.write(0, vec![100, 300, 200]);
        assert_eq!(w.seconds, 3.0, "largest shard gates the barrier");
        store.write(1, vec![10, 10, 10]);
        store.write(2, vec![20, 20, 20]);
        let epochs: Vec<u32> = store.snapshots().iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![1, 2], "retention keeps the newest two");
    }

    #[test]
    fn restore_prefers_newest_valid() {
        let mut store = CheckpointStore::new(CheckpointConfig {
            every: 1,
            retain: 3,
            write_bw: 100.0,
            read_bw: 100.0,
        });
        for e in 0..3 {
            store.write(e, vec![100, 100]);
        }
        let clean = store.restore(0, &FaultPlan::empty());
        assert_eq!(clean.epoch, Some(2));
        assert_eq!(clean.bytes_read, 100);
        assert_eq!(clean.seconds, 1.0);
        assert_eq!(clean.corrupted, 0);
    }

    #[test]
    fn corruption_walks_back_and_charges_wasted_reads() {
        let mut store = CheckpointStore::new(CheckpointConfig {
            every: 1,
            retain: 3,
            write_bw: 100.0,
            read_bw: 100.0,
        });
        for e in 0..3 {
            store.write(e, vec![100, 100]);
        }
        // Newest snapshot (epoch 2) corrupt for machine 0 only.
        let plan = corrupting_plan(0, &[2]);
        let out = store.restore(0, &plan);
        assert_eq!(out.epoch, Some(1), "fell back one snapshot");
        assert_eq!(out.corrupted, 1);
        assert_eq!(out.bytes_read, 200, "wasted read charged");
        assert_eq!(out.seconds, 2.0);
        // Machine 1 is unaffected by machine 0's corruption.
        let other = store.restore(1, &plan);
        assert_eq!(other.epoch, Some(2));
        assert_eq!(other.corrupted, 0);
    }

    #[test]
    fn all_corrupt_restores_from_scratch() {
        let mut store = CheckpointStore::new(CheckpointConfig::periodic(1));
        store.write(0, vec![1000]);
        store.write(1, vec![1000]);
        let plan = corrupting_plan(0, &[0, 1]);
        let out = store.restore(0, &plan);
        assert_eq!(out.epoch, None, "no intact snapshot survives");
        assert_eq!(out.corrupted, 2);
        assert_eq!(out.bytes_read, 2000, "every attempt still paid its read");
        assert_eq!(store.newest_valid_epoch(0, &plan), None);
        assert_eq!(store.newest_valid_epoch(0, &FaultPlan::empty()), Some(1));
    }

    #[test]
    fn absent_machines_have_free_empty_shards() {
        let mut store = CheckpointStore::new(CheckpointConfig::periodic(1));
        // Machine 1 was absent when epoch 1's snapshot was written.
        store.write(0, vec![500, 500]);
        store.write(1, vec![500, 0]);
        let out = store.restore(1, &FaultPlan::empty());
        assert_eq!(out.epoch, Some(0), "empty shard skipped without cost");
        assert_eq!(out.bytes_read, 500);
    }

    #[test]
    fn empty_store_restores_nothing() {
        let store = CheckpointStore::new(CheckpointConfig::default());
        let out = store.restore(0, &FaultPlan::empty());
        assert_eq!(out, RestoreOutcome { epoch: None, seconds: 0.0, bytes_read: 0, corrupted: 0 });
    }
}
