//! Per-machine work counters.
//!
//! Engines increment these while executing; reports read them back.

/// `max / mean` of a count vector (1.0 = perfectly balanced); 0.0 for an
/// all-zero or empty vector. The balance metric used throughout the
/// study (vertex balance, memory balance, input-vertex balance).
pub fn max_mean_ratio(counts: &[u64]) -> f64 {
    let sum: u64 = counts.iter().sum();
    if sum == 0 || counts.is_empty() {
        return 0.0;
    }
    let mean = sum as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

/// Work performed by one simulated machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes sent over the network.
    pub bytes_sent: u64,
    /// Bytes received over the network.
    pub bytes_received: u64,
    /// Network messages initiated.
    pub messages: u64,
    /// Peak resident bytes observed.
    pub peak_memory_bytes: u64,
}

impl MachineCounters {
    /// Record a send of `bytes` in one message.
    pub fn send(&mut self, bytes: u64) {
        self.bytes_sent += bytes;
        self.messages += 1;
    }

    /// Record a receive of `bytes`.
    pub fn receive(&mut self, bytes: u64) {
        self.bytes_received += bytes;
    }

    /// Raise the peak memory watermark.
    pub fn observe_memory(&mut self, bytes: u64) {
        self.peak_memory_bytes = self.peak_memory_bytes.max(bytes);
    }

    /// Total network volume (sent + received).
    pub fn network_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Merge another counter set into this one (peak memory takes max).
    pub fn merge(&mut self, other: &MachineCounters) {
        self.flops += other.flops;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages += other.messages;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
    }
}

/// Counters for every machine of a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCounters {
    machines: Vec<MachineCounters>,
}

impl ClusterCounters {
    /// Zeroed counters for `machines` machines.
    pub fn new(machines: u32) -> Self {
        ClusterCounters { machines: vec![MachineCounters::default(); machines as usize] }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Counters of machine `i`.
    pub fn machine(&self, i: u32) -> &MachineCounters {
        &self.machines[i as usize]
    }

    /// Mutable counters of machine `i`.
    pub fn machine_mut(&mut self, i: u32) -> &mut MachineCounters {
        &mut self.machines[i as usize]
    }

    /// Iterator over all machines.
    pub fn iter(&self) -> impl Iterator<Item = &MachineCounters> {
        self.machines.iter()
    }

    /// Total network bytes across the cluster.
    pub fn total_network_bytes(&self) -> u64 {
        self.machines.iter().map(MachineCounters::network_bytes).sum()
    }

    /// Total FLOPs across the cluster.
    pub fn total_flops(&self) -> u64 {
        self.machines.iter().map(|m| m.flops).sum()
    }

    /// Sum of per-machine peak memory (the cluster-wide footprint the
    /// paper reports).
    pub fn total_peak_memory(&self) -> u64 {
        self.machines.iter().map(|m| m.peak_memory_bytes).sum()
    }

    /// Peak memory of the most loaded machine.
    pub fn max_peak_memory(&self) -> u64 {
        self.machines.iter().map(|m| m.peak_memory_bytes).max().unwrap_or(0)
    }

    /// Memory-utilisation balance `max / mean` (1.0 = perfect); the
    /// paper's Figure 5 metric.
    pub fn memory_balance(&self) -> f64 {
        let peaks: Vec<u64> = self.machines.iter().map(|m| m.peak_memory_bytes).collect();
        max_mean_ratio(&peaks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_receive_totals() {
        let mut c = ClusterCounters::new(2);
        c.machine_mut(0).send(100);
        c.machine_mut(1).receive(100);
        assert_eq!(c.total_network_bytes(), 200);
        assert_eq!(c.machine(0).messages, 1);
    }

    #[test]
    fn peak_memory_is_watermark() {
        let mut m = MachineCounters::default();
        m.observe_memory(100);
        m.observe_memory(50);
        assert_eq!(m.peak_memory_bytes, 100);
    }

    #[test]
    fn memory_balance_perfect() {
        let mut c = ClusterCounters::new(4);
        for i in 0..4 {
            c.machine_mut(i).observe_memory(1000);
        }
        assert!((c.memory_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_balance_skewed() {
        let mut c = ClusterCounters::new(2);
        c.machine_mut(0).observe_memory(3000);
        c.machine_mut(1).observe_memory(1000);
        // max 3000 / mean 2000 = 1.5.
        assert!((c.memory_balance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = MachineCounters { flops: 1, bytes_sent: 2, ..Default::default() };
        a.observe_memory(10);
        let mut b = MachineCounters { flops: 3, bytes_received: 4, ..Default::default() };
        b.observe_memory(5);
        a.merge(&b);
        assert_eq!(a.flops, 4);
        assert_eq!(a.network_bytes(), 6);
        assert_eq!(a.peak_memory_bytes, 10);
    }

    #[test]
    fn max_mean_ratio_basics() {
        assert_eq!(max_mean_ratio(&[]), 0.0);
        assert_eq!(max_mean_ratio(&[0, 0]), 0.0);
        assert_eq!(max_mean_ratio(&[5, 5]), 1.0);
        assert_eq!(max_mean_ratio(&[3, 1]), 1.5);
    }

    #[test]
    fn empty_cluster_balance_zero() {
        let c = ClusterCounters::new(0);
        assert_eq!(c.memory_balance(), 0.0);
        assert!(c.is_empty());
    }
}
