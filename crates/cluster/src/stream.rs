//! Streaming dynamic-graph run leg: spec and reports.
//!
//! A [`StreamLeg`] attaches a `gp_graph::stream` mutation schedule to a
//! [`crate::RunSpec`]: the engine replays the stream batch by batch,
//! keeps its partition current with `gp_partition::incremental`, and
//! trains one epoch per batch on the live snapshot. The
//! [`RepartitionPolicy`] decides when drift has accumulated enough to
//! pay for a full re-partition, whose cost is *simulated* seconds from
//! [`gp_partition::incremental::modeled_partition_seconds`] — never
//! wall clock, so stream artifacts stay bit-identical across thread
//! counts.
//!
//! Engines adopt a policy-triggered repartition only when it is not
//! worse than the incrementally maintained partition on **both** the
//! cut-quality metric and the probed epoch time (probed with a disabled
//! trace sink, so probing is unobservable). Two satellite invariants
//! hold by construction: quality right after an adopted repartition
//! never exceeds quality just before it, and `Threshold` policies are
//! never slower than `Never` on per-epoch training time at equal
//! stream seeds.
//!
//! Quality decay flows out of the run twice: structured, as
//! [`StreamBatchReport`] rows; and through the trace→metrics→diagnose
//! pipeline as the `stream_*` counter families of
//! [`crate::trace::counter_names`], exposed by the metrics registry as
//! `gnnpart_stream_*`.

use gp_graph::StreamSpec;
use gp_partition::RepartitionPolicy;

/// The streaming leg of a [`crate::RunSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamLeg {
    /// Seeded mutation schedule replayed batch by batch.
    pub spec: StreamSpec,
    /// When to re-run the full partitioner on the live snapshot.
    pub policy: RepartitionPolicy,
    /// Partitioner driven incrementally (and re-run on repartitions).
    /// `None` picks the engine's default streaming partitioner (HDRF
    /// for the vertex-cut engine, LDG for the edge-cut engine).
    pub partitioner: Option<String>,
}

/// Per-batch row of a streaming run: the live snapshot's size, the
/// partition-quality metrics after absorbing the batch (and after any
/// adopted repartition), and the simulated costs.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBatchReport {
    /// Batch index (0-based); also the training epoch number.
    pub batch: u32,
    /// Vertices in the live snapshot (monotone: ids are never reused).
    pub num_vertices: u32,
    /// Live edges in the snapshot.
    pub num_edges: u64,
    /// Mutations applied this batch (inserts + deletes + arrivals).
    pub mutations: u32,
    /// Replication factor of the current partition (vertex-cut runs;
    /// 0 on edge-cut runs).
    pub replication_factor: f64,
    /// Edge-cut ratio of the current partition (edge-cut runs; 0 on
    /// vertex-cut runs).
    pub edge_cut: f64,
    /// Balance of the current partition: edge balance (vertex-cut) or
    /// vertex balance (edge-cut), `max / mean`.
    pub balance: f64,
    /// Training-vertex balance over the surviving base-graph training
    /// vertices (edge-cut runs; 0 on vertex-cut runs — arrivals are
    /// never added to the split).
    pub train_balance: f64,
    /// Whether a policy-triggered repartition fired *and* was adopted
    /// this batch.
    pub repartitioned: bool,
    /// Modeled cost of the adopted repartition in simulated seconds
    /// (0 when `repartitioned` is false).
    pub partition_seconds: f64,
    /// Simulated training time of the epoch run on this snapshot.
    pub epoch_seconds: f64,
}

/// Report of one streaming run: one [`StreamBatchReport`] per batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamRunReport {
    /// Partitioner name the run streamed with.
    pub partitioner: String,
    /// Stable label of the repartition policy.
    pub policy: String,
    /// Per-batch rows, in batch order.
    pub batches: Vec<StreamBatchReport>,
}

impl StreamRunReport {
    /// Number of adopted repartitions over the run.
    pub fn repartitions(&self) -> u32 {
        self.batches.iter().filter(|b| b.repartitioned).count() as u32
    }

    /// Total modeled repartitioning cost in simulated seconds.
    pub fn total_partition_seconds(&self) -> f64 {
        self.batches.iter().map(|b| b.partition_seconds).sum()
    }

    /// Total simulated training time over all epochs.
    pub fn total_epoch_seconds(&self) -> f64 {
        self.batches.iter().map(|b| b.epoch_seconds).sum()
    }

    /// Quality metric of the final batch (replication factor on
    /// vertex-cut runs, edge-cut ratio on edge-cut runs; 0 on an empty
    /// report).
    pub fn final_quality(&self) -> f64 {
        self.batches.last().map_or(0.0, |b| b.replication_factor.max(b.edge_cut))
    }

    /// Worst (maximum) quality metric over the run.
    pub fn peak_quality(&self) -> f64 {
        self.batches
            .iter()
            .map(|b| b.replication_factor.max(b.edge_cut))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(batch: u32, rf: f64, repartitioned: bool) -> StreamBatchReport {
        StreamBatchReport {
            batch,
            num_vertices: 10,
            num_edges: 20,
            mutations: 5,
            replication_factor: rf,
            edge_cut: 0.0,
            balance: 1.1,
            train_balance: 0.0,
            repartitioned,
            partition_seconds: if repartitioned { 0.5 } else { 0.0 },
            epoch_seconds: 2.0,
        }
    }

    #[test]
    fn report_aggregates() {
        let report = StreamRunReport {
            partitioner: "HDRF".into(),
            policy: "periodic(2)".into(),
            batches: vec![row(0, 2.0, false), row(1, 2.5, true), row(2, 1.8, false)],
        };
        assert_eq!(report.repartitions(), 1);
        assert_eq!(report.total_partition_seconds(), 0.5);
        assert_eq!(report.total_epoch_seconds(), 6.0);
        assert_eq!(report.final_quality(), 1.8);
        assert_eq!(report.peak_quality(), 2.5);
    }

    #[test]
    fn empty_report_is_sane() {
        let report = StreamRunReport::default();
        assert_eq!(report.repartitions(), 0);
        assert_eq!(report.final_quality(), 0.0);
        assert_eq!(report.peak_quality(), 0.0);
    }
}
