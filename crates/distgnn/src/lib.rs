//! # gp-distgnn — full-batch, edge-partitioned GNN training engine
//!
//! Analogue of **DistGNN** (Md et al., SC 2021): the input graph is
//! *edge-partitioned* across the machines; vertices cut by the partition
//! are replicated, and replicas synchronise their aggregated state every
//! layer, every epoch. Training is **full-batch**: one model update per
//! epoch over the whole graph.
//!
//! The engine has two modes:
//!
//! * [`train::train_full_batch`] — *real* training: executes the actual
//!   GraphSAGE forward/backward over the whole graph. Data-parallel
//!   full-batch training is mathematically identical to centralised
//!   training (gradients are all-reduced every epoch), so the math runs
//!   once globally while FLOPs, bytes and memory are attributed to
//!   machines exactly as the distributed execution would incur them.
//! * [`DistGnnEngine::run`] — pure cost model: counts the same
//!   quantities analytically without touching floats, fast enough to
//!   sweep the paper's full hyper-parameter grid at `hidden = 512`.
//!
//! [`DistGnnEngine::run`] consumes a declarative
//! `gp_cluster::RunSpec` and dispatches on its resolved scenario: a
//! `.faults(plan)` leg runs the cost model under a seeded
//! `gp_cluster::FaultPlan` — periodic checkpointing, replica-based
//! crash recovery (recovery traffic ∝ replication factor), transient
//! stragglers and lossy links; an empty plan reproduces the healthy
//! baseline bit-for-bit. A `.mitigate(policy)` leg layers the
//! mitigation subsystem on top: an online detector
//! (`gp_cluster::detect`) drives adaptive cd-r (longer sync period
//! during network brownouts) and master rebalancing away from
//! persistently slow machines, never making an epoch worse than the
//! unmitigated fault path. `.elastic(..)` and `.net(..)` select the
//! churn-tolerant and message-level-network run paths.
//!
//! Work attribution per machine `m`, per layer:
//!
//! * aggregation FLOPs ∝ edges assigned to `m`,
//! * dense-layer FLOPs ∝ vertices *mastered* by `m`,
//! * replica-sync traffic: a vertex with `r` replicas moves
//!   `2 (r − 1) · state_bytes` per layer (partial-aggregate gather to the
//!   master + updated-state scatter back) — which is why the replication
//!   factor governs network volume,
//! * memory ∝ vertices *covered* by `m` (features + one intermediate
//!   state per layer, kept for the backward pass) — which is why the
//!   replication factor governs the memory footprint too.

pub mod engine;
pub mod error;
pub mod memory;
pub mod sync;
pub mod train;
pub mod view;

pub use engine::{
    DistGnnConfig, DistGnnEngine, DistGnnEngineBuilder, DistGnnMitigation, DistGnnRunReport,
    EpochPhases, EpochReport, FaultyEpochReport, MitigatedEpochReport,
};
pub use error::DistGnnError;
pub use memory::MemoryBreakdown;
pub use train::TrainStats;
pub use view::PartitionView;
