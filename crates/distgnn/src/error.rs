//! Error type for the DistGNN engine.

use std::fmt;

/// Errors produced while building or running the engine.
#[derive(Debug)]
pub enum DistGnnError {
    /// The partition's `k` does not match the cluster size.
    ClusterMismatch {
        /// Partitions in the edge partition.
        partitions: u32,
        /// Machines in the cluster spec.
        machines: u32,
    },
    /// The model configuration is unsupported (DistGNN supports
    /// GraphSAGE only, matching the paper).
    UnsupportedModel(String),
    /// Invalid configuration value.
    InvalidConfig(String),
    /// A machine crashed and its state cannot be recovered (no
    /// surviving replicas and checkpointing disabled).
    WorkerFailed {
        /// The crashed machine.
        machine: u32,
        /// Epoch of the crash.
        epoch: u32,
    },
    /// Cumulative recovery overhead exceeded the plan's budget.
    RecoveryBudgetExceeded {
        /// The configured budget in simulated seconds.
        budget_secs: f64,
        /// The overhead actually accumulated.
        needed_secs: f64,
    },
}

impl fmt::Display for DistGnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistGnnError::ClusterMismatch { partitions, machines } => write!(
                f,
                "partition has {partitions} parts but cluster has {machines} machines"
            ),
            DistGnnError::UnsupportedModel(m) => {
                write!(f, "unsupported model for DistGNN: {m} (only GraphSage)")
            }
            DistGnnError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            DistGnnError::WorkerFailed { machine, epoch } => {
                write!(f, "machine {machine} failed at epoch {epoch} and cannot be recovered")
            }
            DistGnnError::RecoveryBudgetExceeded { budget_secs, needed_secs } => write!(
                f,
                "recovery overhead {needed_secs:.3}s exceeds budget {budget_secs:.3}s"
            ),
        }
    }
}

impl std::error::Error for DistGnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = DistGnnError::ClusterMismatch { partitions: 4, machines: 8 };
        assert!(e.to_string().contains("4"));
        assert!(DistGnnError::UnsupportedModel("GAT".into()).to_string().contains("GAT"));
    }
}
