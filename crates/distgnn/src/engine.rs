//! The DistGNN cost-model engine.

use gp_cluster::{
    compute_time, expected_retries, retry_backoff_secs, transfer_time, ClusterCounters,
    ClusterSpec, FaultPlan, NetworkSpec, RecoveryReport,
};
use gp_graph::Graph;
use gp_partition::EdgePartition;
use gp_tensor::flops::{layer_train_flops, model_param_count, BlockShape};
use gp_tensor::{ModelConfig, ModelKind};

use crate::error::DistGnnError;
use crate::memory::{machine_memory, MemoryBreakdown};
use crate::sync::{layer_sync_traffic_dims, record_sync};
use crate::view::{assign_masters, build_views, PartitionView};

/// Configuration of a full-batch training run.
#[derive(Debug, Clone, Copy)]
pub struct DistGnnConfig {
    /// Model hyper-parameters (must be GraphSAGE — the only architecture
    /// DistGNN supports, matching the paper).
    pub model: ModelConfig,
    /// Simulated cluster.
    pub cluster: ClusterSpec,
    /// Replica-sync period `r` — DistGNN's *cd-r* communication
    /// avoidance (Md et al., SC 2021): partial aggregates of cut
    /// vertices are synchronised only every `r`-th epoch, trading
    /// staleness for an `r`-fold cut in sync traffic. The study paper
    /// runs with `r = 1` (sync every epoch); other values are an
    /// **extension** for the `ablations -- cdr` study. Convergence
    /// effects of staleness are outside the cost model.
    pub sync_period: u32,
    /// Checkpoint period in epochs (0 = checkpointing disabled, the
    /// paper's healthy-cluster setting). A checkpoint writes the model
    /// (parameters + optimiser moments) and every machine's replica
    /// state to local storage; its cost only appears in
    /// [`DistGnnEngine::simulate_epoch_with_faults`], so healthy runs
    /// are unaffected.
    pub checkpoint_every: u32,
}

impl DistGnnConfig {
    /// Paper-default configuration: sync every epoch (cd-0 / 0c), no
    /// checkpointing.
    pub fn paper(model: ModelConfig, cluster: ClusterSpec) -> Self {
        DistGnnConfig { model, cluster, sync_period: 1, checkpoint_every: 0 }
    }
}

/// Sustained local-storage bandwidth for checkpoint writes and restores
/// (bytes/second) — a commodity SATA SSD, matching the paper's testbed
/// era.
const CHECKPOINT_BW: f64 = 5e8;

/// Resident training state per covered vertex: input features plus one
/// intermediate representation per layer, in bytes. This is what replica
/// recovery fetches over the network and what checkpoints persist.
fn per_vertex_state_bytes(model: &ModelConfig) -> u64 {
    let dims: u64 = (0..model.num_layers).map(|i| model.layer_dims(i).1 as u64).sum();
    (model.feature_dim as u64 + dims) * 4
}

/// Per-epoch fault environment resolved from a [`FaultPlan`].
struct EpochFaultCtx {
    network: NetworkSpec,
    compute_factor: Vec<f64>,
    min_compute_factor: f64,
    loss_rate: f64,
}

/// Simulated wall-time of one epoch, split into the phases the paper
/// measures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochPhases {
    /// Forward computation (straggler-gated, per layer).
    pub forward: f64,
    /// Backward computation.
    pub backward: f64,
    /// Replica synchronisation + gradient all-reduce.
    pub sync: f64,
    /// Optimiser step.
    pub optimizer: f64,
}

impl EpochPhases {
    /// Total epoch time.
    pub fn total(&self) -> f64 {
        self.forward + self.backward + self.sync + self.optimizer
    }
}

/// Full result of one simulated epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Phase breakdown (simulated seconds).
    pub phases: EpochPhases,
    /// Work counters per machine.
    pub counters: ClusterCounters,
    /// Per-machine memory breakdown.
    pub memory: Vec<MemoryBreakdown>,
    /// Machines whose footprint exceeds the installed memory.
    pub oom_machines: Vec<u32>,
}

impl EpochReport {
    /// Simulated seconds per epoch.
    pub fn epoch_time(&self) -> f64 {
        self.phases.total()
    }

    /// Cluster-wide peak memory (sum over machines).
    pub fn total_memory(&self) -> u64 {
        self.memory.iter().map(MemoryBreakdown::total).sum()
    }

    /// Cluster-wide *vertex-state* memory: the footprint minus the
    /// per-machine model/optimiser state. At the paper's scale the model
    /// is < 0.5% of the footprint; on the 1/200-scale analogues it can
    /// reach 30%, so state-only numbers are the comparable quantity for
    /// the paper's Figures 9 and 10.
    pub fn total_state_memory(&self) -> u64 {
        self.memory.iter().map(|m| m.total() - m.model_bytes).sum()
    }

    /// Memory-utilisation balance `max/mean` (paper Figure 5).
    pub fn memory_balance(&self) -> f64 {
        if self.memory.is_empty() {
            return 0.0;
        }
        let total = self.total_memory();
        let mean = total as f64 / self.memory.len() as f64;
        let max = self.memory.iter().map(MemoryBreakdown::total).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Whether any machine ran out of memory.
    pub fn any_oom(&self) -> bool {
        !self.oom_machines.is_empty()
    }
}

/// Result of one epoch simulated under a [`FaultPlan`]: the epoch
/// report (fault-adjusted phase times and counters, including recovery
/// traffic) plus the recovery accounting.
#[derive(Debug, Clone)]
pub struct FaultyEpochReport {
    /// The epoch report, with fault-adjusted times and counters.
    pub report: EpochReport,
    /// What the faults cost beyond the healthy baseline.
    pub recovery: RecoveryReport,
    /// Machines that crashed during this epoch (each is restored onto a
    /// replacement before the next epoch — checkpoint/restart
    /// semantics, in contrast to DistDGL's graceful degradation).
    pub crashed_machines: Vec<u32>,
}

/// Full-batch edge-partitioned training engine.
pub struct DistGnnEngine<'a> {
    graph: &'a Graph,
    partition: &'a EdgePartition,
    views: Vec<PartitionView>,
    masters: Vec<u32>,
    config: DistGnnConfig,
}

impl<'a> DistGnnEngine<'a> {
    /// Build an engine for a partitioned graph.
    ///
    /// # Errors
    ///
    /// Fails if the partition size and cluster size disagree, or the
    /// model is not GraphSAGE.
    pub fn new(
        graph: &'a Graph,
        partition: &'a EdgePartition,
        config: DistGnnConfig,
    ) -> Result<Self, DistGnnError> {
        if partition.k() != config.cluster.machines {
            return Err(DistGnnError::ClusterMismatch {
                partitions: partition.k(),
                machines: config.cluster.machines,
            });
        }
        if config.model.kind != ModelKind::Sage {
            return Err(DistGnnError::UnsupportedModel(config.model.kind.name().into()));
        }
        if config.model.num_layers == 0 {
            return Err(DistGnnError::InvalidConfig("num_layers must be > 0".into()));
        }
        if config.sync_period == 0 {
            return Err(DistGnnError::InvalidConfig("sync_period must be > 0".into()));
        }
        let masters = assign_masters(partition);
        let views = build_views(graph, partition, &masters);
        Ok(DistGnnEngine { graph, partition, views, masters, config })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The edge partition.
    pub fn partition(&self) -> &EdgePartition {
        self.partition
    }

    /// The configuration.
    pub fn config(&self) -> &DistGnnConfig {
        &self.config
    }

    /// Per-machine views.
    pub fn views(&self) -> &[PartitionView] {
        &self.views
    }

    /// Run the cost model for one epoch with the configured model.
    pub fn simulate_epoch(&self) -> EpochReport {
        self.simulate_epoch_for(&self.config.model)
    }

    /// Run the cost model for one epoch with an alternative model
    /// configuration (same kind); grid sweeps reuse the engine's views
    /// across the 27 hyper-parameter combinations this way.
    ///
    /// # Panics
    ///
    /// Panics if `model.kind` differs from the configured kind.
    pub fn simulate_epoch_for(&self, model: &ModelConfig) -> EpochReport {
        let mut unused = RecoveryReport::default();
        self.simulate_epoch_inner(model, None, &mut unused)
    }

    /// Shared epoch simulation. With `faults: None` this is the healthy
    /// baseline and performs *exactly* the same arithmetic as before the
    /// fault subsystem existed (every fault adjustment is behind an
    /// `if let Some(..)`), so healthy results stay bit-identical.
    fn simulate_epoch_inner(
        &self,
        model: &ModelConfig,
        faults: Option<&EpochFaultCtx>,
        recovery: &mut RecoveryReport,
    ) -> EpochReport {
        assert_eq!(model.kind, self.config.model.kind, "model kind mismatch");
        let cluster = &self.config.cluster;
        let network = faults.map_or(cluster.network, |f| f.network);
        let k = cluster.machines;
        let mut counters = ClusterCounters::new(k);
        let mut phases = EpochPhases::default();

        for layer in 0..model.num_layers {
            let (in_dim, out_dim) = model.layer_dims(layer);
            // --- Compute (forward + backward), straggler-gated. ---
            let mut max_fwd = 0.0f64;
            let mut max_bwd = 0.0f64;
            for view in &self.views {
                let shape = BlockShape {
                    num_dst: view.num_masters(),
                    num_src: view.num_local_vertices(),
                    num_edges: view.num_local_edges(),
                };
                let train_flops =
                    layer_train_flops(model.kind, shape, in_dim as u64, out_dim as u64);
                let fwd_flops = train_flops / 3;
                let bwd_flops = train_flops - fwd_flops;
                counters.machine_mut(view.machine).flops += train_flops;
                let mut fwd = compute_time(&cluster.machine, fwd_flops);
                let mut bwd = compute_time(&cluster.machine, bwd_flops);
                if let Some(f) = faults {
                    let cf = f.compute_factor[view.machine as usize];
                    fwd /= cf;
                    bwd /= cf;
                }
                max_fwd = max_fwd.max(fwd);
                max_bwd = max_bwd.max(bwd);
            }
            phases.forward += max_fwd;
            phases.backward += max_bwd;

            // --- Replica sync: forward gathers partial aggregates
            // (in_dim) and scatters updated states (out_dim); the
            // backward pass mirrors it with gradients. Under cd-r the
            // sync runs every r-th epoch, so the per-epoch amortised
            // cost is divided by the period. ---
            for (gather, scatter) in [(in_dim, out_dim), (out_dim, in_dim)] {
                let mut traffic = layer_sync_traffic_dims(
                    self.partition,
                    &self.masters,
                    gather as u64,
                    scatter as u64,
                );
                if self.config.sync_period > 1 {
                    let p = u64::from(self.config.sync_period);
                    for v in traffic
                        .bytes_sent
                        .iter_mut()
                        .chain(traffic.bytes_received.iter_mut())
                        .chain(traffic.messages.iter_mut())
                    {
                        *v /= p;
                    }
                }
                record_sync(&mut counters, &traffic);
                let mut max_sync = 0.0f64;
                let mut max_sync_lossless = 0.0f64;
                for m in 0..k as usize {
                    let bytes = traffic.bytes_sent[m] + traffic.bytes_received[m];
                    let msgs = traffic.messages[m];
                    let mut t = transfer_time(&network, bytes, msgs);
                    if let Some(f) = faults {
                        max_sync_lossless = max_sync_lossless.max(t);
                        if f.loss_rate > 0.0 && msgs > 0 {
                            let retries = expected_retries(msgs, f.loss_rate);
                            let retry_bytes = bytes / msgs * retries;
                            t += transfer_time(&network, retry_bytes, retries)
                                + retry_backoff_secs(retries, network.latency_sec);
                            recovery.retries += retries;
                            recovery.retry_bytes += retry_bytes;
                        }
                    }
                    max_sync = max_sync.max(t);
                }
                phases.sync += max_sync;
                // Wall-time cost of message loss = how much the
                // straggler-gated sync grew over the lossless exchange
                // (on the same, possibly degraded, network).
                if faults.is_some() {
                    recovery.retry_seconds += max_sync - max_sync_lossless;
                }
            }
        }

        // --- Gradient all-reduce + optimiser step. The all-reduce is
        // overlapped with the tail of the backward pass (standard
        // bucketed gradient synchronisation), so only the excess over
        // the backward compute shows up as synchronisation time. ---
        let param_bytes = model_param_count(model) * 4;
        let allreduce = gp_cluster::time::allreduce_time(&network, param_bytes, k);
        phases.sync += (allreduce - phases.backward).max(0.0);
        for m in 0..k {
            counters.machine_mut(m).send(param_bytes);
            counters.machine_mut(m).receive(param_bytes);
        }
        // Adam: ~10 FLOPs per parameter. The step is synchronous, so the
        // slowest (possibly degraded) machine gates it.
        let opt_flops = model_param_count(model) * 10;
        phases.optimizer = compute_time(&cluster.machine, opt_flops);
        if let Some(f) = faults {
            phases.optimizer /= f.min_compute_factor;
        }
        for m in 0..k {
            counters.machine_mut(m).flops += opt_flops;
        }

        // --- Memory. ---
        let memory: Vec<MemoryBreakdown> =
            self.views.iter().map(|v| machine_memory(v, model)).collect();
        let mut oom_machines = Vec::new();
        for (view, mem) in self.views.iter().zip(memory.iter()) {
            counters.machine_mut(view.machine).observe_memory(mem.total());
            if mem.total() > cluster.machine.memory_bytes {
                oom_machines.push(view.machine);
            }
        }

        EpochReport { phases, counters, memory, oom_machines }
    }

    /// Simulated wall time of one checkpoint: every machine persists the
    /// model (parameters + optimiser moments) and its replica state to
    /// local storage in parallel; the barrier waits for the largest
    /// replica set.
    pub fn checkpoint_seconds(&self, model: &ModelConfig) -> f64 {
        let model_bytes = model_param_count(model) * 4 * 3;
        let state = per_vertex_state_bytes(model);
        self.views
            .iter()
            .map(|v| (model_bytes + v.num_local_vertices() * state) as f64 / CHECKPOINT_BW)
            .fold(0.0, f64::max)
    }

    /// Run one epoch under a fault plan.
    ///
    /// * **Empty plan** — returns exactly [`DistGnnEngine::simulate_epoch`]
    ///   with an all-zero [`RecoveryReport`]: bit-identical to the healthy
    ///   baseline.
    /// * **Slowdowns / degradation** — scale the phase times through the
    ///   straggler rule; message loss shows up as retries.
    /// * **Crashes** — the crashed partition is restored onto a
    ///   replacement machine before the next epoch: vertices with
    ///   surviving replicas are fetched over the network (recovery
    ///   traffic ∝ replication factor — partitioning quality becomes
    ///   fault-tolerance quality), the rest reload from the last
    ///   checkpoint and the epochs since it are re-executed.
    /// * **Checkpoints** — written every `checkpoint_every` epochs
    ///   (config), priced by [`DistGnnEngine::checkpoint_seconds`].
    ///
    /// # Errors
    ///
    /// [`DistGnnError::WorkerFailed`] if a crash is unrecoverable (single
    /// machine, no checkpointing); [`DistGnnError::RecoveryBudgetExceeded`]
    /// if the accumulated overhead passes the plan's budget.
    pub fn simulate_epoch_with_faults(
        &self,
        epoch: u32,
        plan: &FaultPlan,
    ) -> Result<FaultyEpochReport, DistGnnError> {
        if plan.is_empty() {
            return Ok(FaultyEpochReport {
                report: self.simulate_epoch(),
                recovery: RecoveryReport::default(),
                crashed_machines: Vec::new(),
            });
        }
        let model = self.config.model;
        let cluster = &self.config.cluster;
        let k = cluster.machines;
        let mut recovery = RecoveryReport::default();
        let compute_factor: Vec<f64> = (0..k).map(|m| plan.compute_factor(m, epoch)).collect();
        let ctx = EpochFaultCtx {
            network: plan.degraded_network(&cluster.network, epoch),
            min_compute_factor: compute_factor.iter().copied().fold(1.0, f64::min),
            compute_factor,
            loss_rate: plan.loss_rate(epoch),
        };
        let mut report = self.simulate_epoch_inner(&model, Some(&ctx), &mut recovery);

        if self.config.checkpoint_every > 0 && (epoch + 1) % self.config.checkpoint_every == 0 {
            recovery.checkpoints += 1;
            recovery.checkpoint_seconds += self.checkpoint_seconds(&model);
        }

        let state = per_vertex_state_bytes(&model);
        let mut crashed_machines = Vec::new();
        for (machine, step_frac) in plan.crashes_in_epoch(epoch) {
            if machine >= k {
                continue;
            }
            if k == 1 && self.config.checkpoint_every == 0 {
                return Err(DistGnnError::WorkerFailed { machine, epoch });
            }
            recovery.crashes += 1;
            crashed_machines.push(machine);

            // Replicated vertices: fetch current state from one surviving
            // replica each (lowest machine id — deterministic).
            let view = &self.views[machine as usize];
            let mut replica_bytes = 0u64;
            let mut sources = 0u64;
            let mut unreplicated = 0u64;
            for &v in &view.local_vertices {
                let mask = self.partition.replica_mask(v) & !(1u64 << machine);
                if mask != 0 {
                    let src = mask.trailing_zeros();
                    replica_bytes += state;
                    report.counters.machine_mut(src).send(state);
                    report.counters.machine_mut(machine).receive(state);
                    sources |= 1u64 << src;
                } else {
                    unreplicated += 1;
                }
            }
            recovery.recovery_bytes += replica_bytes;
            recovery.restore_seconds +=
                transfer_time(&ctx.network, replica_bytes, u64::from(sources.count_ones()))
                    + (unreplicated * state) as f64 / CHECKPOINT_BW;

            // Unreplicated state only exists in the last checkpoint, so
            // everything since it (plus the partial epoch in flight) is
            // re-executed; with full replica coverage only the partial
            // epoch is lost.
            let lost = if unreplicated > 0 {
                let since_ckpt = if self.config.checkpoint_every > 0 {
                    epoch % self.config.checkpoint_every
                } else {
                    epoch
                };
                f64::from(since_ckpt) + step_frac
            } else {
                step_frac
            };
            recovery.lost_progress_epochs += lost;
            recovery.reexecuted_steps += lost.ceil() as u64;
            recovery.reexecution_seconds += lost * report.epoch_time();
        }

        let overhead = recovery.total_overhead_seconds();
        if overhead > plan.recovery_budget_secs {
            return Err(DistGnnError::RecoveryBudgetExceeded {
                budget_secs: plan.recovery_budget_secs,
                needed_secs: overhead,
            });
        }
        Ok(FaultyEpochReport { report, recovery, crashed_machines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::generators::{rmat, RmatParams};
    use gp_partition::prelude::*;

    fn setup(k: u32) -> (Graph, EdgePartition, EdgePartition) {
        let g = rmat(RmatParams { scale: 9, edge_factor: 8, ..RmatParams::default() }, 7).unwrap();
        let random = RandomEdgePartitioner.partition_edges(&g, k, 1).unwrap();
        let hep = Hep::hep100().partition_edges(&g, k, 1).unwrap();
        (g, random, hep)
    }

    fn cfg(k: u32, f: usize, h: usize, layers: usize) -> DistGnnConfig {
        DistGnnConfig::paper(
            ModelConfig {
                kind: ModelKind::Sage,
                feature_dim: f,
                hidden_dim: h,
                num_layers: layers,
                num_classes: 8,
                seed: 0,
            },
            ClusterSpec::paper(k),
        )
    }

    #[test]
    fn better_partitioner_less_traffic_and_time() {
        let (g, random, hep) = setup(8);
        let c = cfg(8, 64, 64, 3);
        let r_rand = DistGnnEngine::new(&g, &random, c).unwrap().simulate_epoch();
        let r_hep = DistGnnEngine::new(&g, &hep, c).unwrap().simulate_epoch();
        assert!(
            r_hep.counters.total_network_bytes() < r_rand.counters.total_network_bytes(),
            "HEP traffic {} >= Random {}",
            r_hep.counters.total_network_bytes(),
            r_rand.counters.total_network_bytes()
        );
        assert!(r_hep.epoch_time() < r_rand.epoch_time());
        assert!(r_hep.total_memory() < r_rand.total_memory());
    }

    #[test]
    fn traffic_proportional_to_state_dims() {
        let (g, random, _) = setup(4);
        let small = DistGnnEngine::new(&g, &random, cfg(4, 16, 16, 2)).unwrap().simulate_epoch();
        let large = DistGnnEngine::new(&g, &random, cfg(4, 512, 512, 2)).unwrap().simulate_epoch();
        // Sync volume scales with state size; subtract the (identical
        // per-config) allreduce contribution before comparing? Allreduce
        // differs too (larger params) — the large config must dominate.
        assert!(
            large.counters.total_network_bytes() > 10 * small.counters.total_network_bytes()
        );
    }

    #[test]
    fn more_layers_more_memory() {
        let (g, random, _) = setup(4);
        let l2 = DistGnnEngine::new(&g, &random, cfg(4, 64, 64, 2)).unwrap().simulate_epoch();
        let l4 = DistGnnEngine::new(&g, &random, cfg(4, 64, 64, 4)).unwrap().simulate_epoch();
        assert!(l4.total_memory() > l2.total_memory());
    }

    #[test]
    fn cluster_mismatch_rejected() {
        let (g, random, _) = setup(4);
        assert!(matches!(
            DistGnnEngine::new(&g, &random, cfg(8, 16, 16, 2)),
            Err(DistGnnError::ClusterMismatch { .. })
        ));
    }

    #[test]
    fn non_sage_rejected() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.model.kind = ModelKind::Gat;
        assert!(matches!(
            DistGnnEngine::new(&g, &random, c),
            Err(DistGnnError::UnsupportedModel(_))
        ));
    }

    #[test]
    fn phases_all_positive() {
        let (g, random, _) = setup(4);
        let r = DistGnnEngine::new(&g, &random, cfg(4, 64, 64, 2)).unwrap().simulate_epoch();
        assert!(r.phases.forward > 0.0);
        assert!(r.phases.backward > 0.0);
        assert!(r.phases.sync > 0.0);
        assert!(r.phases.optimizer > 0.0);
        assert!(!r.any_oom());
    }

    #[test]
    fn cdr_sync_period_amortises_traffic() {
        let (g, random, _) = setup(8);
        let base = cfg(8, 64, 64, 3);
        let mut cdr = base;
        cdr.sync_period = 4;
        let r1 = DistGnnEngine::new(&g, &random, base).unwrap().simulate_epoch();
        let r4 = DistGnnEngine::new(&g, &random, cdr).unwrap().simulate_epoch();
        // Sync phase shrinks ~4x (a small allreduce-excess term does not
        // scale with the period); compute is unchanged.
        assert!(
            r4.phases.sync < 0.35 * r1.phases.sync,
            "cd-4 sync {} vs cd-1 {}",
            r4.phases.sync,
            r1.phases.sync
        );
        assert_eq!(r4.phases.forward, r1.phases.forward);
        assert!(r4.counters.total_network_bytes() < r1.counters.total_network_bytes());
    }

    #[test]
    fn zero_sync_period_rejected() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.sync_period = 0;
        assert!(matches!(
            DistGnnEngine::new(&g, &random, c),
            Err(DistGnnError::InvalidConfig(_))
        ));
    }

    fn crash_plan(machine: u32, epoch: u32, step_frac: f64) -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Crash { machine, epoch, step_frac }],
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn empty_plan_bit_identical_to_baseline() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::new(&g, &random, cfg(8, 64, 64, 3)).unwrap();
        let base = engine.simulate_epoch();
        let faulty = engine.simulate_epoch_with_faults(0, &FaultPlan::empty()).unwrap();
        assert_eq!(faulty.report.phases, base.phases);
        assert_eq!(faulty.report.counters, base.counters);
        assert_eq!(faulty.report.memory, base.memory);
        assert_eq!(faulty.report.oom_machines, base.oom_machines);
        assert_eq!(faulty.recovery, RecoveryReport::default());
        assert!(faulty.crashed_machines.is_empty());
    }

    #[test]
    fn same_plan_identical_results() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::new(&g, &random, cfg(8, 64, 64, 2)).unwrap();
        let plan =
            FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 10, 3.0, 0xfa11));
        for epoch in 0..10 {
            let a = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let b = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_eq!(a.report.phases, b.report.phases);
            assert_eq!(a.report.counters, b.report.counters);
            assert_eq!(a.recovery, b.recovery);
        }
    }

    #[test]
    fn recovery_traffic_ordered_by_replication_factor() {
        // The acceptance criterion: lower RF ⇒ fewer replicated vertices
        // on the crashed machine ⇒ less replica-restore traffic. Sum over
        // crashing every machine once so the ordering does not hinge on
        // one partition's layout.
        let (g, random, hep) = setup(8);
        let c = cfg(8, 64, 64, 3);
        let e_rand = DistGnnEngine::new(&g, &random, c).unwrap();
        let e_hep = DistGnnEngine::new(&g, &hep, c).unwrap();
        assert!(
            hep.replication_factor() < random.replication_factor(),
            "test premise: HEP replicates less than Random"
        );
        let total = |e: &DistGnnEngine| -> u64 {
            (0..8u32)
                .map(|m| {
                    e.simulate_epoch_with_faults(1, &crash_plan(m, 1, 0.5))
                        .unwrap()
                        .recovery
                        .recovery_bytes
                })
                .sum()
        };
        let rand_bytes = total(&e_rand);
        let hep_bytes = total(&e_hep);
        assert!(
            hep_bytes < rand_bytes,
            "HEP (lower RF) recovery {hep_bytes} >= Random {rand_bytes}"
        );
    }

    #[test]
    fn checkpointing_bounds_lost_progress() {
        let (g, random, _) = setup(8);
        let mut c = cfg(8, 64, 64, 2);
        let no_ckpt =
            DistGnnEngine::new(&g, &random, c).unwrap();
        c.checkpoint_every = 2;
        let with_ckpt = DistGnnEngine::new(&g, &random, c).unwrap();
        let plan = crash_plan(3, 7, 0.25);
        let lost_none = no_ckpt.simulate_epoch_with_faults(7, &plan).unwrap().recovery;
        let lost_ckpt = with_ckpt.simulate_epoch_with_faults(7, &plan).unwrap().recovery;
        // Without checkpoints a crash at epoch 7 replays from scratch;
        // with a period of 2 at most ~2 epochs replay.
        assert!(lost_none.lost_progress_epochs > 7.0);
        assert!(lost_ckpt.lost_progress_epochs <= 2.0);
        assert!(lost_ckpt.reexecution_seconds < lost_none.reexecution_seconds);
        // The checkpointing run pays for checkpoints instead.
        let healthy = with_ckpt
            .simulate_epoch_with_faults(1, &crash_plan(3, 7, 0.25))
            .unwrap()
            .recovery;
        assert_eq!(healthy.checkpoints, 1, "epoch 1 ends a period-2 window");
        assert!(healthy.checkpoint_seconds > 0.0);
    }

    #[test]
    fn slowdown_and_degradation_stretch_phases() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::new(&g, &random, cfg(8, 64, 64, 2)).unwrap();
        let base = engine.simulate_epoch();
        let plan = FaultPlan {
            events: vec![
                gp_cluster::FaultEvent::Slowdown {
                    machine: 0,
                    from_epoch: 0,
                    until_epoch: 1,
                    factor: 0.5,
                },
                gp_cluster::FaultEvent::Degradation {
                    from_epoch: 0,
                    until_epoch: 1,
                    bandwidth_factor: 0.5,
                    loss_rate: 0.1,
                },
            ],
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        let faulty = engine.simulate_epoch_with_faults(0, &plan).unwrap();
        assert!(faulty.report.phases.forward > base.phases.forward);
        assert!(faulty.report.phases.sync > base.phases.sync);
        assert!(faulty.recovery.retries > 0);
        assert!(faulty.recovery.retry_seconds > 0.0);
        // Out of the window the same plan costs nothing extra.
        let healthy = engine.simulate_epoch_with_faults(5, &plan).unwrap();
        assert_eq!(healthy.report.phases, base.phases);
    }

    #[test]
    fn recovery_budget_enforced() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::new(&g, &random, cfg(8, 64, 64, 2)).unwrap();
        let mut plan = crash_plan(0, 4, 0.5);
        plan.recovery_budget_secs = 1e-12;
        assert!(matches!(
            engine.simulate_epoch_with_faults(4, &plan),
            Err(DistGnnError::RecoveryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn single_machine_crash_unrecoverable_without_checkpoints() {
        let (g, _, _) = setup(8);
        let random = RandomEdgePartitioner.partition_edges(&g, 1, 1).unwrap();
        let engine = DistGnnEngine::new(&g, &random, cfg(1, 16, 16, 2)).unwrap();
        let plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::Crash { machine: 0, epoch: 2, step_frac: 0.5 }],
            machines: 1,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        assert!(matches!(
            engine.simulate_epoch_with_faults(2, &plan),
            Err(DistGnnError::WorkerFailed { machine: 0, epoch: 2 })
        ));
    }

    #[test]
    fn memory_balance_tracks_vertex_balance() {
        let (g, _, hep) = setup(8);
        let r = DistGnnEngine::new(&g, &hep, cfg(8, 256, 16, 2)).unwrap().simulate_epoch();
        // HEP has a vertex imbalance; memory balance must reflect it
        // (paper Figure 5: the two correlate). At this test scale the
        // constant per-machine model state dilutes the correlation, so
        // assert direction and bound rather than equality.
        let vb = hep.vertex_balance();
        let mb = r.memory_balance();
        assert!(vb > 1.2, "test premise: HEP imbalanced, vb = {vb}");
        assert!(
            mb - 1.0 > 0.35 * (vb - 1.0),
            "memory balance {mb} does not track vertex balance {vb}"
        );
        assert!(mb <= vb + 0.05, "memory balance {mb} exceeds vertex balance {vb}");
    }
}
