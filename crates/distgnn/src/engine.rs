//! The DistGNN cost-model engine.

use gp_cluster::{compute_time, transfer_time, ClusterCounters, ClusterSpec};
use gp_graph::Graph;
use gp_partition::EdgePartition;
use gp_tensor::flops::{layer_train_flops, model_param_count, BlockShape};
use gp_tensor::{ModelConfig, ModelKind};

use crate::error::DistGnnError;
use crate::memory::{machine_memory, MemoryBreakdown};
use crate::sync::{layer_sync_traffic_dims, record_sync};
use crate::view::{assign_masters, build_views, PartitionView};

/// Configuration of a full-batch training run.
#[derive(Debug, Clone, Copy)]
pub struct DistGnnConfig {
    /// Model hyper-parameters (must be GraphSAGE — the only architecture
    /// DistGNN supports, matching the paper).
    pub model: ModelConfig,
    /// Simulated cluster.
    pub cluster: ClusterSpec,
    /// Replica-sync period `r` — DistGNN's *cd-r* communication
    /// avoidance (Md et al., SC 2021): partial aggregates of cut
    /// vertices are synchronised only every `r`-th epoch, trading
    /// staleness for an `r`-fold cut in sync traffic. The study paper
    /// runs with `r = 1` (sync every epoch); other values are an
    /// **extension** for the `ablations -- cdr` study. Convergence
    /// effects of staleness are outside the cost model.
    pub sync_period: u32,
}

impl DistGnnConfig {
    /// Paper-default configuration: sync every epoch (cd-0 / 0c).
    pub fn paper(model: ModelConfig, cluster: ClusterSpec) -> Self {
        DistGnnConfig { model, cluster, sync_period: 1 }
    }
}

/// Simulated wall-time of one epoch, split into the phases the paper
/// measures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochPhases {
    /// Forward computation (straggler-gated, per layer).
    pub forward: f64,
    /// Backward computation.
    pub backward: f64,
    /// Replica synchronisation + gradient all-reduce.
    pub sync: f64,
    /// Optimiser step.
    pub optimizer: f64,
}

impl EpochPhases {
    /// Total epoch time.
    pub fn total(&self) -> f64 {
        self.forward + self.backward + self.sync + self.optimizer
    }
}

/// Full result of one simulated epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Phase breakdown (simulated seconds).
    pub phases: EpochPhases,
    /// Work counters per machine.
    pub counters: ClusterCounters,
    /// Per-machine memory breakdown.
    pub memory: Vec<MemoryBreakdown>,
    /// Machines whose footprint exceeds the installed memory.
    pub oom_machines: Vec<u32>,
}

impl EpochReport {
    /// Simulated seconds per epoch.
    pub fn epoch_time(&self) -> f64 {
        self.phases.total()
    }

    /// Cluster-wide peak memory (sum over machines).
    pub fn total_memory(&self) -> u64 {
        self.memory.iter().map(MemoryBreakdown::total).sum()
    }

    /// Cluster-wide *vertex-state* memory: the footprint minus the
    /// per-machine model/optimiser state. At the paper's scale the model
    /// is < 0.5% of the footprint; on the 1/200-scale analogues it can
    /// reach 30%, so state-only numbers are the comparable quantity for
    /// the paper's Figures 9 and 10.
    pub fn total_state_memory(&self) -> u64 {
        self.memory.iter().map(|m| m.total() - m.model_bytes).sum()
    }

    /// Memory-utilisation balance `max/mean` (paper Figure 5).
    pub fn memory_balance(&self) -> f64 {
        if self.memory.is_empty() {
            return 0.0;
        }
        let total = self.total_memory();
        let mean = total as f64 / self.memory.len() as f64;
        let max = self.memory.iter().map(MemoryBreakdown::total).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Whether any machine ran out of memory.
    pub fn any_oom(&self) -> bool {
        !self.oom_machines.is_empty()
    }
}

/// Full-batch edge-partitioned training engine.
pub struct DistGnnEngine<'a> {
    graph: &'a Graph,
    partition: &'a EdgePartition,
    views: Vec<PartitionView>,
    masters: Vec<u32>,
    config: DistGnnConfig,
}

impl<'a> DistGnnEngine<'a> {
    /// Build an engine for a partitioned graph.
    ///
    /// # Errors
    ///
    /// Fails if the partition size and cluster size disagree, or the
    /// model is not GraphSAGE.
    pub fn new(
        graph: &'a Graph,
        partition: &'a EdgePartition,
        config: DistGnnConfig,
    ) -> Result<Self, DistGnnError> {
        if partition.k() != config.cluster.machines {
            return Err(DistGnnError::ClusterMismatch {
                partitions: partition.k(),
                machines: config.cluster.machines,
            });
        }
        if config.model.kind != ModelKind::Sage {
            return Err(DistGnnError::UnsupportedModel(config.model.kind.name().into()));
        }
        if config.model.num_layers == 0 {
            return Err(DistGnnError::InvalidConfig("num_layers must be > 0".into()));
        }
        if config.sync_period == 0 {
            return Err(DistGnnError::InvalidConfig("sync_period must be > 0".into()));
        }
        let masters = assign_masters(partition);
        let views = build_views(graph, partition, &masters);
        Ok(DistGnnEngine { graph, partition, views, masters, config })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The edge partition.
    pub fn partition(&self) -> &EdgePartition {
        self.partition
    }

    /// The configuration.
    pub fn config(&self) -> &DistGnnConfig {
        &self.config
    }

    /// Per-machine views.
    pub fn views(&self) -> &[PartitionView] {
        &self.views
    }

    /// Run the cost model for one epoch with the configured model.
    pub fn simulate_epoch(&self) -> EpochReport {
        self.simulate_epoch_for(&self.config.model)
    }

    /// Run the cost model for one epoch with an alternative model
    /// configuration (same kind); grid sweeps reuse the engine's views
    /// across the 27 hyper-parameter combinations this way.
    ///
    /// # Panics
    ///
    /// Panics if `model.kind` differs from the configured kind.
    pub fn simulate_epoch_for(&self, model: &ModelConfig) -> EpochReport {
        assert_eq!(model.kind, self.config.model.kind, "model kind mismatch");
        let cluster = &self.config.cluster;
        let k = cluster.machines;
        let mut counters = ClusterCounters::new(k);
        let mut phases = EpochPhases::default();

        for layer in 0..model.num_layers {
            let (in_dim, out_dim) = model.layer_dims(layer);
            // --- Compute (forward + backward), straggler-gated. ---
            let mut max_fwd = 0.0f64;
            let mut max_bwd = 0.0f64;
            for view in &self.views {
                let shape = BlockShape {
                    num_dst: view.num_masters(),
                    num_src: view.num_local_vertices(),
                    num_edges: view.num_local_edges(),
                };
                let train_flops =
                    layer_train_flops(model.kind, shape, in_dim as u64, out_dim as u64);
                let fwd_flops = train_flops / 3;
                let bwd_flops = train_flops - fwd_flops;
                counters.machine_mut(view.machine).flops += train_flops;
                max_fwd = max_fwd.max(compute_time(&cluster.machine, fwd_flops));
                max_bwd = max_bwd.max(compute_time(&cluster.machine, bwd_flops));
            }
            phases.forward += max_fwd;
            phases.backward += max_bwd;

            // --- Replica sync: forward gathers partial aggregates
            // (in_dim) and scatters updated states (out_dim); the
            // backward pass mirrors it with gradients. Under cd-r the
            // sync runs every r-th epoch, so the per-epoch amortised
            // cost is divided by the period. ---
            for (gather, scatter) in [(in_dim, out_dim), (out_dim, in_dim)] {
                let mut traffic = layer_sync_traffic_dims(
                    self.partition,
                    &self.masters,
                    gather as u64,
                    scatter as u64,
                );
                if self.config.sync_period > 1 {
                    let p = u64::from(self.config.sync_period);
                    for v in traffic
                        .bytes_sent
                        .iter_mut()
                        .chain(traffic.bytes_received.iter_mut())
                        .chain(traffic.messages.iter_mut())
                    {
                        *v /= p;
                    }
                }
                record_sync(&mut counters, &traffic);
                let mut max_sync = 0.0f64;
                for m in 0..k as usize {
                    let t = transfer_time(
                        &cluster.network,
                        traffic.bytes_sent[m] + traffic.bytes_received[m],
                        traffic.messages[m],
                    );
                    max_sync = max_sync.max(t);
                }
                phases.sync += max_sync;
            }
        }

        // --- Gradient all-reduce + optimiser step. The all-reduce is
        // overlapped with the tail of the backward pass (standard
        // bucketed gradient synchronisation), so only the excess over
        // the backward compute shows up as synchronisation time. ---
        let param_bytes = model_param_count(model) * 4;
        let allreduce = gp_cluster::time::allreduce_time(&cluster.network, param_bytes, k);
        phases.sync += (allreduce - phases.backward).max(0.0);
        for m in 0..k {
            counters.machine_mut(m).send(param_bytes);
            counters.machine_mut(m).receive(param_bytes);
        }
        // Adam: ~10 FLOPs per parameter.
        let opt_flops = model_param_count(model) * 10;
        phases.optimizer = compute_time(&cluster.machine, opt_flops);
        for m in 0..k {
            counters.machine_mut(m).flops += opt_flops;
        }

        // --- Memory. ---
        let memory: Vec<MemoryBreakdown> =
            self.views.iter().map(|v| machine_memory(v, model)).collect();
        let mut oom_machines = Vec::new();
        for (view, mem) in self.views.iter().zip(memory.iter()) {
            counters.machine_mut(view.machine).observe_memory(mem.total());
            if mem.total() > cluster.machine.memory_bytes {
                oom_machines.push(view.machine);
            }
        }

        EpochReport { phases, counters, memory, oom_machines }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::generators::{rmat, RmatParams};
    use gp_partition::prelude::*;

    fn setup(k: u32) -> (Graph, EdgePartition, EdgePartition) {
        let g = rmat(RmatParams { scale: 9, edge_factor: 8, ..RmatParams::default() }, 7).unwrap();
        let random = RandomEdgePartitioner.partition_edges(&g, k, 1).unwrap();
        let hep = Hep::hep100().partition_edges(&g, k, 1).unwrap();
        (g, random, hep)
    }

    fn cfg(k: u32, f: usize, h: usize, layers: usize) -> DistGnnConfig {
        DistGnnConfig::paper(
            ModelConfig {
                kind: ModelKind::Sage,
                feature_dim: f,
                hidden_dim: h,
                num_layers: layers,
                num_classes: 8,
                seed: 0,
            },
            ClusterSpec::paper(k),
        )
    }

    #[test]
    fn better_partitioner_less_traffic_and_time() {
        let (g, random, hep) = setup(8);
        let c = cfg(8, 64, 64, 3);
        let r_rand = DistGnnEngine::new(&g, &random, c).unwrap().simulate_epoch();
        let r_hep = DistGnnEngine::new(&g, &hep, c).unwrap().simulate_epoch();
        assert!(
            r_hep.counters.total_network_bytes() < r_rand.counters.total_network_bytes(),
            "HEP traffic {} >= Random {}",
            r_hep.counters.total_network_bytes(),
            r_rand.counters.total_network_bytes()
        );
        assert!(r_hep.epoch_time() < r_rand.epoch_time());
        assert!(r_hep.total_memory() < r_rand.total_memory());
    }

    #[test]
    fn traffic_proportional_to_state_dims() {
        let (g, random, _) = setup(4);
        let small = DistGnnEngine::new(&g, &random, cfg(4, 16, 16, 2)).unwrap().simulate_epoch();
        let large = DistGnnEngine::new(&g, &random, cfg(4, 512, 512, 2)).unwrap().simulate_epoch();
        // Sync volume scales with state size; subtract the (identical
        // per-config) allreduce contribution before comparing? Allreduce
        // differs too (larger params) — the large config must dominate.
        assert!(
            large.counters.total_network_bytes() > 10 * small.counters.total_network_bytes()
        );
    }

    #[test]
    fn more_layers_more_memory() {
        let (g, random, _) = setup(4);
        let l2 = DistGnnEngine::new(&g, &random, cfg(4, 64, 64, 2)).unwrap().simulate_epoch();
        let l4 = DistGnnEngine::new(&g, &random, cfg(4, 64, 64, 4)).unwrap().simulate_epoch();
        assert!(l4.total_memory() > l2.total_memory());
    }

    #[test]
    fn cluster_mismatch_rejected() {
        let (g, random, _) = setup(4);
        assert!(matches!(
            DistGnnEngine::new(&g, &random, cfg(8, 16, 16, 2)),
            Err(DistGnnError::ClusterMismatch { .. })
        ));
    }

    #[test]
    fn non_sage_rejected() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.model.kind = ModelKind::Gat;
        assert!(matches!(
            DistGnnEngine::new(&g, &random, c),
            Err(DistGnnError::UnsupportedModel(_))
        ));
    }

    #[test]
    fn phases_all_positive() {
        let (g, random, _) = setup(4);
        let r = DistGnnEngine::new(&g, &random, cfg(4, 64, 64, 2)).unwrap().simulate_epoch();
        assert!(r.phases.forward > 0.0);
        assert!(r.phases.backward > 0.0);
        assert!(r.phases.sync > 0.0);
        assert!(r.phases.optimizer > 0.0);
        assert!(!r.any_oom());
    }

    #[test]
    fn cdr_sync_period_amortises_traffic() {
        let (g, random, _) = setup(8);
        let base = cfg(8, 64, 64, 3);
        let mut cdr = base;
        cdr.sync_period = 4;
        let r1 = DistGnnEngine::new(&g, &random, base).unwrap().simulate_epoch();
        let r4 = DistGnnEngine::new(&g, &random, cdr).unwrap().simulate_epoch();
        // Sync phase shrinks ~4x (a small allreduce-excess term does not
        // scale with the period); compute is unchanged.
        assert!(
            r4.phases.sync < 0.35 * r1.phases.sync,
            "cd-4 sync {} vs cd-1 {}",
            r4.phases.sync,
            r1.phases.sync
        );
        assert_eq!(r4.phases.forward, r1.phases.forward);
        assert!(r4.counters.total_network_bytes() < r1.counters.total_network_bytes());
    }

    #[test]
    fn zero_sync_period_rejected() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.sync_period = 0;
        assert!(matches!(
            DistGnnEngine::new(&g, &random, c),
            Err(DistGnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn memory_balance_tracks_vertex_balance() {
        let (g, _, hep) = setup(8);
        let r = DistGnnEngine::new(&g, &hep, cfg(8, 256, 16, 2)).unwrap().simulate_epoch();
        // HEP has a vertex imbalance; memory balance must reflect it
        // (paper Figure 5: the two correlate). At this test scale the
        // constant per-machine model state dilutes the correlation, so
        // assert direction and bound rather than equality.
        let vb = hep.vertex_balance();
        let mb = r.memory_balance();
        assert!(vb > 1.2, "test premise: HEP imbalanced, vb = {vb}");
        assert!(
            mb - 1.0 > 0.35 * (vb - 1.0),
            "memory balance {mb} does not track vertex balance {vb}"
        );
        assert!(mb <= vb + 0.05, "memory balance {mb} exceeds vertex balance {vb}");
    }
}
