//! The DistGNN cost-model engine.

use gp_cluster::trace::counter_names;
use gp_cluster::{
    charge_loss_retries, compute_time, noise_charge, transfer_time, CheckpointConfig,
    CheckpointStore,
    ChurnPlan, ClusterCounters, ClusterSpec, DetectorConfig, ElasticOptions, ElasticRunReport,
    EpochOutcome, FaultPlan, Fleet, MessageKind, MitigationPolicy, MitigationReport, NetFaultPlan,
    NetRunOptions, NetRunReport, NetworkSpec, PartitionedRunReport, RecoveryReport, RunSpec,
    Scenario, StragglerDetector, StreamBatchReport, StreamLeg, StreamRunReport, TracePhase,
    TraceSink, AGGREGATE_WORKER,
};
use gp_exec::{par_map, Threads};
use gp_graph::{Graph, StreamGraph, StreamPlan};
use gp_partition::{
    full_edge_partitioner, modeled_partition_seconds, EdgePartition, IncrementalEdgePartitioner,
};
use gp_tensor::flops::{layer_train_flops, model_param_count, BlockShape};
use gp_tensor::{ModelConfig, ModelKind};

use crate::error::DistGnnError;
use crate::memory::{machine_memory, MemoryBreakdown};
use crate::sync::{layer_sync_traffic_dims, record_sync};
use crate::view::{assign_masters, assign_masters_avoiding, build_views, PartitionView, NO_MASTER};

/// Configuration of a full-batch training run.
#[derive(Debug, Clone, Copy)]
pub struct DistGnnConfig {
    /// Model hyper-parameters (must be GraphSAGE — the only architecture
    /// DistGNN supports, matching the paper).
    pub model: ModelConfig,
    /// Simulated cluster.
    pub cluster: ClusterSpec,
    /// Replica-sync period `r` — DistGNN's *cd-r* communication
    /// avoidance (Md et al., SC 2021): partial aggregates of cut
    /// vertices are synchronised only every `r`-th epoch, trading
    /// staleness for an `r`-fold cut in sync traffic. The study paper
    /// runs with `r = 1` (sync every epoch); other values are an
    /// **extension** for the `ablations -- cdr` study. Convergence
    /// effects of staleness are outside the cost model.
    pub sync_period: u32,
    /// Checkpoint period in epochs (0 = checkpointing disabled, the
    /// paper's healthy-cluster setting). A checkpoint writes the model
    /// (parameters + optimiser moments) and every machine's replica
    /// state to local storage; its cost only appears in
    /// [`DistGnnEngine::simulate_epoch_with_faults`], so healthy runs
    /// are unaffected.
    pub checkpoint_every: u32,
}

impl DistGnnConfig {
    /// Paper-default configuration: sync every epoch (cd-0 / 0c), no
    /// checkpointing.
    pub fn paper(model: ModelConfig, cluster: ClusterSpec) -> Self {
        DistGnnConfig { model, cluster, sync_period: 1, checkpoint_every: 0 }
    }
}

/// Sustained local-storage bandwidth for checkpoint writes and restores
/// (bytes/second) — a commodity SATA SSD, matching the paper's testbed
/// era.
const CHECKPOINT_BW: f64 = 5e8;

/// Resident training state per covered vertex: input features plus one
/// intermediate representation per layer, in bytes. This is what replica
/// recovery fetches over the network and what checkpoints persist.
fn per_vertex_state_bytes(model: &ModelConfig) -> u64 {
    let dims: u64 = (0..model.num_layers).map(|i| model.layer_dims(i).1 as u64).sum();
    (model.feature_dim as u64 + dims) * 4
}

/// Per-epoch fault environment resolved from a [`FaultPlan`].
struct EpochFaultCtx {
    network: NetworkSpec,
    compute_factor: Vec<f64>,
    min_compute_factor: f64,
    loss_rate: f64,
    /// Machines participating in this epoch. The fixed-fleet fault path
    /// always passes the full mask; only the elastic path shrinks it.
    live_mask: u64,
}

/// Bitmask with one bit per machine of a `k`-machine cluster.
fn full_mask(k: u32) -> u64 {
    if k >= 64 {
        !0
    } else {
        (1u64 << k) - 1
    }
}

/// Simulated wall-time of one epoch, split into the phases the paper
/// measures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochPhases {
    /// Forward computation (straggler-gated, per layer).
    pub forward: f64,
    /// Backward computation.
    pub backward: f64,
    /// Replica synchronisation + gradient all-reduce.
    pub sync: f64,
    /// Optimiser step.
    pub optimizer: f64,
}

impl EpochPhases {
    /// Total epoch time.
    pub fn total(&self) -> f64 {
        self.forward + self.backward + self.sync + self.optimizer
    }
}

/// Full result of one simulated epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Phase breakdown (simulated seconds).
    pub phases: EpochPhases,
    /// Work counters per machine.
    pub counters: ClusterCounters,
    /// Per-machine memory breakdown.
    pub memory: Vec<MemoryBreakdown>,
    /// Machines whose footprint exceeds the installed memory.
    pub oom_machines: Vec<u32>,
}

impl EpochReport {
    /// Simulated seconds per epoch.
    pub fn epoch_time(&self) -> f64 {
        self.phases.total()
    }

    /// Cluster-wide peak memory (sum over machines).
    pub fn total_memory(&self) -> u64 {
        self.memory.iter().map(MemoryBreakdown::total).sum()
    }

    /// Cluster-wide *vertex-state* memory: the footprint minus the
    /// per-machine model/optimiser state. At the paper's scale the model
    /// is < 0.5% of the footprint; on the 1/200-scale analogues it can
    /// reach 30%, so state-only numbers are the comparable quantity for
    /// the paper's Figures 9 and 10.
    pub fn total_state_memory(&self) -> u64 {
        self.memory.iter().map(|m| m.total() - m.model_bytes).sum()
    }

    /// Memory-utilisation balance `max/mean` (paper Figure 5).
    pub fn memory_balance(&self) -> f64 {
        if self.memory.is_empty() {
            return 0.0;
        }
        let total = self.total_memory();
        let mean = total as f64 / self.memory.len() as f64;
        let max = self.memory.iter().map(MemoryBreakdown::total).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Whether any machine ran out of memory.
    pub fn any_oom(&self) -> bool {
        !self.oom_machines.is_empty()
    }
}

impl EpochOutcome for EpochReport {
    fn epoch_time(&self) -> f64 {
        self.phases.total()
    }

    fn total_bytes(&self) -> u64 {
        self.counters.total_network_bytes()
    }

    fn phase_breakdown(&self) -> Vec<(&'static str, f64)> {
        vec![
            (TracePhase::Forward.name(), self.phases.forward),
            (TracePhase::Backward.name(), self.phases.backward),
            (TracePhase::Sync.name(), self.phases.sync),
            (TracePhase::Optimizer.name(), self.phases.optimizer),
        ]
    }
}

/// Result of one epoch simulated under a [`FaultPlan`]: the epoch
/// report (fault-adjusted phase times and counters, including recovery
/// traffic) plus the recovery accounting.
#[derive(Debug, Clone)]
pub struct FaultyEpochReport {
    /// The epoch report, with fault-adjusted times and counters.
    pub report: EpochReport,
    /// What the faults cost beyond the healthy baseline.
    pub recovery: RecoveryReport,
    /// Machines that crashed during this epoch (each is restored onto a
    /// replacement before the next epoch — checkpoint/restart
    /// semantics, in contrast to DistDGL's graceful degradation).
    pub crashed_machines: Vec<u32>,
}

/// Result of one epoch simulated under a [`FaultPlan`] with a
/// [`MitigationPolicy`] applied: the adopted epoch (mitigated when it
/// was cheaper, unmitigated otherwise — mitigation never makes an epoch
/// worse) plus the mitigation accounting for this epoch.
#[derive(Debug, Clone)]
pub struct MitigatedEpochReport {
    /// The adopted epoch report.
    pub report: EpochReport,
    /// Fault-recovery accounting of the adopted epoch.
    pub recovery: RecoveryReport,
    /// Machines that crashed during this epoch.
    pub crashed_machines: Vec<u32>,
    /// What mitigation did (and cost) this epoch.
    pub mitigation: MitigationReport,
}

/// Common result of [`DistGnnEngine::run`] — one variant per resolved
/// [`Scenario`].
///
/// The epoch-wise scenarios (`Faulty`, `Mitigated`) never abort
/// mid-run: on an unrecoverable fault the run truncates, keeping the
/// epochs that completed and recording the error in the variant.
/// Callers that want the old propagating behaviour chain
/// [`DistGnnRunReport::strict`].
#[derive(Debug)]
pub enum DistGnnRunReport {
    /// Healthy fixed-fleet run: one report per epoch.
    Healthy {
        /// Per-epoch reports, epoch order.
        epochs: Vec<EpochReport>,
    },
    /// Run under a fault plan; truncated at the first unrecoverable
    /// fault.
    Faulty {
        /// Reports of the epochs that completed, epoch order.
        epochs: Vec<FaultyEpochReport>,
        /// The fault that ended the run early, if any.
        error: Option<DistGnnError>,
    },
    /// Run under a fault plan with mitigation; truncated like `Faulty`.
    Mitigated {
        /// Reports of the epochs that completed, epoch order.
        epochs: Vec<MitigatedEpochReport>,
        /// The fault that ended the run early, if any.
        error: Option<DistGnnError>,
    },
    /// Elastic-membership run.
    Elastic(ElasticRunReport),
    /// Elastic run under message-level network faults.
    Partitioned(PartitionedRunReport),
    /// Streaming dynamic-graph run: one epoch per mutation batch.
    Stream(StreamRunReport),
}

impl DistGnnRunReport {
    /// Turn a truncated run back into an error — the behaviour of the
    /// old per-epoch entry points, for callers that propagate.
    ///
    /// # Errors
    ///
    /// The recorded mid-run error, when the run truncated.
    pub fn strict(self) -> Result<Self, DistGnnError> {
        match self {
            DistGnnRunReport::Faulty { error: Some(e), .. }
            | DistGnnRunReport::Mitigated { error: Some(e), .. } => Err(e),
            other => Ok(other),
        }
    }

    /// Unwrap a healthy run's per-epoch reports.
    ///
    /// # Panics
    ///
    /// Panics when the run was not healthy.
    pub fn into_healthy(self) -> Vec<EpochReport> {
        match self {
            DistGnnRunReport::Healthy { epochs } => epochs,
            other => panic!("expected a healthy run report, got {other:?}"),
        }
    }

    /// Unwrap a faulty run's completed epochs and truncation error.
    ///
    /// # Panics
    ///
    /// Panics when the run was not faulty.
    pub fn into_faulty(self) -> (Vec<FaultyEpochReport>, Option<DistGnnError>) {
        match self {
            DistGnnRunReport::Faulty { epochs, error } => (epochs, error),
            other => panic!("expected a faulty run report, got {other:?}"),
        }
    }

    /// Unwrap a mitigated run's completed epochs and truncation error.
    ///
    /// # Panics
    ///
    /// Panics when the run was not mitigated.
    pub fn into_mitigated(self) -> (Vec<MitigatedEpochReport>, Option<DistGnnError>) {
        match self {
            DistGnnRunReport::Mitigated { epochs, error } => (epochs, error),
            other => panic!("expected a mitigated run report, got {other:?}"),
        }
    }

    /// Unwrap an elastic run report.
    ///
    /// # Panics
    ///
    /// Panics when the run was not elastic.
    pub fn into_elastic(self) -> ElasticRunReport {
        match self {
            DistGnnRunReport::Elastic(r) => r,
            other => panic!("expected an elastic run report, got {other:?}"),
        }
    }

    /// Unwrap a partitioned run report.
    ///
    /// # Panics
    ///
    /// Panics when the run was not partitioned.
    pub fn into_partitioned(self) -> PartitionedRunReport {
        match self {
            DistGnnRunReport::Partitioned(r) => r,
            other => panic!("expected a partitioned run report, got {other:?}"),
        }
    }

    /// Unwrap a stream run report.
    ///
    /// # Panics
    ///
    /// Panics when the run was not a stream run.
    pub fn into_stream(self) -> StreamRunReport {
        match self {
            DistGnnRunReport::Stream(r) => r,
            other => panic!("expected a stream run report, got {other:?}"),
        }
    }
}

/// Cross-epoch state of DistGNN's mitigation layer: the per-epoch
/// straggler/degradation detector plus the adaptations it has enacted
/// (current cd-r period, machines the master role has been migrated away
/// from). Create one per training run with [`DistGnnEngine::mitigation`]
/// and pass it to every mitigated epoch in epoch order (the
/// [`DistGnnEngine::run`] `Mitigated` scenario does this internally).
#[derive(Debug, Clone)]
pub struct DistGnnMitigation {
    policy: MitigationPolicy,
    detector: StragglerDetector,
    base_sync_period: u32,
    sync_period: u32,
    /// Machines currently banned from the master role (bitmask).
    banned: u64,
    /// Rebalanced master assignment + views while `banned != 0`.
    rebalanced: Option<(Vec<u32>, Vec<PartitionView>)>,
}

impl DistGnnMitigation {
    /// The detector (flags lag one epoch behind the signal they react to).
    pub fn detector(&self) -> &StragglerDetector {
        &self.detector
    }

    /// The cd-r sync period the adaptive policy currently runs with.
    pub fn sync_period(&self) -> u32 {
        self.sync_period
    }

    /// Bitmask of machines the master role is currently migrated off.
    pub fn banned_machines(&self) -> u64 {
        self.banned
    }

    fn at_base_state(&self) -> bool {
        self.sync_period == self.base_sync_period && self.rebalanced.is_none()
    }
}

/// Validated builder for [`DistGnnEngine`] — the single construction
/// path every consumer (sweeps, ablations, CLI, examples) goes through.
/// Obtain one with [`DistGnnEngine::builder`]; `model` and `cluster`
/// are mandatory (set individually or together via
/// [`DistGnnEngineBuilder::config`]), everything else has the paper
/// defaults.
#[derive(Debug, Clone)]
pub struct DistGnnEngineBuilder<'a> {
    graph: &'a Graph,
    partition: &'a EdgePartition,
    model: Option<ModelConfig>,
    cluster: Option<ClusterSpec>,
    sync_period: u32,
    checkpoint_every: u32,
    threads: Threads,
    trace: TraceSink,
}

impl<'a> DistGnnEngineBuilder<'a> {
    /// Model hyper-parameters (mandatory; must be GraphSAGE).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Simulated cluster (mandatory).
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Adopt a whole [`DistGnnConfig`] (model, cluster, sync period,
    /// checkpoint period) at once.
    pub fn config(mut self, config: DistGnnConfig) -> Self {
        self.model = Some(config.model);
        self.cluster = Some(config.cluster);
        self.sync_period = config.sync_period;
        self.checkpoint_every = config.checkpoint_every;
        self
    }

    /// cd-r replica-sync period (default 1 — sync every epoch).
    pub fn sync_period(mut self, period: u32) -> Self {
        self.sync_period = period;
        self
    }

    /// Checkpoint period in epochs (default 0 — disabled).
    pub fn checkpoint_every(mut self, every: u32) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Intra-epoch `gp-exec` width (default: serial). The pool fans
    /// per-layer vertex-block scans over index-addressed slots, so any
    /// width reproduces the serial epoch bit-for-bit; it composes
    /// freely with the sweep-level pool one layer up.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Trace sink the engine records spans to (default: disabled).
    /// Tracing is purely observational — reports are bit-identical with
    /// or without it.
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Validate and build the engine.
    ///
    /// # Errors
    ///
    /// [`DistGnnError::InvalidConfig`] if `model`/`cluster` are unset,
    /// the model has no layers, or the sync period is 0;
    /// [`DistGnnError::ClusterMismatch`] if the partition size and
    /// cluster size disagree; [`DistGnnError::UnsupportedModel`] if the
    /// model is not GraphSAGE.
    pub fn build(self) -> Result<DistGnnEngine<'a>, DistGnnError> {
        let model = self
            .model
            .ok_or_else(|| DistGnnError::InvalidConfig("model not set (builder .model())".into()))?;
        let cluster = self.cluster.ok_or_else(|| {
            DistGnnError::InvalidConfig("cluster not set (builder .cluster())".into())
        })?;
        let config = DistGnnConfig {
            model,
            cluster,
            sync_period: self.sync_period,
            checkpoint_every: self.checkpoint_every,
        };
        if self.partition.k() != config.cluster.machines {
            return Err(DistGnnError::ClusterMismatch {
                partitions: self.partition.k(),
                machines: config.cluster.machines,
            });
        }
        if config.model.kind != ModelKind::Sage {
            return Err(DistGnnError::UnsupportedModel(config.model.kind.name().into()));
        }
        if config.model.num_layers == 0 {
            return Err(DistGnnError::InvalidConfig("num_layers must be > 0".into()));
        }
        if config.sync_period == 0 {
            return Err(DistGnnError::InvalidConfig("sync_period must be > 0".into()));
        }
        let masters = assign_masters(self.partition);
        let views = build_views(self.graph, self.partition, &masters);
        Ok(DistGnnEngine {
            graph: self.graph,
            partition: self.partition,
            views,
            masters,
            config,
            threads: self.threads,
            trace: self.trace,
        })
    }
}

/// Full-batch edge-partitioned training engine.
pub struct DistGnnEngine<'a> {
    graph: &'a Graph,
    partition: &'a EdgePartition,
    views: Vec<PartitionView>,
    masters: Vec<u32>,
    config: DistGnnConfig,
    threads: Threads,
    trace: TraceSink,
}

impl<'a> DistGnnEngine<'a> {
    /// Start building an engine for a partitioned graph; see
    /// [`DistGnnEngineBuilder`].
    pub fn builder(graph: &'a Graph, partition: &'a EdgePartition) -> DistGnnEngineBuilder<'a> {
        DistGnnEngineBuilder {
            graph,
            partition,
            model: None,
            cluster: None,
            sync_period: 1,
            checkpoint_every: 0,
            threads: Threads::serial(),
            trace: TraceSink::disabled(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The edge partition.
    pub fn partition(&self) -> &EdgePartition {
        self.partition
    }

    /// The configuration.
    pub fn config(&self) -> &DistGnnConfig {
        &self.config
    }

    /// Per-machine views.
    pub fn views(&self) -> &[PartitionView] {
        &self.views
    }

    /// The trace sink this engine records spans to (disabled unless one
    /// was supplied via [`DistGnnEngineBuilder::trace`]).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Run the scenario a [`RunSpec`] describes and return the matching
    /// report variant — the single entry point replacing the five
    /// `simulate_*` methods.
    ///
    /// `Faulty`/`Mitigated` scenarios truncate on an unrecoverable
    /// fault instead of erroring: completed epochs are kept and the
    /// error is recorded in the variant (chain
    /// [`DistGnnRunReport::strict`] to propagate it instead).
    ///
    /// # Errors
    ///
    /// [`DistGnnError::InvalidConfig`] when the spec's scenario
    /// combination is invalid; elastic/partitioned scenarios also
    /// surface their run errors directly.
    pub fn run(&self, spec: &RunSpec) -> Result<DistGnnRunReport, DistGnnError> {
        let scenario =
            spec.scenario().map_err(|e| DistGnnError::InvalidConfig(e.to_string()))?;
        let epochs = spec.num_epochs();
        let empty_plan = FaultPlan::empty();
        match scenario {
            Scenario::Healthy => {
                let out = (0..epochs).map(|e| self.healthy_epoch(e)).collect();
                Ok(DistGnnRunReport::Healthy { epochs: out })
            }
            Scenario::Faulty(plan) => {
                let mut out = Vec::with_capacity(epochs as usize);
                let mut error = None;
                for epoch in 0..epochs {
                    match self.faulty_epoch(epoch, plan) {
                        Ok(r) => out.push(r),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                Ok(DistGnnRunReport::Faulty { epochs: out, error })
            }
            Scenario::Mitigated { plan, policy } => {
                let plan = plan.unwrap_or(&empty_plan);
                let mut session = self.mitigation(*policy);
                let mut out = Vec::with_capacity(epochs as usize);
                let mut error = None;
                for epoch in 0..epochs {
                    match self.mitigated_epoch(epoch, plan, &mut session) {
                        Ok(r) => out.push(r),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                Ok(DistGnnRunReport::Mitigated { epochs: out, error })
            }
            Scenario::Elastic { faults, elastic } => self
                .run_elastic_inner(
                    epochs,
                    faults.unwrap_or(&empty_plan),
                    &elastic.churn,
                    &NetFaultPlan::empty(),
                    &elastic.checkpoints,
                    elastic.options,
                    NetRunOptions::default(),
                )
                .map(|r| DistGnnRunReport::Elastic(r.elastic)),
            Scenario::Partitioned { faults, elastic, net } => self
                .run_elastic_inner(
                    epochs,
                    faults.unwrap_or(&empty_plan),
                    &elastic.churn,
                    &net.plan,
                    &elastic.checkpoints,
                    elastic.options,
                    net.options,
                )
                .map(DistGnnRunReport::Partitioned),
            Scenario::Stream { leg, partitioner } => {
                self.run_stream(leg, partitioner).map(DistGnnRunReport::Stream)
            }
        }
    }

    /// One healthy epoch, trace stamped with its epoch number — the
    /// `Healthy` leg of [`DistGnnEngine::run`].
    fn healthy_epoch(&self, epoch: u32) -> EpochReport {
        self.trace.set_epoch(epoch);
        self.simulate_epoch_for(&self.config.model)
    }

    /// The streaming dynamic-graph leg of [`DistGnnEngine::run`].
    ///
    /// The engine's own graph/partition are the `t = 0` state. Each
    /// batch of the seeded mutation stream is applied to a
    /// [`StreamGraph`], new edges are placed online by an
    /// [`IncrementalEdgePartitioner`] (deletions update bookkeeping
    /// only), and one full-batch epoch is trained on the resulting
    /// snapshot. When the repartition policy fires, a candidate full
    /// repartition is probed with a disabled trace and adopted only if
    /// it is no worse on *both* replication factor and probed epoch
    /// time; adoption is charged `modeled_partition_seconds` — never
    /// wall-clock — through a `Migration` span, so amortization stays
    /// deterministic.
    fn run_stream(
        &self,
        leg: &StreamLeg,
        partitioner: Option<&str>,
    ) -> Result<StreamRunReport, DistGnnError> {
        let invalid = |e: &dyn std::fmt::Display| DistGnnError::InvalidConfig(e.to_string());
        leg.spec.validate().map_err(|e| invalid(&e))?;
        leg.policy.validate().map_err(|e| invalid(&e))?;
        let name = partitioner.unwrap_or("HDRF");
        let full = full_edge_partitioner(name).ok_or_else(|| {
            DistGnnError::InvalidConfig(format!(
                "unknown vertex-cut partitioner '{name}' for a stream run"
            ))
        })?;
        let k = self.partition.k();
        let seed = leg.spec.seed;
        let plan = StreamPlan::generate(self.graph, &leg.spec).map_err(|e| invalid(&e))?;
        let mut live = StreamGraph::new(self.graph);
        let mut inc =
            IncrementalEdgePartitioner::from_partition(name, self.graph, self.partition, seed)
                .map_err(|e| invalid(&e))?;
        let mut report = StreamRunReport {
            partitioner: name.to_string(),
            policy: leg.policy.label(),
            batches: Vec::with_capacity(plan.len()),
        };
        let mut repartitions = 0u32;
        let mut repartition_seconds = 0.0f64;
        for (b, batch) in plan.batches().iter().enumerate() {
            let b = b as u32;
            live.apply(batch).map_err(|e| invalid(&e))?;
            for &(u, v) in &batch.inserts {
                inc.insert_edge(u, v).map_err(|e| invalid(&e))?;
            }
            for &(u, v) in &batch.deletes {
                inc.delete_edge(u, v).map_err(|e| invalid(&e))?;
            }
            let snapshot = live.snapshot().map_err(|e| invalid(&e))?;
            let mut part = inc.materialize(&snapshot).map_err(|e| invalid(&e))?;
            let mut repartitioned = false;
            let mut partition_seconds = 0.0;
            if leg.policy.should_fire(b, part.edge_balance()) {
                let candidate =
                    full.partition_edges(&snapshot, k, seed).map_err(|e| invalid(&e))?;
                // Adopt only if not worse on both axes: partition
                // quality and the probed epoch time it buys. This keeps
                // threshold/periodic policies no worse than `never` by
                // construction.
                if candidate.replication_factor() <= part.replication_factor()
                    && self.stream_probe(&snapshot, &candidate, b)?
                        <= self.stream_probe(&snapshot, &part, b)?
                {
                    inc = IncrementalEdgePartitioner::from_partition(
                        name, &snapshot, &candidate, seed,
                    )
                    .map_err(|e| invalid(&e))?;
                    part = candidate;
                    repartitioned = true;
                    partition_seconds =
                        modeled_partition_seconds(name, u64::from(snapshot.num_edges()));
                    repartitions += 1;
                    repartition_seconds += partition_seconds;
                    self.trace.set_epoch(b);
                    self.trace.span(
                        AGGREGATE_WORKER,
                        0,
                        TracePhase::Migration,
                        self.trace.now(),
                        partition_seconds,
                        0,
                        0,
                    );
                    self.trace.advance(partition_seconds);
                }
            }
            let epoch_seconds = {
                let inner = DistGnnEngine::builder(&snapshot, &part)
                    .config(self.config)
                    .threads(self.threads)
                    .trace(self.trace.clone())
                    .build()?;
                inner.healthy_epoch(b).epoch_time()
            };
            if self.trace.is_enabled() {
                let t = &self.trace;
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_LIVE_EDGES,
                    f64::from(snapshot.num_edges()));
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_REPLICATION_FACTOR,
                    part.replication_factor());
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_BALANCE, part.edge_balance());
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_REPARTITIONS,
                    f64::from(repartitions));
                t.counter(AGGREGATE_WORKER, counter_names::STREAM_PARTITION_SECONDS,
                    repartition_seconds);
            }
            report.batches.push(StreamBatchReport {
                batch: b,
                num_vertices: snapshot.num_vertices(),
                num_edges: u64::from(snapshot.num_edges()),
                mutations: batch.num_mutations() as u32,
                replication_factor: part.replication_factor(),
                edge_cut: 0.0,
                balance: part.edge_balance(),
                train_balance: 0.0,
                repartitioned,
                partition_seconds,
                epoch_seconds,
            });
        }
        Ok(report)
    }

    /// Probed epoch time of `part` on `snapshot` with tracing disabled —
    /// the second axis of the stream repartition adoption gate.
    fn stream_probe(
        &self,
        snapshot: &Graph,
        part: &EdgePartition,
        epoch: u32,
    ) -> Result<f64, DistGnnError> {
        let probe = DistGnnEngine::builder(snapshot, part)
            .config(self.config)
            .threads(self.threads)
            .trace(TraceSink::disabled())
            .build()?;
        Ok(probe.healthy_epoch(epoch).epoch_time())
    }

    /// Run the cost model for one epoch with the configured model.
    #[deprecated(note = "use `engine.run(&RunSpec::healthy())`")]
    pub fn simulate_epoch(&self) -> EpochReport {
        self.simulate_epoch_for(&self.config.model)
    }

    /// Run the cost model for one epoch with an alternative model
    /// configuration (same kind); grid sweeps reuse the engine's views
    /// across the 27 hyper-parameter combinations this way.
    ///
    /// # Panics
    ///
    /// Panics if `model.kind` differs from the configured kind.
    pub fn simulate_epoch_for(&self, model: &ModelConfig) -> EpochReport {
        let mut unused = RecoveryReport::default();
        self.simulate_epoch_inner(
            model,
            &self.views,
            &self.masters,
            self.config.sync_period,
            None,
            &mut unused,
            &self.trace,
        )
    }

    /// Shared epoch simulation. With `faults: None` this is the healthy
    /// baseline and performs *exactly* the same arithmetic as before the
    /// fault subsystem existed (every fault adjustment is behind an
    /// `if let Some(..)`), so healthy results stay bit-identical.
    ///
    /// `views`/`masters`/`sync_period` are parameters (rather than read
    /// from `self`) so the mitigation layer can re-run an epoch with a
    /// rebalanced master assignment or an adapted cd-r period; every
    /// plain caller passes the engine's own state verbatim. `sink` is a
    /// parameter for the same reason: the mitigation layer prices
    /// throwaway candidate epochs with a disabled sink and records only
    /// the adopted one.
    ///
    /// Span accounting: each phase window emits one span per machine
    /// whose `dur` is the *exact* straggler-gated `f64` added to the
    /// phase total, in the same order — so per-worker, per-phase span
    /// sums reproduce [`EpochPhases`] bit-for-bit. Tracing never feeds
    /// back into the report (spans are emitted from already-computed
    /// values), keeping traced and untraced runs bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn simulate_epoch_inner(
        &self,
        model: &ModelConfig,
        views: &[PartitionView],
        masters: &[u32],
        sync_period: u32,
        faults: Option<&EpochFaultCtx>,
        recovery: &mut RecoveryReport,
        sink: &TraceSink,
    ) -> EpochReport {
        assert_eq!(model.kind, self.config.model.kind, "model kind mismatch");
        let _prof = gp_prof::scope("distgnn.epoch");
        let cluster = &self.config.cluster;
        let network = faults.map_or(cluster.network, |f| f.network);
        let k = cluster.machines;
        // Elastic runs shrink the participating set; every other caller
        // passes the full mask, and `all_live` gates every membership
        // adjustment so the fixed-fleet arithmetic stays bit-identical.
        let live_mask = faults.map_or(full_mask(k), |f| f.live_mask);
        let all_live = live_mask == full_mask(k);
        let mut counters = ClusterCounters::new(k);
        let mut phases = EpochPhases::default();
        let tracing = sink.is_enabled();

        // The epoch's hot path is the per-(layer, direction) O(V)
        // replica-traffic scan. Each scan is a pure function of
        // (partition, masters, dims), so all `2 × num_layers` of them
        // run up front as index-addressed pool jobs; with a serial
        // width they execute in index order on this thread — the same
        // arithmetic either way, so any width is bit-identical.
        let sync_dims: Vec<(u64, u64)> = (0..model.num_layers)
            .flat_map(|layer| {
                let (in_dim, out_dim) = model.layer_dims(layer);
                let (i, o) = (in_dim as u64, out_dim as u64);
                [(i, o), (o, i)]
            })
            .collect();
        let partition = self.partition;
        let sync_jobs = sync_dims
            .iter()
            .map(|&(gather, scatter)| {
                move || {
                    let _prof = gp_prof::scope("distgnn.sync_scan");
                    layer_sync_traffic_dims(partition, masters, gather, scatter)
                }
            })
            .collect();
        let mut sync_scans = par_map(self.threads, sync_jobs).into_iter();

        for layer in 0..model.num_layers {
            let (in_dim, out_dim) = model.layer_dims(layer);
            // --- Compute (forward + backward), straggler-gated. Each
            // live view's block cost is a pure function of its slot, so
            // the per-worker compute fans out as index-addressed jobs;
            // the counter/straggler fold below consumes the slots in
            // index order, reproducing the serial loop exactly. ---
            let mut max_fwd = 0.0f64;
            let mut max_bwd = 0.0f64;
            let mut view_flops: Vec<(u32, u64, u64)> = Vec::new();
            let compute_jobs = views
                .iter()
                .filter(|view| all_live || live_mask & (1u64 << view.machine) != 0)
                .map(|view| {
                    move || {
                        let _prof = gp_prof::scope("distgnn.layer_compute");
                        let shape = BlockShape {
                            num_dst: view.num_masters(),
                            num_src: view.num_local_vertices(),
                            num_edges: view.num_local_edges(),
                        };
                        let train_flops =
                            layer_train_flops(model.kind, shape, in_dim as u64, out_dim as u64);
                        let fwd_flops = train_flops / 3;
                        let bwd_flops = train_flops - fwd_flops;
                        let mut fwd = compute_time(&cluster.machine, fwd_flops);
                        let mut bwd = compute_time(&cluster.machine, bwd_flops);
                        if let Some(f) = faults {
                            let cf = f.compute_factor[view.machine as usize];
                            fwd /= cf;
                            bwd /= cf;
                        }
                        (view.machine, train_flops, fwd_flops, bwd_flops, fwd, bwd)
                    }
                })
                .collect();
            for (machine, train_flops, fwd_flops, bwd_flops, fwd, bwd) in
                par_map(self.threads, compute_jobs)
            {
                counters.machine_mut(machine).flops += train_flops;
                max_fwd = max_fwd.max(fwd);
                max_bwd = max_bwd.max(bwd);
                if tracing {
                    view_flops.push((machine, fwd_flops, bwd_flops));
                }
            }
            phases.forward += max_fwd;
            phases.backward += max_bwd;
            if tracing {
                let t = sink.now();
                for &(m, fwd_flops, _) in &view_flops {
                    sink.span(m, layer as u32, TracePhase::Forward, t, max_fwd, 0, fwd_flops);
                }
                sink.advance(max_fwd);
                let t = sink.now();
                for &(m, _, bwd_flops) in &view_flops {
                    sink.span(m, layer as u32, TracePhase::Backward, t, max_bwd, 0, bwd_flops);
                }
                sink.advance(max_bwd);
            }

            // --- Replica sync: forward gathers partial aggregates
            // (in_dim) and scatters updated states (out_dim); the
            // backward pass mirrors it with gradients. Under cd-r the
            // sync runs every r-th epoch, so the per-epoch amortised
            // cost is divided by the period. ---
            for _direction in 0..2 {
                let mut traffic = sync_scans.next().expect("one scan per layer direction");
                if sync_period > 1 {
                    let p = u64::from(sync_period);
                    for v in traffic
                        .bytes_sent
                        .iter_mut()
                        .chain(traffic.bytes_received.iter_mut())
                        .chain(traffic.messages.iter_mut())
                    {
                        *v /= p;
                    }
                }
                // Absent machines exchange nothing: their rows are
                // zeroed before the counters record the traffic and
                // before the straggler gate scans it.
                if !all_live {
                    for m in 0..k as usize {
                        if live_mask & (1u64 << m) == 0 {
                            traffic.bytes_sent[m] = 0;
                            traffic.bytes_received[m] = 0;
                            traffic.messages[m] = 0;
                        }
                    }
                }
                record_sync(&mut counters, &traffic);
                let mut max_sync = 0.0f64;
                let mut max_sync_lossless = 0.0f64;
                for m in 0..k as usize {
                    let bytes = traffic.bytes_sent[m] + traffic.bytes_received[m];
                    let msgs = traffic.messages[m];
                    let mut t = transfer_time(&network, bytes, msgs);
                    if let Some(f) = faults {
                        max_sync_lossless = max_sync_lossless.max(t);
                        let charge = charge_loss_retries(&network, msgs, bytes, f.loss_rate);
                        t += charge.extra_secs;
                        charge.apply_counts(recovery);
                    }
                    max_sync = max_sync.max(t);
                }
                phases.sync += max_sync;
                // Wall-time cost of message loss = how much the
                // straggler-gated sync grew over the lossless exchange
                // (on the same, possibly degraded, network).
                if faults.is_some() {
                    recovery.retry_seconds += max_sync - max_sync_lossless;
                }
                if tracing {
                    let t = sink.now();
                    for m in 0..k as usize {
                        if !all_live && live_mask & (1u64 << m) == 0 {
                            continue;
                        }
                        let bytes = traffic.bytes_sent[m] + traffic.bytes_received[m];
                        sink.span(m as u32, layer as u32, TracePhase::Sync, t, max_sync, bytes, 0);
                    }
                    sink.advance(max_sync);
                }
            }
        }

        // --- Gradient all-reduce + optimiser step. The all-reduce is
        // overlapped with the tail of the backward pass (standard
        // bucketed gradient synchronisation), so only the excess over
        // the backward compute shows up as synchronisation time. ---
        let param_bytes = model_param_count(model) * 4;
        let allreduce =
            gp_cluster::time::allreduce_time(&network, param_bytes, live_mask.count_ones());
        let allreduce_excess = (allreduce - phases.backward).max(0.0);
        phases.sync += allreduce_excess;
        for m in 0..k {
            if !all_live && live_mask & (1u64 << m) == 0 {
                continue;
            }
            counters.machine_mut(m).send(param_bytes);
            counters.machine_mut(m).receive(param_bytes);
        }
        if tracing {
            let t = sink.now();
            for m in 0..k {
                if !all_live && live_mask & (1u64 << m) == 0 {
                    continue;
                }
                sink.span(
                    m,
                    model.num_layers as u32,
                    TracePhase::Sync,
                    t,
                    allreduce_excess,
                    2 * param_bytes,
                    0,
                );
            }
            sink.advance(allreduce_excess);
        }
        // Adam: ~10 FLOPs per parameter. The step is synchronous, so the
        // slowest (possibly degraded) machine gates it.
        let opt_flops = model_param_count(model) * 10;
        phases.optimizer = compute_time(&cluster.machine, opt_flops);
        if let Some(f) = faults {
            phases.optimizer /= f.min_compute_factor;
        }
        for m in 0..k {
            if !all_live && live_mask & (1u64 << m) == 0 {
                continue;
            }
            counters.machine_mut(m).flops += opt_flops;
        }
        if tracing {
            let t = sink.now();
            for m in 0..k {
                if !all_live && live_mask & (1u64 << m) == 0 {
                    continue;
                }
                sink.span(
                    m,
                    model.num_layers as u32,
                    TracePhase::Optimizer,
                    t,
                    phases.optimizer,
                    0,
                    opt_flops,
                );
            }
            sink.advance(phases.optimizer);
        }

        // --- Memory. ---
        let live_view = |v: &&PartitionView| all_live || live_mask & (1u64 << v.machine) != 0;
        let memory: Vec<MemoryBreakdown> =
            views.iter().filter(live_view).map(|v| machine_memory(v, model)).collect();
        let mut oom_machines = Vec::new();
        for (view, mem) in views.iter().filter(live_view).zip(memory.iter()) {
            counters.machine_mut(view.machine).observe_memory(mem.total());
            if mem.total() > cluster.machine.memory_bytes {
                oom_machines.push(view.machine);
            }
        }

        if tracing {
            for m in 0..k {
                if !all_live && live_mask & (1u64 << m) == 0 {
                    continue;
                }
                let c = counters.machine(m);
                sink.counter(m, counter_names::BYTES_SENT, c.bytes_sent as f64);
                sink.counter(m, counter_names::BYTES_RECEIVED, c.bytes_received as f64);
            }
        }

        EpochReport { phases, counters, memory, oom_machines }
    }

    /// Simulated wall time of one checkpoint: every machine persists the
    /// model (parameters + optimiser moments) and its replica state to
    /// local storage in parallel; the barrier waits for the largest
    /// replica set.
    pub fn checkpoint_seconds(&self, model: &ModelConfig) -> f64 {
        let model_bytes = model_param_count(model) * 4 * 3;
        let state = per_vertex_state_bytes(model);
        self.views
            .iter()
            .map(|v| (model_bytes + v.num_local_vertices() * state) as f64 / CHECKPOINT_BW)
            .fold(0.0, f64::max)
    }

    /// Run one epoch under a fault plan.
    ///
    /// * **Empty plan** — returns exactly [`DistGnnEngine::simulate_epoch`]
    ///   with an all-zero [`RecoveryReport`]: bit-identical to the healthy
    ///   baseline.
    /// * **Slowdowns / degradation** — scale the phase times through the
    ///   straggler rule; message loss shows up as retries.
    /// * **Crashes** — the crashed partition is restored onto a
    ///   replacement machine before the next epoch: vertices with
    ///   surviving replicas are fetched over the network (recovery
    ///   traffic ∝ replication factor — partitioning quality becomes
    ///   fault-tolerance quality), the rest reload from the last
    ///   checkpoint and the epochs since it are re-executed.
    /// * **Checkpoints** — written every `checkpoint_every` epochs
    ///   (config), priced by [`DistGnnEngine::checkpoint_seconds`].
    ///
    /// # Errors
    ///
    /// [`DistGnnError::WorkerFailed`] if a crash is unrecoverable (single
    /// machine, no checkpointing); [`DistGnnError::RecoveryBudgetExceeded`]
    /// if the accumulated overhead passes the plan's budget.
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan))`")]
    pub fn simulate_epoch_with_faults(
        &self,
        epoch: u32,
        plan: &FaultPlan,
    ) -> Result<FaultyEpochReport, DistGnnError> {
        self.faulty_epoch(epoch, plan)
    }

    /// One epoch under a fault plan — the `Faulty` leg of
    /// [`DistGnnEngine::run`].
    fn faulty_epoch(&self, epoch: u32, plan: &FaultPlan) -> Result<FaultyEpochReport, DistGnnError> {
        self.trace.set_epoch(epoch);
        self.simulate_epoch_with_faults_using(
            epoch,
            plan,
            &self.views,
            &self.masters,
            self.config.sync_period,
            &self.trace,
        )
    }

    /// [`DistGnnEngine::simulate_epoch_with_faults`] parameterised over
    /// the master assignment and cd-r period, so the mitigation layer can
    /// price an epoch under its adapted state. Crash recovery is keyed on
    /// `views[..].local_vertices` — the replica sets — which are fixed by
    /// the edge partition and identical under any master reassignment.
    fn simulate_epoch_with_faults_using(
        &self,
        epoch: u32,
        plan: &FaultPlan,
        views: &[PartitionView],
        masters: &[u32],
        sync_period: u32,
        sink: &TraceSink,
    ) -> Result<FaultyEpochReport, DistGnnError> {
        if plan.is_empty() {
            let mut unused = RecoveryReport::default();
            return Ok(FaultyEpochReport {
                report: self.simulate_epoch_inner(
                    &self.config.model,
                    views,
                    masters,
                    sync_period,
                    None,
                    &mut unused,
                    sink,
                ),
                recovery: RecoveryReport::default(),
                crashed_machines: Vec::new(),
            });
        }
        let model = self.config.model;
        let cluster = &self.config.cluster;
        let k = cluster.machines;
        let mut recovery = RecoveryReport::default();
        let compute_factor: Vec<f64> = (0..k).map(|m| plan.compute_factor(m, epoch)).collect();
        let ctx = EpochFaultCtx {
            network: plan.degraded_network(&cluster.network, epoch),
            min_compute_factor: compute_factor.iter().copied().fold(1.0, f64::min),
            compute_factor,
            loss_rate: plan.loss_rate(epoch),
            live_mask: full_mask(k),
        };
        let mut report = self.simulate_epoch_inner(
            &model,
            views,
            masters,
            sync_period,
            Some(&ctx),
            &mut recovery,
            sink,
        );

        if self.config.checkpoint_every > 0 && (epoch + 1) % self.config.checkpoint_every == 0 {
            recovery.checkpoints += 1;
            let ckpt_secs = self.checkpoint_seconds(&model);
            recovery.checkpoint_seconds += ckpt_secs;
            if sink.is_enabled() {
                let t = sink.now();
                let model_bytes = model_param_count(&model) * 4 * 3;
                let vstate = per_vertex_state_bytes(&model);
                for v in views {
                    let shard = model_bytes + v.num_local_vertices() * vstate;
                    sink.span(v.machine, 0, TracePhase::Checkpoint, t, ckpt_secs, 0, 0);
                    sink.counter(v.machine, counter_names::CHECKPOINT_BYTES, shard as f64);
                }
                sink.advance(ckpt_secs);
            }
        }

        let state = per_vertex_state_bytes(&model);
        let mut crashed_machines = Vec::new();
        for (machine, step_frac) in plan.crashes_in_epoch(epoch) {
            if machine >= k {
                continue;
            }
            if k == 1 && self.config.checkpoint_every == 0 {
                return Err(DistGnnError::WorkerFailed { machine, epoch });
            }
            recovery.crashes += 1;
            crashed_machines.push(machine);

            // Replicated vertices: fetch current state from one surviving
            // replica each (lowest machine id — deterministic).
            let view = &views[machine as usize];
            let mut replica_bytes = 0u64;
            let mut sources = 0u64;
            let mut unreplicated = 0u64;
            for &v in &view.local_vertices {
                let mask = self.partition.replica_mask(v) & !(1u64 << machine);
                if mask != 0 {
                    let src = mask.trailing_zeros();
                    replica_bytes += state;
                    report.counters.machine_mut(src).send(state);
                    report.counters.machine_mut(machine).receive(state);
                    sources |= 1u64 << src;
                } else {
                    unreplicated += 1;
                }
            }
            recovery.recovery_bytes += replica_bytes;
            // `crash_secs` mirrors every wall-time term this crash adds
            // to the recovery report, so the Recovery span's duration is
            // the exact sum of those terms.
            let mut crash_secs =
                transfer_time(&ctx.network, replica_bytes, u64::from(sources.count_ones()))
                    + (unreplicated * state) as f64 / CHECKPOINT_BW;
            recovery.restore_seconds += crash_secs;

            // Unreplicated state only exists in the last checkpoint, so
            // everything since it (plus the partial epoch in flight) is
            // re-executed; with full replica coverage only the partial
            // epoch is lost. Checkpoints carry a checksum that restore
            // verifies before trusting the contents: a corrupt file is
            // detected (never silently restored), its read is wasted,
            // and recovery walks back one checkpoint period at a time —
            // to scratch if no intact checkpoint remains.
            let lost = if unreplicated > 0 {
                let ce = self.config.checkpoint_every;
                let since_ckpt = if ce > 0 {
                    let mut since = epoch % ce;
                    let mut ckpt = i64::from(epoch) - 1 - i64::from(since);
                    while ckpt >= 0 && plan.corrupted_checkpoint(machine, ckpt as u32) {
                        recovery.corrupted_checkpoints += 1;
                        let wasted = (unreplicated * state) as f64 / CHECKPOINT_BW;
                        recovery.restore_seconds += wasted;
                        crash_secs += wasted;
                        since += ce;
                        ckpt -= i64::from(ce);
                    }
                    if ckpt < 0 {
                        epoch
                    } else {
                        since
                    }
                } else {
                    epoch
                };
                f64::from(since_ckpt) + step_frac
            } else {
                step_frac
            };
            recovery.lost_progress_epochs += lost;
            recovery.reexecuted_steps += lost.ceil() as u64;
            let reexec_secs = lost * report.epoch_time();
            recovery.reexecution_seconds += reexec_secs;
            if sink.is_enabled() {
                sink.span(
                    machine,
                    0,
                    TracePhase::Recovery,
                    sink.now(),
                    crash_secs + reexec_secs,
                    replica_bytes,
                    0,
                );
                sink.counter(machine, counter_names::RECOVERY_BYTES, replica_bytes as f64);
                sink.advance(crash_secs + reexec_secs);
            }
        }

        let overhead = recovery.total_overhead_seconds();
        if overhead > plan.recovery_budget_secs {
            return Err(DistGnnError::RecoveryBudgetExceeded {
                budget_secs: plan.recovery_budget_secs,
                needed_secs: overhead,
            });
        }
        Ok(FaultyEpochReport { report, recovery, crashed_machines })
    }

    /// Resolve the fault environment of `epoch` for a run restricted to
    /// `live_mask` (the optimiser barrier only waits for live machines).
    fn elastic_ctx(&self, plan: &FaultPlan, epoch: u32, live_mask: u64) -> EpochFaultCtx {
        let k = self.config.cluster.machines;
        let compute_factor: Vec<f64> = (0..k).map(|m| plan.compute_factor(m, epoch)).collect();
        let min_compute_factor = (0..k)
            .filter(|&m| live_mask & (1u64 << m) != 0)
            .map(|m| compute_factor[m as usize])
            .fold(1.0, f64::min);
        EpochFaultCtx {
            network: plan.degraded_network(&self.config.cluster.network, epoch),
            min_compute_factor,
            compute_factor,
            loss_rate: plan.loss_rate(epoch),
            live_mask,
        }
    }

    /// Minimal-movement master repair after machine `departed` drops out
    /// of the active set: only the vertices it mastered move, each to
    /// its least-loaded surviving replica (deterministic by vertex
    /// order); a vertex with no live replica stays wedged on the
    /// departed slot (its dense compute is lost until a rejoin, and its
    /// state is only recoverable from a checkpoint). Other machines'
    /// assignments are untouched — a leave must not reshuffle healthy
    /// state the way a global rebalance would.
    fn repair_masters(&self, masters: &[u32], departed: u32, active: u64) -> Vec<u32> {
        let k = self.config.cluster.machines as usize;
        let mut load = vec![0u64; k];
        for &m in masters {
            if m != NO_MASTER {
                load[m as usize] += 1;
            }
        }
        let mut repaired = masters.to_vec();
        for v in 0..self.partition.num_vertices() {
            if masters[v as usize] != departed {
                continue;
            }
            let mask = self.partition.replica_mask(v) & active;
            if mask == 0 {
                continue;
            }
            let mut best = NO_MASTER;
            let mut best_load = u64::MAX;
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros();
                if load[p as usize] < best_load {
                    best_load = load[p as usize];
                    best = p;
                }
                m &= m - 1;
            }
            repaired[v as usize] = best;
            load[best as usize] += 1;
            load[departed as usize] -= 1;
        }
        repaired
    }

    /// Multi-epoch run under a fault plan *and* an elastic membership
    /// schedule, with a crash-consistent [`CheckpointStore`].
    ///
    /// Per epoch, in order:
    ///
    /// 1. **Leaves** (churn) take effect at the epoch start. With
    ///    `opts.graceful_handoff` the departing machine streams its
    ///    mastered state to the surviving replicas before going
    ///    ([`TracePhase::Migration`]) — unless relying on the snapshot
    ///    store is cheaper (a fresh checkpoint can beat re-sending live
    ///    state), in which case it takes the crash exit below; picking
    ///    the cheaper exit keeps the elastic run never worse than the
    ///    crash baseline by construction. Otherwise the leave is an
    ///    unannounced crash — replicated state is re-fetched from
    ///    survivors, the rest restores from the newest *valid* snapshot
    ///    (corrupt ones are detected and walked past) and the epochs
    ///    since it are re-executed.
    /// 2. **Joins** bring the slot's replica shard back online with a
    ///    minimal repair (wedged vertices it replicates move to it, its
    ///    working state reloads from the newest valid snapshot). With
    ///    `opts.rebalance_on_join`, a *global* master rebalance is then
    ///    attempted under migrate-then-commit: the epoch is priced under
    ///    the current layout and under a freshly balanced one, and the
    ///    rebalance commits only when the speed-up pays for the
    ///    migration *within this epoch* (otherwise it is deferred and
    ///    retried) — the never-worse contract the mitigation layer
    ///    gives, generalised to churn.
    /// 3. The epoch runs on the live layout (absent machines exchange
    ///    nothing, the all-reduce spans only live machines).
    /// 4. **Crashes** (fault plan) are repaired in place — the machine
    ///    restarts on a replacement before the next epoch, exactly like
    ///    [`DistGnnEngine::simulate_epoch_with_faults`] but restoring
    ///    through the explicit store instead of re-derived arithmetic.
    /// 5. A snapshot is written when `ckpt` says one is due (live
    ///    machines only; absent shards are empty and skipped for free
    ///    at restore time).
    ///
    /// The engine's configured `checkpoint_every` is ignored here —
    /// `ckpt` is the single source of checkpoint policy for elastic
    /// runs.
    ///
    /// # Errors
    ///
    /// [`DistGnnError::WorkerFailed`] when the active set would drop to
    /// zero, or on a crash with one active machine and no
    /// checkpointing; [`DistGnnError::RecoveryBudgetExceeded`] when the
    /// accumulated overhead passes the plan's budget.
    ///
    /// # Panics
    ///
    /// Panics if `ckpt` enables checkpointing with zero retention or a
    /// non-positive bandwidth (see [`CheckpointStore::new`]).
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan).elastic(churn, ckpt, opts))`")]
    pub fn simulate_run_elastic(
        &self,
        epochs: u32,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        ckpt: &CheckpointConfig,
        opts: ElasticOptions,
    ) -> Result<ElasticRunReport, DistGnnError> {
        self.run_elastic_inner(
            epochs,
            faults,
            churn,
            &NetFaultPlan::empty(),
            ckpt,
            opts,
            NetRunOptions::default(),
        )
        .map(|r| r.elastic)
    }

    /// [`DistGnnEngine::simulate_run_elastic`] under a message-level
    /// network fault plan: per-message loss/duplication/reorder noise on
    /// every flow, and [`gp_cluster::PartitionWindow`]s that split the
    /// live fleet into a quorum island and a minority island.
    ///
    /// While a window is armed (its minority and quorum sides both
    /// intersect the active set) the run picks one of two modes for the
    /// *whole* window, by pricing both up front with the adopt-only
    /// probe pattern of the mitigation layer:
    ///
    /// * **Degraded** — training continues on the quorum side only.
    ///   Vertices mastered on the minority island are served from their
    ///   quorum replicas (*stale* — cd-r already tolerates delayed
    ///   remote aggregates, this makes that tolerance a first-class
    ///   mode), with explicit bounded-staleness accounting; after the
    ///   window heals, the minority streams fresh state back in
    ///   (catch-up). Only allowed while the window fits the plan's
    ///   `staleness_bound`.
    /// * **Abort** — every window epoch is burned (attempted and lost)
    ///   and re-executed after heal, plus a restore from the newest
    ///   valid snapshot: the classic stop-the-world reaction.
    ///
    /// Degraded mode is adopted only when its priced cost (including
    /// catch-up and transport noise) is at most the abort price, so a
    /// degraded run is never worse than the abort-and-recover baseline
    /// (`NetRunOptions::abort_only`) *by construction*. Churn events,
    /// crashes, rebalances and checkpoint writes are deferred to the
    /// first post-window epoch in **both** modes, so the two runs'
    /// persistent state evolves identically and the probes price
    /// exactly what execution later charges.
    ///
    /// An empty `net` plan reproduces `simulate_run_elastic`
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistGnnEngine::simulate_run_elastic`].
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan).elastic(..).net(..))`")]
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_run_partitioned(
        &self,
        epochs: u32,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        net: &NetFaultPlan,
        ckpt: &CheckpointConfig,
        opts: ElasticOptions,
        nopts: NetRunOptions,
    ) -> Result<PartitionedRunReport, DistGnnError> {
        self.run_elastic_inner(epochs, faults, churn, net, ckpt, opts, nopts)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_elastic_inner(
        &self,
        epochs: u32,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        net: &NetFaultPlan,
        ckpt: &CheckpointConfig,
        opts: ElasticOptions,
        nopts: NetRunOptions,
    ) -> Result<PartitionedRunReport, DistGnnError> {
        let model = self.config.model;
        let cluster = &self.config.cluster;
        let k = cluster.machines;
        let full = full_mask(k);
        let state = per_vertex_state_bytes(&model);
        let model_bytes = model_param_count(&model) * 4 * 3;
        let param_bytes = model_param_count(&model) * 4;
        let sink = &self.trace;

        let mut fleet = Fleet::full(k);
        let mut store = CheckpointStore::new(*ckpt);
        let mut out = ElasticRunReport::default();
        let mut netr = NetRunReport::default();
        let noisy = net.has_noise();

        // Transport noise on one epoch's flows: gradient sync (ring
        // segments) and feature fetch (the counted sync exchange).
        // A pure function of the epoch report and config, so the
        // adopt-only probes price exactly what execution charges.
        let noise_for = |report: &EpochReport, live: u64, we: u32| -> gp_cluster::NetCharge {
            let mut total = gp_cluster::NetCharge::default();
            if !noisy {
                return total;
            }
            let net_at = faults.degraded_network(&cluster.network, we);
            let sync_msgs = 2 * u64::from(live.count_ones().saturating_sub(1));
            total.merge(&noise_charge(
                net,
                MessageKind::GradientSync,
                we,
                0,
                sync_msgs,
                2 * param_bytes,
                &net_at,
            ));
            let mut fetch_msgs = 0u64;
            let mut fetch_bytes = 0u64;
            for m in 0..k {
                if live & (1u64 << m) != 0 {
                    let c = report.counters.machine(m);
                    fetch_msgs += c.messages;
                    fetch_bytes += c.bytes_sent;
                }
            }
            total.merge(&noise_charge(
                net,
                MessageKind::FeatureFetch,
                we,
                1,
                fetch_msgs,
                fetch_bytes,
                &net_at,
            ));
            total
        };

        // The layout actually carrying work.
        let mut active = full;
        let mut masters = self.masters.clone();
        let mut views = self.views.clone();
        // A join leaves the layout repair-accreted; a global rebalance
        // is attempted each epoch until one commits (or none is needed).
        let mut rebalance_pending = false;

        // Sticky per-window degraded-mode state (armed windows only),
        // plus the membership/fault events deferred until heal.
        struct WindowState {
            entered: u32,
            until: u32,
            degraded: bool,
            quorum: u64,
            deg_masters: Vec<u32>,
            deg_views: Vec<PartitionView>,
            stale_per_epoch: u64,
            catchup_bytes: u64,
            catchup_secs: f64,
        }
        let mut win: Option<WindowState> = None;
        let mut deferred_leaves: Vec<u32> = Vec::new();
        let mut deferred_joins: Vec<u32> = Vec::new();
        let mut deferred_crashes: Vec<(u32, f64)> = Vec::new();

        for epoch in 0..epochs {
            sink.set_epoch(epoch);
            let network = faults.degraded_network(&cluster.network, epoch);

            // --- Arm a partition window covering this epoch. A window
            // whose minority or quorum side misses the active set is
            // inert (no live link is cut). Mode is decided once for the
            // whole window: both alternatives are priced with disabled
            // probes, and degraded is adopted only when it fits the
            // staleness budget and costs at most the abort. ---
            if win.is_none() && !net.windows.is_empty() {
                if let Some(w) = net.window_at(epoch) {
                    let minority = w.minority & active;
                    let quorum = active & !w.minority;
                    if minority != 0 && quorum != 0 {
                        let until = w.until_epoch.min(epochs);
                        let mut deg_masters = masters.clone();
                        for m in 0..k {
                            if minority & (1u64 << m) != 0 {
                                deg_masters = self.repair_masters(&deg_masters, m, quorum);
                            }
                        }
                        let deg_views = build_views(self.graph, self.partition, &deg_masters);
                        let stale_per_epoch = masters
                            .iter()
                            .filter(|&&m| m != NO_MASTER && minority & (1u64 << m) != 0)
                            .count() as u64;
                        let catchup_bytes: u64 = (0..k)
                            .filter(|&m| minority & (1u64 << m) != 0)
                            .map(|m| views[m as usize].num_local_vertices() * state)
                            .sum();
                        let catchup_secs = transfer_time(
                            &network,
                            catchup_bytes,
                            u64::from(minority.count_ones()),
                        );
                        // Abort restore: live machines reload the newest
                        // valid snapshot in parallel (wall time = the
                        // slowest shard).
                        let mut restore_secs = 0.0f64;
                        let mut restore_bytes = 0u64;
                        let mut restore_corrupt = 0u64;
                        for m in 0..k {
                            if active & (1u64 << m) != 0 {
                                let r = store.restore(m, faults);
                                restore_secs = restore_secs.max(r.seconds);
                                restore_bytes += r.bytes_read;
                                restore_corrupt += r.corrupted;
                            }
                        }
                        let probe = TraceSink::disabled();
                        let mut deg_price = catchup_secs;
                        let mut abort_price = restore_secs;
                        for we in epoch..until {
                            let mut scratch = RecoveryReport::default();
                            let dctx = self.elastic_ctx(faults, we, quorum);
                            let dreport = self.simulate_epoch_inner(
                                &model,
                                &deg_views,
                                &deg_masters,
                                self.config.sync_period,
                                Some(&dctx),
                                &mut scratch,
                                &probe,
                            );
                            deg_price += dreport.epoch_time()
                                + scratch.retry_seconds
                                + noise_for(&dreport, quorum, we).extra_secs;
                            let mut scratch = RecoveryReport::default();
                            let fctx = self.elastic_ctx(faults, we, active);
                            let freport = self.simulate_epoch_inner(
                                &model,
                                &views,
                                &masters,
                                self.config.sync_period,
                                Some(&fctx),
                                &mut scratch,
                                &probe,
                            );
                            // Burned attempt + post-heal re-execution.
                            abort_price += freport.epoch_time()
                                + scratch.retry_seconds
                                + noise_for(&freport, active, we).extra_secs
                                + freport.epoch_time();
                        }
                        let degraded = nopts.degraded
                            && until - epoch <= net.staleness_bound
                            && deg_price <= abort_price;
                        netr.windows += 1;
                        if degraded {
                            netr.degraded_windows += 1;
                        } else {
                            netr.aborted_windows += 1;
                            out.recovery.restore_seconds += restore_secs;
                            out.recovery.recovery_bytes += restore_bytes;
                            out.recovery.corrupted_checkpoints += restore_corrupt;
                            if sink.is_enabled() && (restore_bytes > 0 || restore_secs > 0.0) {
                                sink.span(
                                    0,
                                    0,
                                    TracePhase::Recovery,
                                    sink.now(),
                                    restore_secs,
                                    restore_bytes,
                                    0,
                                );
                                sink.advance(restore_secs);
                            }
                        }
                        win = Some(WindowState {
                            entered: epoch,
                            until,
                            degraded,
                            quorum,
                            deg_masters,
                            deg_views,
                            stale_per_epoch,
                            catchup_bytes,
                            catchup_secs,
                        });
                    }
                }
            }
            let in_window = win.is_some();

            let (mut leave_evs, mut join_evs) = churn.events_at(epoch);
            if in_window {
                // Membership changes wait out the partition: neither
                // island can coordinate a handoff or admission across
                // the cut, and deferring them identically in both modes
                // keeps the adopt-only probes exact.
                deferred_leaves.append(&mut leave_evs);
                deferred_joins.append(&mut join_evs);
            } else {
                if !deferred_leaves.is_empty() {
                    deferred_leaves.append(&mut leave_evs);
                    leave_evs = std::mem::take(&mut deferred_leaves);
                }
                if !deferred_joins.is_empty() {
                    deferred_joins.append(&mut join_evs);
                    join_evs = std::mem::take(&mut deferred_joins);
                }
            }
            // Ungraceful departures re-execute lost epochs; priced after
            // the epoch runs, once its duration is known.
            let mut pending_reexec: Vec<(u32, u64, f64, f64)> = Vec::new();

            for &w in &leave_evs {
                if !fleet.is_live(w) {
                    continue;
                }
                fleet.mark_left(w);
                out.leaves += 1;
                if active & (1u64 << w) == 0 {
                    continue; // an idle joiner leaving again moves nothing
                }
                active &= !(1u64 << w);
                if active == 0 {
                    return Err(DistGnnError::WorkerFailed { machine: w, epoch });
                }
                let repaired = self.repair_masters(&masters, w, active);
                let mastered =
                    masters.iter().filter(|&&m| m == w).count() as u64;
                let moved_live =
                    repaired.iter().zip(&masters).filter(|(a, b)| a != b).count() as u64;
                // Price both exits up front. Streaming moves *all*
                // mastered state out — wedged vertices included (they
                // park on storage); leaving unannounced makes survivors
                // re-fetch what was replicated and walk the snapshot
                // store for the rest, losing the epochs since it.
                let stream_bytes = mastered * state;
                let mut receivers = 0u64;
                for (new, old) in repaired.iter().zip(&masters) {
                    if new != old {
                        receivers |= 1u64 << *new;
                    }
                }
                let msgs = u64::from(receivers.count_ones()).max(u64::from(mastered > 0));
                let stream_secs = transfer_time(&network, stream_bytes, msgs);
                let mut sources = 0u64;
                for (v, (new, old)) in repaired.iter().zip(&masters).enumerate() {
                    if new != old {
                        let mask = self.partition.replica_mask(v as u32) & active;
                        sources |= 1u64 << mask.trailing_zeros();
                    }
                }
                let replica_bytes = moved_live * state;
                let unreplicated = mastered - moved_live;
                let restore =
                    if unreplicated > 0 { Some(store.restore(w, faults)) } else { None };
                let crash_secs = transfer_time(
                    &network,
                    replica_bytes,
                    u64::from(sources.count_ones()),
                ) + restore.as_ref().map_or(0.0, |r| r.seconds);
                // A graceful leaver streams only when that is no dearer
                // than the crash path's restore component (the crash
                // path additionally re-executes lost epochs), so the
                // elastic run is never worse than the baseline by
                // construction.
                if opts.graceful_handoff && stream_secs <= crash_secs {
                    out.handoffs += 1;
                    out.handoff_bytes += stream_bytes;
                    out.handoff_seconds += stream_secs;
                    if noisy {
                        netr.absorb(&noise_charge(
                            net,
                            MessageKind::ShardHandoff,
                            epoch,
                            w,
                            msgs,
                            stream_bytes,
                            &network,
                        ));
                    }
                    if sink.is_enabled() {
                        sink.span(
                            w,
                            0,
                            TracePhase::Migration,
                            sink.now(),
                            stream_secs,
                            stream_bytes,
                            0,
                        );
                        sink.counter(w, counter_names::MIGRATION_BYTES, stream_bytes as f64);
                        sink.advance(stream_secs);
                    }
                } else {
                    out.recovery.crashes += 1;
                    out.recovery.recovery_bytes += replica_bytes;
                    let mut span_bytes = replica_bytes;
                    let lost = match &restore {
                        Some(r) => {
                            out.recovery.corrupted_checkpoints += r.corrupted;
                            out.recovery.recovery_bytes += r.bytes_read;
                            span_bytes += r.bytes_read;
                            match r.epoch {
                                Some(re) => (f64::from(epoch) - 1.0 - f64::from(re)).max(0.0),
                                None => f64::from(epoch),
                            }
                        }
                        None => 0.0,
                    };
                    out.recovery.restore_seconds += crash_secs;
                    out.recovery.lost_progress_epochs += lost;
                    out.recovery.reexecuted_steps += lost.ceil() as u64;
                    pending_reexec.push((w, span_bytes, crash_secs, lost));
                }
                masters = repaired;
                views = build_views(self.graph, self.partition, &masters);
            }

            for &w in &join_evs {
                if fleet.is_live(w) {
                    continue;
                }
                fleet.mark_joined(w);
                out.joins += 1;
                active |= 1u64 << w;
                // Minimal repair: the joiner's replica shard comes back
                // online, and any vertex wedged on a still-absent
                // machine that the joiner replicates moves to it.
                let absent = full & !active;
                let mut moved = 0u64;
                for v in 0..self.partition.num_vertices() {
                    let m = masters[v as usize];
                    if m != NO_MASTER
                        && absent & (1u64 << m) != 0
                        && self.partition.replica_mask(v) & (1u64 << w) != 0
                    {
                        masters[v as usize] = w;
                        moved += 1;
                    }
                }
                // The joiner's working state reloads from the newest
                // valid snapshot; without one it streams the un-wedged
                // vertices from surviving replicas. Model parameters
                // live on every survivor, so no training progress is
                // lost — only state-reload time is paid.
                let r = store.restore(w, faults);
                out.recovery.corrupted_checkpoints += r.corrupted;
                let mut bytes = r.bytes_read;
                let mut secs = r.seconds;
                if r.epoch.is_none() && moved > 0 {
                    let stream = moved * state;
                    bytes += stream;
                    secs += transfer_time(&network, stream, moved);
                }
                out.recovery.recovery_bytes += bytes;
                out.recovery.restore_seconds += secs;
                if sink.is_enabled() && (bytes > 0 || secs > 0.0) {
                    sink.span(w, 0, TracePhase::Recovery, sink.now(), secs, bytes, 0);
                    sink.counter(w, counter_names::RECOVERY_BYTES, bytes as f64);
                    sink.advance(secs);
                }
            }
            if !join_evs.is_empty() {
                views = build_views(self.graph, self.partition, &masters);
                rebalance_pending = opts.rebalance_on_join;
            }

            // Optional global rebalance, migrate-then-commit: the epoch
            // is priced under the current (repair-accreted) layout and
            // under a freshly balanced one; the rebalance commits only
            // when the speed-up pays for the migration within this
            // epoch, and is retried every epoch until it does.
            if rebalance_pending && win.is_none() {
                let cand_masters = assign_masters_avoiding(self.partition, full & !active);
                let moved =
                    masters.iter().zip(&cand_masters).filter(|(a, b)| a != b).count() as u64;
                if moved == 0 {
                    rebalance_pending = false; // already balanced: nothing to commit
                } else {
                    let mig_bytes = moved * state;
                    let mig_secs = transfer_time(&network, mig_bytes, moved);
                    let ctx = self.elastic_ctx(faults, epoch, active);
                    let probe = TraceSink::disabled();
                    let mut scratch = RecoveryReport::default();
                    let cur_time = self
                        .simulate_epoch_inner(
                            &model,
                            &views,
                            &masters,
                            self.config.sync_period,
                            Some(&ctx),
                            &mut scratch,
                            &probe,
                        )
                        .epoch_time();
                    let cand_views = build_views(self.graph, self.partition, &cand_masters);
                    let cand_time = self
                        .simulate_epoch_inner(
                            &model,
                            &cand_views,
                            &cand_masters,
                            self.config.sync_period,
                            Some(&ctx),
                            &mut scratch,
                            &probe,
                        )
                        .epoch_time();
                    if cand_time + mig_secs < cur_time {
                        // Receivers of a migrated master role (spans).
                        let mut receivers = 0u64;
                        for (new, old) in cand_masters.iter().zip(&masters) {
                            if new != old {
                                receivers |= 1u64 << *new;
                            }
                        }
                        masters = cand_masters;
                        views = cand_views;
                        out.rebalances += 1;
                        out.handoff_bytes += mig_bytes;
                        out.handoff_seconds += mig_secs;
                        rebalance_pending = false;
                        if noisy {
                            netr.absorb(&noise_charge(
                                net,
                                MessageKind::ShardHandoff,
                                epoch,
                                k,
                                moved,
                                mig_bytes,
                                &network,
                            ));
                        }
                        if sink.is_enabled() {
                            let t = sink.now();
                            let n = u64::from(receivers.count_ones().max(1));
                            let share = mig_bytes / n;
                            for m in 0..k {
                                if receivers & (1u64 << m) == 0 {
                                    continue;
                                }
                                sink.span(m, 0, TracePhase::Migration, t, mig_secs, share, 0);
                                sink.counter(m, counter_names::MIGRATION_BYTES, share as f64);
                            }
                            sink.advance(mig_secs);
                        }
                    } else {
                        out.rejected_rebalances += 1;
                    }
                }
            }

            // --- The epoch itself. Inside a degraded window the
            // quorum island trains on the temporarily repaired layout
            // (minority-mastered vertices served from stale quorum
            // replicas); inside an abort window the epoch runs on the
            // full layout but is burned — re-executed after heal. ---
            let (report, epoch_live) = match &win {
                Some(w) if w.degraded => {
                    let ctx = self.elastic_ctx(faults, epoch, w.quorum);
                    let r = self.simulate_epoch_inner(
                        &model,
                        &w.deg_views,
                        &w.deg_masters,
                        self.config.sync_period,
                        Some(&ctx),
                        &mut out.recovery,
                        sink,
                    );
                    netr.degraded_epochs += 1;
                    netr.stale_served += w.stale_per_epoch;
                    (r, w.quorum)
                }
                _ => {
                    let ctx = self.elastic_ctx(faults, epoch, active);
                    let r = self.simulate_epoch_inner(
                        &model,
                        &views,
                        &masters,
                        self.config.sync_period,
                        Some(&ctx),
                        &mut out.recovery,
                        sink,
                    );
                    (r, active)
                }
            };
            let epoch_time = report.epoch_time();
            out.epoch_seconds.push(epoch_time);
            out.phase_seconds.push(vec![
                (TracePhase::Forward.name(), report.phases.forward),
                (TracePhase::Backward.name(), report.phases.backward),
                (TracePhase::Sync.name(), report.phases.sync),
                (TracePhase::Optimizer.name(), report.phases.optimizer),
            ]);
            out.live_workers.push((0..k).filter(|&m| epoch_live & (1u64 << m) != 0).collect());
            if noisy {
                netr.absorb(&noise_for(&report, epoch_live, epoch));
            }
            if let Some(w) = &win {
                netr.partitioned_epochs += 1;
                netr.max_staleness = netr.max_staleness.max(epoch - w.entered + 1);
                if !w.degraded {
                    // Burned attempt: the abort baseline re-executes
                    // this epoch after heal.
                    netr.aborted_epochs += 1;
                    out.recovery.lost_progress_epochs += 1.0;
                    out.recovery.reexecuted_steps += 1;
                    out.recovery.reexecution_seconds += epoch_time;
                }
            }

            for (w, span_bytes, restore_secs, lost) in pending_reexec.drain(..) {
                let reexec = lost * epoch_time;
                out.recovery.reexecution_seconds += reexec;
                if sink.is_enabled() {
                    let dur = restore_secs + reexec;
                    sink.span(w, 0, TracePhase::Recovery, sink.now(), dur, span_bytes, 0);
                    sink.counter(w, counter_names::RECOVERY_BYTES, span_bytes as f64);
                    sink.advance(dur);
                }
            }

            // --- Crashes repair in place: the slot restarts on a
            // replacement before the next epoch and stays active.
            // During a partition window repairs cannot reach across the
            // cut, so crash handling waits for heal (in both modes). ---
            let mut crash_evs = faults.crashes_in_epoch(epoch);
            if in_window {
                deferred_crashes.append(&mut crash_evs);
            } else if !deferred_crashes.is_empty() {
                deferred_crashes.append(&mut crash_evs);
                crash_evs = std::mem::take(&mut deferred_crashes);
            }
            for (machine, step_frac) in crash_evs {
                if machine >= k || active & (1u64 << machine) == 0 {
                    continue;
                }
                if active.count_ones() == 1 && ckpt.every == 0 {
                    return Err(DistGnnError::WorkerFailed { machine, epoch });
                }
                out.recovery.crashes += 1;
                let view = &views[machine as usize];
                let mut replica_bytes = 0u64;
                let mut sources = 0u64;
                let mut unreplicated = 0u64;
                for &v in &view.local_vertices {
                    let mask =
                        self.partition.replica_mask(v) & !(1u64 << machine) & active;
                    if mask != 0 {
                        replica_bytes += state;
                        sources |= 1u64 << mask.trailing_zeros();
                    } else {
                        unreplicated += 1;
                    }
                }
                out.recovery.recovery_bytes += replica_bytes;
                let mut crash_secs = transfer_time(
                    &network,
                    replica_bytes,
                    u64::from(sources.count_ones()),
                );
                let lost = if unreplicated > 0 {
                    let r = store.restore(machine, faults);
                    out.recovery.corrupted_checkpoints += r.corrupted;
                    out.recovery.recovery_bytes += r.bytes_read;
                    crash_secs += r.seconds;
                    match r.epoch {
                        Some(re) => {
                            (f64::from(epoch) - 1.0 - f64::from(re)).max(0.0) + step_frac
                        }
                        None => f64::from(epoch) + step_frac,
                    }
                } else {
                    step_frac
                };
                out.recovery.restore_seconds += crash_secs;
                out.recovery.lost_progress_epochs += lost;
                out.recovery.reexecuted_steps += lost.ceil() as u64;
                let reexec_secs = lost * epoch_time;
                out.recovery.reexecution_seconds += reexec_secs;
                if sink.is_enabled() {
                    let dur = crash_secs + reexec_secs;
                    sink.span(machine, 0, TracePhase::Recovery, sink.now(), dur, replica_bytes, 0);
                    sink.counter(machine, counter_names::RECOVERY_BYTES, replica_bytes as f64);
                    sink.advance(dur);
                }
            }

            // --- Snapshot (live shards only; commit is atomic at the
            // epoch boundary, so a later crash can never see a torn
            // snapshot of this epoch). Skipped during partition windows:
            // the store is not reachable from both islands, and a torn
            // cross-island snapshot must never become restorable. ---
            if store.due(epoch) && win.is_none() {
                let shards: Vec<u64> = (0..k)
                    .map(|m| {
                        if active & (1u64 << m) != 0 {
                            model_bytes + views[m as usize].num_local_vertices() * state
                        } else {
                            0
                        }
                    })
                    .collect();
                let shard_total: u64 = shards.iter().sum();
                let wr = store.write(epoch, shards);
                out.recovery.checkpoints += 1;
                out.recovery.checkpoint_seconds += wr.seconds;
                if noisy {
                    netr.absorb(&noise_charge(
                        net,
                        MessageKind::CheckpointWrite,
                        epoch,
                        0,
                        u64::from(active.count_ones()),
                        shard_total,
                        &network,
                    ));
                }
                if sink.is_enabled() {
                    let t = sink.now();
                    let snap = store.snapshots().last().expect("just written");
                    for m in 0..k {
                        if active & (1u64 << m) == 0 {
                            continue;
                        }
                        sink.span(m, 0, TracePhase::Checkpoint, t, wr.seconds, 0, 0);
                        sink.counter(
                            m,
                            counter_names::CHECKPOINT_BYTES,
                            snap.shard_bytes[m as usize] as f64,
                        );
                    }
                    sink.advance(wr.seconds);
                }
            }

            // --- Window heal: after the last window epoch the minority
            // island streams fresh state back in (degraded mode only;
            // the abort path restored at entry instead). ---
            if win.as_ref().is_some_and(|w| epoch + 1 >= w.until) {
                let w = win.take().expect("healed window");
                if w.degraded {
                    netr.catchup_bytes += w.catchup_bytes;
                    netr.catchup_seconds += w.catchup_secs;
                    if sink.is_enabled() && (w.catchup_bytes > 0 || w.catchup_secs > 0.0) {
                        sink.span(
                            0,
                            0,
                            TracePhase::Recovery,
                            sink.now(),
                            w.catchup_secs,
                            w.catchup_bytes,
                            0,
                        );
                        sink.advance(w.catchup_secs);
                    }
                }
            }

            if sink.is_enabled() && !net.is_empty() {
                sink.counter(0, counter_names::NET_RETRIES, netr.noise.retries as f64);
                sink.counter(0, counter_names::NET_RETRY_SECONDS, netr.noise.extra_secs);
                sink.counter(
                    0,
                    counter_names::NET_DUP_DISCARDED,
                    netr.noise.dup_discarded as f64,
                );
                sink.counter(
                    0,
                    counter_names::NET_PARTITION_EPOCHS,
                    f64::from(netr.partitioned_epochs),
                );
            }

            let overhead = out.recovery.total_overhead_seconds();
            if overhead > faults.recovery_budget_secs {
                return Err(DistGnnError::RecoveryBudgetExceeded {
                    budget_secs: faults.recovery_budget_secs,
                    needed_secs: overhead,
                });
            }
            out.completed_epochs = epoch + 1;
        }
        Ok(PartitionedRunReport { elastic: out, net: netr })
    }

    /// Start a mitigation session for this engine. DistGNN observes one
    /// round per epoch, so the detector runs with the fast-reacting
    /// [`DetectorConfig::per_epoch`] tuning (the policy's `detector`
    /// field tunes per-step engines like DistDGL).
    pub fn mitigation(&self, policy: MitigationPolicy) -> DistGnnMitigation {
        DistGnnMitigation {
            policy,
            detector: StragglerDetector::new(
                self.config.cluster.machines,
                DetectorConfig::per_epoch(),
            ),
            base_sync_period: self.config.sync_period,
            sync_period: self.config.sync_period,
            banned: 0,
            rebalanced: None,
        }
    }

    /// Per-machine compute seconds of one epoch under the given slowdown
    /// factors — the detector's observation stream. Uses the engine's
    /// *base* views so the signal (and therefore the flag sequence) does
    /// not depend on what mitigation has already done.
    fn per_machine_compute_secs(&self, model: &ModelConfig, compute_factor: &[f64]) -> Vec<f64> {
        let cluster = &self.config.cluster;
        let mut secs = vec![0.0f64; cluster.machines as usize];
        for layer in 0..model.num_layers {
            let (in_dim, out_dim) = model.layer_dims(layer);
            for view in &self.views {
                let shape = BlockShape {
                    num_dst: view.num_masters(),
                    num_src: view.num_local_vertices(),
                    num_edges: view.num_local_edges(),
                };
                let flops = layer_train_flops(model.kind, shape, in_dim as u64, out_dim as u64);
                secs[view.machine as usize] +=
                    compute_time(&cluster.machine, flops) / compute_factor[view.machine as usize];
            }
        }
        secs
    }

    /// Run one epoch under a fault plan with the session's
    /// [`MitigationPolicy`] applied (DistGNN implements the
    /// `adaptive_sync` axis: adaptive cd-r + master rebalancing).
    ///
    /// Per epoch: the unmitigated fault path is priced, and — when
    /// earlier epochs left the session with adapted state — the epoch is
    /// priced again under that state; the cheaper run (epoch time plus
    /// recovery overhead) is adopted, so mitigation can never make an
    /// epoch worse. The detector then observes the *unmitigated* signals
    /// (detection is independent of mitigation — the flag sequence
    /// depends only on the fault plan) and the session adapts for the
    /// next epoch: the cd-r period is quadrupled while the network is
    /// flagged degraded and restored on recovery (staleness hurts
    /// convergence, which the cost model does not price, so the long
    /// period is reserved for brownouts), and the master role is
    /// migrated away from machines flagged persistently slow (back when
    /// they recover), paying the migration traffic up front in the
    /// epoch that commits the move.
    ///
    /// With an empty plan or a policy without `adaptive_sync` this is
    /// exactly [`DistGnnEngine::simulate_epoch_with_faults`].
    ///
    /// Contract: the adopted epoch's cost (wall time plus recovery
    /// overhead) plus any migration charged this epoch (reported in
    /// `mitigation.migration_seconds`) never exceeds the unmitigated
    /// epoch's cost. A migration commits migrate-then-run — the epoch
    /// executes on the rebalanced assignment and must beat the run
    /// adopted so far by more than the migration itself — so mitigated
    /// totals are never worse by construction.
    ///
    /// # Errors
    ///
    /// As [`DistGnnEngine::simulate_epoch_with_faults`].
    #[deprecated(note = "use `engine.run(&RunSpec::healthy().epochs(n).faults(plan).mitigate(policy))`")]
    pub fn simulate_epoch_mitigated(
        &self,
        epoch: u32,
        plan: &FaultPlan,
        session: &mut DistGnnMitigation,
    ) -> Result<MitigatedEpochReport, DistGnnError> {
        self.mitigated_epoch(epoch, plan, session)
    }

    /// One epoch under faults + mitigation — the `Mitigated` leg of
    /// [`DistGnnEngine::run`].
    fn mitigated_epoch(
        &self,
        epoch: u32,
        plan: &FaultPlan,
        session: &mut DistGnnMitigation,
    ) -> Result<MitigatedEpochReport, DistGnnError> {
        if plan.is_empty() || !session.policy.adaptive_sync {
            let base = self.faulty_epoch(epoch, plan)?;
            return Ok(MitigatedEpochReport {
                report: base.report,
                recovery: base.recovery,
                crashed_machines: base.crashed_machines,
                mitigation: MitigationReport::default(),
            });
        }

        let model = self.config.model;
        let k = self.config.cluster.machines;
        let mut mitigation = MitigationReport::default();

        // Candidate pricing runs with a disabled sink: only the adopted
        // configuration is re-run on the engine's real sink at the end,
        // so discarded probes leave no spans and the returned report is
        // identical to an untraced run by construction.
        self.trace.set_epoch(epoch);
        let probe = TraceSink::disabled();
        // Which configuration the epoch was adopted under — replayed
        // for the trace commit run.
        enum Adopted {
            Base,
            Session,
            Migrated,
        }
        let mut adopted = Adopted::Base;
        // The sync period the session candidate was priced with (the
        // detector may change `session.sync_period` further down).
        let session_sp = session.sync_period;

        let unmit = self.simulate_epoch_with_faults_using(
            epoch,
            plan,
            &self.views,
            &self.masters,
            self.config.sync_period,
            &probe,
        )?;
        let unmit_cost = unmit.report.epoch_time() + unmit.recovery.total_overhead_seconds();
        let unmit_sync = unmit.report.phases.sync;
        let candidate = if session.at_base_state() {
            None
        } else {
            let (masters, views) = session
                .rebalanced
                .as_ref()
                .map_or((&self.masters[..], &self.views[..]), |(m, v)| (&m[..], &v[..]));
            self.simulate_epoch_with_faults_using(
                epoch,
                plan,
                views,
                masters,
                session.sync_period,
                &probe,
            )
            .ok()
        };
        let mut chosen = match candidate {
            Some(c) => {
                let cost = c.report.epoch_time() + c.recovery.total_overhead_seconds();
                if cost < unmit_cost {
                    mitigation.time_saved_secs = unmit_cost - cost;
                    adopted = Adopted::Session;
                    c
                } else {
                    unmit
                }
            }
            None => unmit,
        };

        let compute_factor: Vec<f64> = (0..k).map(|m| plan.compute_factor(m, epoch)).collect();
        let times = self.per_machine_compute_secs(&model, &compute_factor);
        session.detector.observe_compute(&times);
        session.detector.observe_network(unmit_sync);

        let target = if session.detector.network_degraded() {
            session.base_sync_period.saturating_mul(4)
        } else {
            session.base_sync_period
        };
        if target != session.sync_period {
            session.sync_period = target;
            mitigation.sync_period_changes += 1;
        }

        // Ban set the detector would like: persistent stragglers out
        // (never all machines), recovered machines back in.
        let persist = session.detector.config().persist_rounds;
        let mut desired = session.banned;
        for m in 0..k {
            let bit = 1u64 << m;
            if session.detector.is_straggler(m)
                && session.detector.flagged_rounds(m) >= persist
                && desired & bit == 0
                && (desired | bit).count_ones() < k
            {
                desired |= bit;
            } else if desired & bit != 0 && !session.detector.is_straggler(m) {
                desired &= !bit;
            }
        }
        if desired != session.banned {
            let new_masters = if desired == 0 {
                self.masters.clone()
            } else {
                assign_masters_avoiding(self.partition, desired)
            };
            let old_masters =
                session.rebalanced.as_ref().map_or(&self.masters[..], |(m, _)| &m[..]);
            let moved = old_masters
                .iter()
                .zip(new_masters.iter())
                .filter(|(a, b)| a != b)
                .count() as u64;
            if moved == 0 {
                session.banned = desired;
                if desired == 0 {
                    session.rebalanced = None;
                }
            } else {
                // The owner role moves with its aggregate state: one
                // batched stream per machine on the (possibly degraded)
                // network of the epoch the migration runs in. The move
                // commits migrate-then-run: the migration is paid up
                // front and the epoch then executes on the rebalanced
                // assignment, so it is adopted only when migration plus
                // the rebalanced epoch beat the run adopted so far — a
                // single-epoch payback rule. Unprofitable moves
                // (network-bound configs, where sync dominates and
                // masters barely matter) are never charged, and a
                // rejected move is proposed again next epoch while the
                // straggler persists.
                let bytes = moved * per_vertex_state_bytes(&model);
                let net = plan.degraded_network(&self.config.cluster.network, epoch);
                let migration_secs = transfer_time(&net, bytes, u64::from(k));
                let views = build_views(self.graph, self.partition, &new_masters);
                let cand = self
                    .simulate_epoch_with_faults_using(
                        epoch,
                        plan,
                        &views,
                        &new_masters,
                        session.sync_period,
                        &probe,
                    )
                    .ok();
                let chosen_cost =
                    chosen.report.epoch_time() + chosen.recovery.total_overhead_seconds();
                if let Some(c) = cand {
                    let cost = c.report.epoch_time() + c.recovery.total_overhead_seconds();
                    if cost + migration_secs < chosen_cost {
                        mitigation.masters_migrated += moved;
                        mitigation.migration_bytes += bytes;
                        mitigation.migration_seconds += migration_secs;
                        mitigation.time_saved_secs = unmit_cost - cost - migration_secs;
                        session.banned = desired;
                        session.rebalanced =
                            if desired == 0 { None } else { Some((new_masters, views)) };
                        chosen = c;
                        adopted = Adopted::Migrated;
                        if self.trace.is_enabled() {
                            let t = self.trace.now();
                            self.trace.span(
                                0,
                                0,
                                TracePhase::Migration,
                                t,
                                migration_secs,
                                bytes,
                                0,
                            );
                            self.trace.counter(
                                0,
                                counter_names::MIGRATION_BYTES,
                                bytes as f64,
                            );
                            self.trace.advance(migration_secs);
                        }
                    }
                }
            }
        }

        // Commit run: replay the adopted configuration once on the real
        // sink. The engine is deterministic, so the replay performs the
        // exact arithmetic of `chosen` — the trace matches the returned
        // report and the report itself never touches a traced run.
        if self.trace.is_enabled() {
            let base = (&self.masters[..], &self.views[..]);
            let ((masters, views), sp) = match adopted {
                Adopted::Base => (base, self.config.sync_period),
                Adopted::Session => (
                    session.rebalanced.as_ref().map_or(base, |(m, v)| (&m[..], &v[..])),
                    session_sp,
                ),
                Adopted::Migrated => (
                    session.rebalanced.as_ref().map_or(base, |(m, v)| (&m[..], &v[..])),
                    session.sync_period,
                ),
            };
            let replay =
                self.simulate_epoch_with_faults_using(epoch, plan, views, masters, sp, &self.trace);
            debug_assert!(replay.is_ok(), "replay of an adopted epoch cannot fail");
        }

        Ok(MitigatedEpochReport {
            report: chosen.report,
            recovery: chosen.recovery,
            crashed_machines: chosen.crashed_machines,
            mitigation,
        })
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `simulate_*` wrappers stay exercised until removal.
    #![allow(deprecated)]

    use super::*;
    use gp_graph::generators::{rmat, RmatParams};
    use gp_partition::prelude::*;

    fn setup(k: u32) -> (Graph, EdgePartition, EdgePartition) {
        let g = rmat(RmatParams { scale: 9, edge_factor: 8, ..RmatParams::default() }, 7).unwrap();
        let random = RandomEdgePartitioner.partition_edges(&g, k, 1).unwrap();
        let hep = Hep::hep100().partition_edges(&g, k, 1).unwrap();
        (g, random, hep)
    }

    fn cfg(k: u32, f: usize, h: usize, layers: usize) -> DistGnnConfig {
        DistGnnConfig::paper(
            ModelConfig {
                kind: ModelKind::Sage,
                feature_dim: f,
                hidden_dim: h,
                num_layers: layers,
                num_classes: 8,
                seed: 0,
            },
            ClusterSpec::paper(k),
        )
    }

    #[test]
    fn better_partitioner_less_traffic_and_time() {
        let (g, random, hep) = setup(8);
        let c = cfg(8, 64, 64, 3);
        let r_rand = DistGnnEngine::builder(&g, &random).config(c).build().unwrap().simulate_epoch();
        let r_hep = DistGnnEngine::builder(&g, &hep).config(c).build().unwrap().simulate_epoch();
        assert!(
            r_hep.counters.total_network_bytes() < r_rand.counters.total_network_bytes(),
            "HEP traffic {} >= Random {}",
            r_hep.counters.total_network_bytes(),
            r_rand.counters.total_network_bytes()
        );
        assert!(r_hep.epoch_time() < r_rand.epoch_time());
        assert!(r_hep.total_memory() < r_rand.total_memory());
    }

    #[test]
    fn traffic_proportional_to_state_dims() {
        let (g, random, _) = setup(4);
        let small = DistGnnEngine::builder(&g, &random).config(cfg(4, 16, 16, 2)).build().unwrap().simulate_epoch();
        let large = DistGnnEngine::builder(&g, &random).config(cfg(4, 512, 512, 2)).build().unwrap().simulate_epoch();
        // Sync volume scales with state size; subtract the (identical
        // per-config) allreduce contribution before comparing? Allreduce
        // differs too (larger params) — the large config must dominate.
        assert!(
            large.counters.total_network_bytes() > 10 * small.counters.total_network_bytes()
        );
    }

    #[test]
    fn more_layers_more_memory() {
        let (g, random, _) = setup(4);
        let l2 = DistGnnEngine::builder(&g, &random).config(cfg(4, 64, 64, 2)).build().unwrap().simulate_epoch();
        let l4 = DistGnnEngine::builder(&g, &random).config(cfg(4, 64, 64, 4)).build().unwrap().simulate_epoch();
        assert!(l4.total_memory() > l2.total_memory());
    }

    #[test]
    fn cluster_mismatch_rejected() {
        let (g, random, _) = setup(4);
        assert!(matches!(
            DistGnnEngine::builder(&g, &random).config(cfg(8, 16, 16, 2)).build(),
            Err(DistGnnError::ClusterMismatch { .. })
        ));
    }

    #[test]
    fn non_sage_rejected() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.model.kind = ModelKind::Gat;
        assert!(matches!(
            DistGnnEngine::builder(&g, &random).config(c).build(),
            Err(DistGnnError::UnsupportedModel(_))
        ));
    }

    #[test]
    fn phases_all_positive() {
        let (g, random, _) = setup(4);
        let r = DistGnnEngine::builder(&g, &random).config(cfg(4, 64, 64, 2)).build().unwrap().simulate_epoch();
        assert!(r.phases.forward > 0.0);
        assert!(r.phases.backward > 0.0);
        assert!(r.phases.sync > 0.0);
        assert!(r.phases.optimizer > 0.0);
        assert!(!r.any_oom());
    }

    #[test]
    fn cdr_sync_period_amortises_traffic() {
        let (g, random, _) = setup(8);
        let base = cfg(8, 64, 64, 3);
        let mut cdr = base;
        cdr.sync_period = 4;
        let r1 = DistGnnEngine::builder(&g, &random).config(base).build().unwrap().simulate_epoch();
        let r4 = DistGnnEngine::builder(&g, &random).config(cdr).build().unwrap().simulate_epoch();
        // Sync phase shrinks ~4x (a small allreduce-excess term does not
        // scale with the period); compute is unchanged.
        assert!(
            r4.phases.sync < 0.35 * r1.phases.sync,
            "cd-4 sync {} vs cd-1 {}",
            r4.phases.sync,
            r1.phases.sync
        );
        assert_eq!(r4.phases.forward, r1.phases.forward);
        assert!(r4.counters.total_network_bytes() < r1.counters.total_network_bytes());
    }

    #[test]
    fn zero_sync_period_rejected() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.sync_period = 0;
        assert!(matches!(
            DistGnnEngine::builder(&g, &random).config(c).build(),
            Err(DistGnnError::InvalidConfig(_))
        ));
    }

    fn crash_plan(machine: u32, epoch: u32, step_frac: f64) -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Crash { machine, epoch, step_frac }],
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn empty_plan_bit_identical_to_baseline() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 3)).build().unwrap();
        let base = engine.simulate_epoch();
        let faulty = engine.simulate_epoch_with_faults(0, &FaultPlan::empty()).unwrap();
        assert_eq!(faulty.report.phases, base.phases);
        assert_eq!(faulty.report.counters, base.counters);
        assert_eq!(faulty.report.memory, base.memory);
        assert_eq!(faulty.report.oom_machines, base.oom_machines);
        assert_eq!(faulty.recovery, RecoveryReport::default());
        assert!(faulty.crashed_machines.is_empty());
    }

    #[test]
    fn same_plan_identical_results() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 2)).build().unwrap();
        let plan =
            FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 10, 3.0, 0xfa11));
        for epoch in 0..10 {
            let a = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let b = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_eq!(a.report.phases, b.report.phases);
            assert_eq!(a.report.counters, b.report.counters);
            assert_eq!(a.recovery, b.recovery);
        }
    }

    #[test]
    fn recovery_traffic_ordered_by_replication_factor() {
        // The acceptance criterion: lower RF ⇒ fewer replicated vertices
        // on the crashed machine ⇒ less replica-restore traffic. Sum over
        // crashing every machine once so the ordering does not hinge on
        // one partition's layout.
        let (g, random, hep) = setup(8);
        let c = cfg(8, 64, 64, 3);
        let e_rand = DistGnnEngine::builder(&g, &random).config(c).build().unwrap();
        let e_hep = DistGnnEngine::builder(&g, &hep).config(c).build().unwrap();
        assert!(
            hep.replication_factor() < random.replication_factor(),
            "test premise: HEP replicates less than Random"
        );
        let total = |e: &DistGnnEngine| -> u64 {
            (0..8u32)
                .map(|m| {
                    e.simulate_epoch_with_faults(1, &crash_plan(m, 1, 0.5))
                        .unwrap()
                        .recovery
                        .recovery_bytes
                })
                .sum()
        };
        let rand_bytes = total(&e_rand);
        let hep_bytes = total(&e_hep);
        assert!(
            hep_bytes < rand_bytes,
            "HEP (lower RF) recovery {hep_bytes} >= Random {rand_bytes}"
        );
    }

    #[test]
    fn checkpointing_bounds_lost_progress() {
        let (g, random, _) = setup(8);
        let mut c = cfg(8, 64, 64, 2);
        let no_ckpt =
            DistGnnEngine::builder(&g, &random).config(c).build().unwrap();
        c.checkpoint_every = 2;
        let with_ckpt = DistGnnEngine::builder(&g, &random).config(c).build().unwrap();
        let plan = crash_plan(3, 7, 0.25);
        let lost_none = no_ckpt.simulate_epoch_with_faults(7, &plan).unwrap().recovery;
        let lost_ckpt = with_ckpt.simulate_epoch_with_faults(7, &plan).unwrap().recovery;
        // Without checkpoints a crash at epoch 7 replays from scratch;
        // with a period of 2 at most ~2 epochs replay.
        assert!(lost_none.lost_progress_epochs > 7.0);
        assert!(lost_ckpt.lost_progress_epochs <= 2.0);
        assert!(lost_ckpt.reexecution_seconds < lost_none.reexecution_seconds);
        // The checkpointing run pays for checkpoints instead.
        let healthy = with_ckpt
            .simulate_epoch_with_faults(1, &crash_plan(3, 7, 0.25))
            .unwrap()
            .recovery;
        assert_eq!(healthy.checkpoints, 1, "epoch 1 ends a period-2 window");
        assert!(healthy.checkpoint_seconds > 0.0);
    }

    #[test]
    fn slowdown_and_degradation_stretch_phases() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 2)).build().unwrap();
        let base = engine.simulate_epoch();
        let plan = FaultPlan {
            events: vec![
                gp_cluster::FaultEvent::Slowdown {
                    machine: 0,
                    from_epoch: 0,
                    until_epoch: 1,
                    factor: 0.5,
                },
                gp_cluster::FaultEvent::Degradation {
                    from_epoch: 0,
                    until_epoch: 1,
                    bandwidth_factor: 0.5,
                    loss_rate: 0.1,
                },
            ],
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        let faulty = engine.simulate_epoch_with_faults(0, &plan).unwrap();
        assert!(faulty.report.phases.forward > base.phases.forward);
        assert!(faulty.report.phases.sync > base.phases.sync);
        assert!(faulty.recovery.retries > 0);
        assert!(faulty.recovery.retry_seconds > 0.0);
        // Out of the window the same plan costs nothing extra.
        let healthy = engine.simulate_epoch_with_faults(5, &plan).unwrap();
        assert_eq!(healthy.report.phases, base.phases);
    }

    #[test]
    fn recovery_budget_enforced() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 2)).build().unwrap();
        let mut plan = crash_plan(0, 4, 0.5);
        plan.recovery_budget_secs = 1e-12;
        assert!(matches!(
            engine.simulate_epoch_with_faults(4, &plan),
            Err(DistGnnError::RecoveryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn single_machine_crash_unrecoverable_without_checkpoints() {
        let (g, _, _) = setup(8);
        let random = RandomEdgePartitioner.partition_edges(&g, 1, 1).unwrap();
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(1, 16, 16, 2)).build().unwrap();
        let plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::Crash { machine: 0, epoch: 2, step_frac: 0.5 }],
            machines: 1,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        assert!(matches!(
            engine.simulate_epoch_with_faults(2, &plan),
            Err(DistGnnError::WorkerFailed { machine: 0, epoch: 2 })
        ));
    }

    #[test]
    fn corrupt_checkpoint_detected_and_falls_back() {
        let (g, random, _) = setup(8);
        let mut c = cfg(8, 64, 64, 2);
        c.checkpoint_every = 2;
        let engine = DistGnnEngine::builder(&g, &random).config(c).build().unwrap();
        let crash = gp_cluster::FaultEvent::Crash { machine: 3, epoch: 7, step_frac: 0.25 };
        let plan = |extra: &[(u32, u32)]| FaultPlan {
            events: std::iter::once(crash)
                .chain(extra.iter().map(|&(machine, epoch)| {
                    gp_cluster::FaultEvent::CheckpointCorruption { machine, epoch }
                }))
                .collect(),
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        // Checkpoints land at the end of epochs 1, 3, 5; the crash at
        // epoch 7 restores from epoch 5's.
        let a = engine.simulate_epoch_with_faults(7, &plan(&[])).unwrap().recovery;
        assert_eq!(a.corrupted_checkpoints, 0);
        assert!(
            (a.lost_progress_epochs - 1.25).abs() < 1e-9,
            "premise: machine 3 holds unreplicated vertices, lost = {}",
            a.lost_progress_epochs
        );
        // Epoch 5's checkpoint corrupt: detected, recovery walks back to
        // epoch 3's and pays the wasted read.
        let b = engine.simulate_epoch_with_faults(7, &plan(&[(3, 5)])).unwrap().recovery;
        assert_eq!(b.corrupted_checkpoints, 1);
        assert!((b.lost_progress_epochs - 3.25).abs() < 1e-9);
        assert!(b.restore_seconds > a.restore_seconds);
        // All checkpoints corrupt: replay from scratch.
        let c = engine
            .simulate_epoch_with_faults(7, &plan(&[(3, 5), (3, 3), (3, 1)]))
            .unwrap()
            .recovery;
        assert_eq!(c.corrupted_checkpoints, 3);
        assert!((c.lost_progress_epochs - 7.25).abs() < 1e-9);
        // Corruption of a checkpoint never read (other machine, or an
        // epoch that is not the restore point) changes nothing.
        let d = engine.simulate_epoch_with_faults(7, &plan(&[(2, 5), (3, 4)])).unwrap().recovery;
        assert_eq!(d, a);
    }

    #[test]
    fn mitigation_with_empty_plan_bit_identical() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 2)).build().unwrap();
        let base = engine.simulate_epoch();
        let mut session = engine.mitigation(MitigationPolicy::all());
        for epoch in 0..3 {
            let r = engine.simulate_epoch_mitigated(epoch, &FaultPlan::empty(), &mut session).unwrap();
            assert_eq!(r.report.phases, base.phases);
            assert_eq!(r.report.counters, base.counters);
            assert_eq!(r.mitigation, gp_cluster::MitigationReport::default());
        }
    }

    #[test]
    fn mitigation_policy_none_matches_plain_fault_path() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 2)).build().unwrap();
        let plan = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 10, 3.0, 0xfa11));
        let mut session = engine.mitigation(MitigationPolicy::none());
        for epoch in 0..10 {
            let plain = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let r = engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            assert_eq!(r.report.phases, plain.report.phases);
            assert_eq!(r.recovery, plain.recovery);
        }
    }

    fn brownout_plan() -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Degradation {
                from_epoch: 1,
                until_epoch: 6,
                bandwidth_factor: 0.25,
                loss_rate: 0.0,
            }],
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn adaptive_cdr_saves_time_under_brownout() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 3)).build().unwrap();
        let plan = brownout_plan();
        let mut session = engine.mitigation(MitigationPolicy::adaptive());
        let mut unmit_total = 0.0;
        let mut mit_total = 0.0;
        let mut mitigation = gp_cluster::MitigationReport::default();
        for epoch in 0..8 {
            unmit_total += engine.simulate_epoch_with_faults(epoch, &plan).unwrap().report.epoch_time();
            let r = engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            mit_total += r.report.epoch_time();
            mitigation.merge(&r.mitigation);
        }
        assert!(
            mit_total < unmit_total,
            "adaptive cd-r must save time: {mit_total} vs {unmit_total}"
        );
        // Lengthened when the brownout was detected, restored after it
        // cleared.
        assert!(mitigation.sync_period_changes >= 2, "{:?}", mitigation);
        assert_eq!(session.sync_period(), engine.config().sync_period);
        assert!(mitigation.time_saved_secs > 0.0);
    }

    #[test]
    fn master_rebalance_migrates_off_persistent_straggler() {
        // Master rebalancing moves *compute* (the dense layers run at
        // the owner), so it pays off in compute-bound configurations —
        // hidden = 512, the top of the paper's grid. In network-bound
        // ones the per-epoch guard keeps the unmitigated path instead.
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 512, 512, 3)).build().unwrap();
        let plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::Slowdown {
                machine: 2,
                from_epoch: 1,
                until_epoch: 10,
                factor: 0.25,
            }],
            machines: 8,
            epochs: 12,
            recovery_budget_secs: f64::INFINITY,
        };
        let mut session = engine.mitigation(MitigationPolicy::adaptive());
        let mut unmit_total = 0.0;
        let mut mit_total = 0.0;
        let mut mitigation = gp_cluster::MitigationReport::default();
        for epoch in 0..10 {
            unmit_total += engine.simulate_epoch_with_faults(epoch, &plan).unwrap().report.epoch_time();
            let r = engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            mit_total += r.report.epoch_time();
            mitigation.merge(&r.mitigation);
        }
        assert!(mitigation.masters_migrated > 0, "persistent straggler must trigger migration");
        assert!(mitigation.migration_bytes > 0);
        assert!(mitigation.migration_seconds > 0.0);
        assert!(
            mit_total + mitigation.migration_seconds < unmit_total,
            "rebalancing must pay for itself: {mit_total} + {} vs {unmit_total}",
            mitigation.migration_seconds
        );
        assert_ne!(session.banned_machines() & (1 << 2), 0, "machine 2 stays banned while slow");
    }

    #[test]
    fn mitigated_never_worse_and_deterministic() {
        let (g, random, _) = setup(8);
        let engine = DistGnnEngine::builder(&g, &random).config(cfg(8, 64, 64, 2)).build().unwrap();
        let plan = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 12, 4.0, 0xfa11));
        let run = || {
            let mut session = engine.mitigation(MitigationPolicy::all());
            (0..12)
                .map(|e| engine.simulate_epoch_mitigated(e, &plan, &mut session).unwrap())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        for (epoch, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(ra.report.phases, rb.report.phases, "epoch {epoch}");
            assert_eq!(ra.mitigation, rb.mitigation, "epoch {epoch}");
            let unmit = engine.simulate_epoch_with_faults(epoch as u32, &plan).unwrap();
            let unmit_cost = unmit.report.epoch_time() + unmit.recovery.total_overhead_seconds();
            let mit_cost = ra.report.epoch_time() + ra.recovery.total_overhead_seconds();
            assert!(
                mit_cost <= unmit_cost + 1e-9,
                "epoch {epoch}: mitigated {mit_cost} worse than unmitigated {unmit_cost}"
            );
        }
    }

    #[test]
    fn builder_requires_model_and_cluster() {
        let (g, random, _) = setup(4);
        assert!(matches!(
            DistGnnEngine::builder(&g, &random).build(),
            Err(DistGnnError::InvalidConfig(_))
        ));
        let c = cfg(4, 16, 16, 2);
        assert!(matches!(
            DistGnnEngine::builder(&g, &random).model(c.model).build(),
            Err(DistGnnError::InvalidConfig(_))
        ));
        assert!(DistGnnEngine::builder(&g, &random)
            .model(c.model)
            .cluster(c.cluster)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_field_setters_match_config() {
        let (g, random, _) = setup(4);
        let mut c = cfg(4, 16, 16, 2);
        c.sync_period = 4;
        c.checkpoint_every = 3;
        let via_config =
            DistGnnEngine::builder(&g, &random).config(c).build().unwrap().simulate_epoch();
        let via_setters = DistGnnEngine::builder(&g, &random)
            .model(c.model)
            .cluster(c.cluster)
            .sync_period(4)
            .checkpoint_every(3)
            .build()
            .unwrap()
            .simulate_epoch();
        assert_eq!(via_config.phases, via_setters.phases);
        assert_eq!(via_config.counters, via_setters.counters);
    }

    /// The load-bearing invariant: per-worker, per-phase span-duration
    /// sums equal the reported phase totals *exactly* (`==` on f64).
    fn assert_span_accounting(sink: &TraceSink, k: u32, phases: &EpochPhases) {
        for m in 0..k {
            assert_eq!(
                sink.worker_phase_seconds(m, TracePhase::Forward),
                phases.forward,
                "worker {m} forward"
            );
            assert_eq!(
                sink.worker_phase_seconds(m, TracePhase::Backward),
                phases.backward,
                "worker {m} backward"
            );
            assert_eq!(
                sink.worker_phase_seconds(m, TracePhase::Sync),
                phases.sync,
                "worker {m} sync"
            );
            assert_eq!(
                sink.worker_phase_seconds(m, TracePhase::Optimizer),
                phases.optimizer,
                "worker {m} optimizer"
            );
        }
    }

    #[test]
    fn healthy_span_sums_equal_phase_totals() {
        let (g, random, _) = setup(8);
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(cfg(8, 64, 64, 3))
            .trace(sink.clone())
            .build()
            .unwrap();
        let report = engine.simulate_epoch();
        assert_span_accounting(&sink, 8, &report.phases);
        // The simulated clock advanced by the epoch time. The clock
        // accumulates phase windows in interleaved order while
        // `epoch_time()` sums per-phase totals, so the two groupings of
        // the same addends may differ by rounding — equal to within a
        // few ulps, not bit-for-bit (the bit-exact invariant is the
        // per-worker span accounting asserted above).
        let drift = (sink.now() - report.epoch_time()).abs();
        assert!(
            drift <= 8.0 * f64::EPSILON * report.epoch_time(),
            "clock {} vs epoch time {}",
            sink.now(),
            report.epoch_time()
        );
        assert!(!sink.counters().is_empty());
    }

    #[test]
    fn tracing_leaves_reports_bit_identical() {
        let (g, random, _) = setup(8);
        let c = cfg(8, 64, 64, 3);
        let plain = DistGnnEngine::builder(&g, &random).config(c).build().unwrap();
        let traced = DistGnnEngine::builder(&g, &random)
            .config(c)
            .trace(TraceSink::enabled())
            .build()
            .unwrap();
        let a = plain.simulate_epoch();
        let b = traced.simulate_epoch();
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.memory, b.memory);
        let plan = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 6, 2.0, 0xfa11));
        for epoch in 0..6 {
            let fa = plain.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let fb = traced.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_eq!(fa.report.phases, fb.report.phases, "epoch {epoch}");
            assert_eq!(fa.report.counters, fb.report.counters, "epoch {epoch}");
            assert_eq!(fa.recovery, fb.recovery, "epoch {epoch}");
        }
    }

    #[test]
    fn faulty_span_sums_equal_phase_totals() {
        let (g, random, _) = setup(8);
        let mut c = cfg(8, 64, 64, 2);
        c.checkpoint_every = 2;
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(c)
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = FaultPlan {
            events: vec![
                gp_cluster::FaultEvent::Crash { machine: 3, epoch: 5, step_frac: 0.5 },
                gp_cluster::FaultEvent::Slowdown {
                    machine: 0,
                    from_epoch: 0,
                    until_epoch: 8,
                    factor: 0.5,
                },
                gp_cluster::FaultEvent::Degradation {
                    from_epoch: 2,
                    until_epoch: 6,
                    bandwidth_factor: 0.5,
                    loss_rate: 0.05,
                },
            ],
            machines: 8,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        };
        for epoch in 0..8 {
            sink.clear();
            let r = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_span_accounting(&sink, 8, &r.report.phases);
            // Checkpoint and recovery wall time is accounted by the
            // overhead spans (one checkpoint span per machine — the
            // write is a cluster barrier; recovery on the crashed one).
            let ckpt: f64 = (0..8)
                .map(|m| sink.worker_phase_seconds(m, TracePhase::Checkpoint))
                .fold(0.0, f64::max);
            assert_eq!(ckpt, r.recovery.checkpoint_seconds, "epoch {epoch}");
            let rec: f64 =
                (0..8).map(|m| sink.worker_phase_seconds(m, TracePhase::Recovery)).sum();
            let expect = r.recovery.restore_seconds + r.recovery.reexecution_seconds;
            assert!((rec - expect).abs() <= 1e-12 * expect.max(1.0), "epoch {epoch}");
        }
    }

    #[test]
    fn mitigated_span_sums_equal_adopted_report() {
        let (g, random, _) = setup(8);
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(cfg(8, 64, 64, 3))
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = brownout_plan();
        let mut session = engine.mitigation(MitigationPolicy::adaptive());
        for epoch in 0..8 {
            sink.clear();
            let r = engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            assert_span_accounting(&sink, 8, &r.report.phases);
            for s in sink.spans() {
                assert_eq!(s.epoch, epoch, "spans carry the simulated epoch");
            }
        }
    }

    #[test]
    fn same_seed_traces_are_identical() {
        let (g, random, _) = setup(8);
        let plan = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 4, 2.0, 0xfa11));
        let run = || {
            let sink = TraceSink::enabled();
            let engine = DistGnnEngine::builder(&g, &random)
                .config(cfg(8, 64, 64, 2))
                .trace(sink.clone())
                .build()
                .unwrap();
            let mut session = engine.mitigation(MitigationPolicy::adaptive());
            for epoch in 0..4 {
                engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            }
            (sink.spans(), sink.counters())
        };
        let (spans_a, counters_a) = run();
        let (spans_b, counters_b) = run();
        assert!(!spans_a.is_empty());
        assert_eq!(spans_a, spans_b);
        assert_eq!(counters_a, counters_b);
    }

    #[test]
    fn epoch_outcome_trait_unifies_report() {
        let (g, random, _) = setup(4);
        let engine =
            DistGnnEngine::builder(&g, &random).config(cfg(4, 64, 64, 2)).build().unwrap();
        let report = engine.simulate_epoch();
        let outcome: &dyn EpochOutcome = &report;
        assert_eq!(outcome.epoch_time(), report.phases.total());
        assert_eq!(outcome.total_bytes(), report.counters.total_network_bytes());
        let breakdown = outcome.phase_breakdown();
        assert_eq!(breakdown.len(), 4);
        assert_eq!(breakdown[0], ("forward", report.phases.forward));
        let total: f64 = breakdown.iter().map(|(_, s)| s).sum();
        assert!((total - report.epoch_time()).abs() < 1e-12);
    }

    /// The metrics-registry analogue of `assert_span_accounting`: the
    /// per-worker, per-phase histogram mass of a single-epoch snapshot
    /// must equal the engine's reported phase totals exactly.
    fn assert_metrics_accounting(sink: &TraceSink, k: u32, phases: &EpochPhases) {
        let snap = gp_cluster::MetricsSnapshot::from_sink(sink);
        for m in 0..k {
            assert_eq!(
                snap.phase_seconds(m, TracePhase::Forward),
                phases.forward,
                "worker {m} forward mass"
            );
            assert_eq!(
                snap.phase_seconds(m, TracePhase::Backward),
                phases.backward,
                "worker {m} backward mass"
            );
            assert_eq!(snap.phase_seconds(m, TracePhase::Sync), phases.sync, "worker {m} sync mass");
            assert_eq!(
                snap.phase_seconds(m, TracePhase::Optimizer),
                phases.optimizer,
                "worker {m} optimizer mass"
            );
        }
    }

    fn counter_name_set(sink: &TraceSink) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = sink.counters().iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    #[test]
    fn metrics_mass_equals_phase_totals_healthy() {
        let (g, random, _) = setup(8);
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(cfg(8, 64, 64, 3))
            .trace(sink.clone())
            .build()
            .unwrap();
        let report = engine.simulate_epoch();
        assert_metrics_accounting(&sink, 8, &report.phases);
        // Healthy path pins exactly the cumulative traffic counters.
        assert_eq!(
            counter_name_set(&sink),
            vec![counter_names::BYTES_RECEIVED, counter_names::BYTES_SENT]
        );
    }

    #[test]
    fn metrics_mass_equals_phase_totals_faulty() {
        let (g, random, _) = setup(8);
        let mut c = cfg(8, 64, 64, 2);
        c.checkpoint_every = 2;
        let sink = TraceSink::enabled();
        let engine =
            DistGnnEngine::builder(&g, &random).config(c).trace(sink.clone()).build().unwrap();
        let plan = crash_plan(3, 5, 0.5);
        for epoch in 0..8 {
            sink.clear();
            let r = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            assert_metrics_accounting(&sink, 8, &r.report.phases);
            // Per-path counter pinning: the fault path adds exactly the
            // checkpoint shard counters on checkpoint epochs and the
            // recovery counter on crash epochs.
            let mut expect = vec![counter_names::BYTES_RECEIVED, counter_names::BYTES_SENT];
            if (epoch + 1) % 2 == 0 {
                expect.push(counter_names::CHECKPOINT_BYTES);
            }
            if epoch == 5 {
                expect.push(counter_names::RECOVERY_BYTES);
            }
            expect.sort_unstable();
            assert_eq!(counter_name_set(&sink), expect, "epoch {epoch}");
            if epoch == 5 {
                let rec: f64 = sink
                    .counters()
                    .iter()
                    .filter(|ev| ev.name == counter_names::RECOVERY_BYTES)
                    .map(|ev| ev.value)
                    .sum();
                assert_eq!(rec, r.recovery.recovery_bytes as f64);
            }
        }
    }

    #[test]
    fn metrics_mass_equals_phase_totals_mitigated() {
        let (g, random, _) = setup(8);
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(cfg(8, 64, 64, 3))
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = brownout_plan();
        let mut session = engine.mitigation(MitigationPolicy::adaptive());
        for epoch in 0..8 {
            sink.clear();
            let r = engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            assert_metrics_accounting(&sink, 8, &r.report.phases);
        }
    }

    #[test]
    fn migration_adoption_emits_pinned_counter() {
        // Same compute-bound setup as
        // `master_rebalance_migrates_off_persistent_straggler`, traced:
        // an adopted migration must surface as a `migration_bytes`
        // counter event matching the mitigation report.
        let (g, random, _) = setup(8);
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(cfg(8, 512, 512, 3))
            .trace(sink.clone())
            .build()
            .unwrap();
        let plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::Slowdown {
                machine: 2,
                from_epoch: 1,
                until_epoch: 10,
                factor: 0.25,
            }],
            machines: 8,
            epochs: 12,
            recovery_budget_secs: f64::INFINITY,
        };
        let mut session = engine.mitigation(MitigationPolicy::adaptive());
        let mut migrated = 0u64;
        let mut migration_bytes = 0u64;
        for epoch in 0..10 {
            let r = engine.simulate_epoch_mitigated(epoch, &plan, &mut session).unwrap();
            migrated += r.mitigation.masters_migrated;
            migration_bytes += r.mitigation.migration_bytes;
        }
        assert!(migrated > 0, "test premise: the straggler triggers migration");
        let events: Vec<f64> = sink
            .counters()
            .iter()
            .filter(|ev| ev.name == counter_names::MIGRATION_BYTES)
            .map(|ev| ev.value)
            .collect();
        assert!(!events.is_empty(), "adopted migrations must emit the counter");
        assert_eq!(events.iter().sum::<f64>(), migration_bytes as f64);
        // Mitigation path pins exactly the healthy set plus migration.
        assert_eq!(
            counter_name_set(&sink),
            vec![
                counter_names::BYTES_RECEIVED,
                counter_names::BYTES_SENT,
                counter_names::MIGRATION_BYTES
            ]
        );
    }

    #[test]
    fn memory_balance_tracks_vertex_balance() {
        let (g, _, hep) = setup(8);
        let r = DistGnnEngine::builder(&g, &hep).config(cfg(8, 256, 16, 2)).build().unwrap().simulate_epoch();
        // HEP has a vertex imbalance; memory balance must reflect it
        // (paper Figure 5: the two correlate). At this test scale the
        // constant per-machine model state dilutes the correlation, so
        // assert direction and bound rather than equality.
        let vb = hep.vertex_balance();
        let mb = r.memory_balance();
        assert!(vb > 1.2, "test premise: HEP imbalanced, vb = {vb}");
        assert!(
            mb - 1.0 > 0.35 * (vb - 1.0),
            "memory balance {mb} does not track vertex balance {vb}"
        );
        assert!(mb <= vb + 0.05, "memory balance {mb} exceeds vertex balance {vb}");
    }

    // ---- Elastic membership ----

    fn churn_spec(epochs: u32) -> gp_cluster::ChurnSpec {
        gp_cluster::ChurnSpec {
            machines: 8,
            epochs,
            leave_prob: 0.05,
            rejoin_prob: 0.2,
            min_live: 4,
            seed: 0xe1a5,
        }
    }

    #[test]
    fn elastic_with_no_churn_or_faults_is_the_healthy_run() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let healthy = eng.simulate_epoch().epoch_time();
        let run = eng
            .simulate_run_elastic(
                5,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &CheckpointConfig::default(),
                ElasticOptions::default(),
            )
            .unwrap();
        assert_eq!(run.completed_epochs, 5);
        for &t in &run.epoch_seconds {
            assert_eq!(t, healthy, "stable fleet epochs are bit-identical to the healthy run");
        }
        assert_eq!(run.recovery, RecoveryReport::default());
        assert_eq!(run.leaves + run.joins + run.handoffs + run.rebalances, 0);
        assert_eq!(run.handoff_seconds, 0.0);
        for live in &run.live_workers {
            assert_eq!(live.len(), 8);
        }
    }

    #[test]
    fn elastic_run_is_deterministic() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 20, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(20));
        let ckpt = CheckpointConfig::periodic(4);
        let a = eng
            .simulate_run_elastic(20, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let b = eng
            .simulate_run_elastic(20, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        assert_eq!(a, b, "elastic runs replay bit-identically");
        assert!(a.leaves > 0, "premise: the schedule actually churns");
    }

    #[test]
    fn graceful_handoff_beats_the_crash_baseline() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 24, 8.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(24));
        let ckpt = CheckpointConfig::periodic(4);
        let elastic = eng
            .simulate_run_elastic(24, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let baseline = eng
            .simulate_run_elastic(24, &faults, &churn, &ckpt, ElasticOptions::no_handoff())
            .unwrap();
        assert!(elastic.handoffs > 0, "premise: leaves were handed off");
        assert_eq!(baseline.handoffs, 0);
        assert!(
            elastic.total_seconds() <= baseline.total_seconds(),
            "elastic {} should not exceed the crash-without-handoff baseline {}",
            elastic.total_seconds(),
            baseline.total_seconds()
        );
        // The baseline pays for leaves through recovery instead.
        assert!(baseline.recovery.crashes > elastic.recovery.crashes);
    }

    // ---- Partitioned runs (network fault model) ----

    fn net_spec(epochs: u32) -> gp_cluster::NetFaultSpec {
        gp_cluster::NetFaultSpec {
            partition_prob: 0.15,
            ..gp_cluster::NetFaultSpec::standard(8, epochs, 0x7a57_11e7)
        }
    }

    #[test]
    fn partitioned_with_empty_net_plan_is_the_elastic_run() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 20, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(20));
        let ckpt = CheckpointConfig::periodic(4);
        let elastic = eng
            .simulate_run_elastic(20, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let part = eng
            .simulate_run_partitioned(
                20,
                &faults,
                &churn,
                &NetFaultPlan::empty(),
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap();
        assert_eq!(part.elastic, elastic, "empty net plan reproduces the elastic run bit-for-bit");
        assert_eq!(part.net, NetRunReport::default());
        assert_eq!(part.total_seconds(), elastic.total_seconds());
    }

    #[test]
    fn partitioned_run_is_deterministic_and_exactly_once() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 20, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(20));
        let net = NetFaultPlan::generate(&net_spec(20));
        let ckpt = CheckpointConfig::periodic(4);
        let run = |_| {
            eng.simulate_run_partitioned(
                20,
                &faults,
                &churn,
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b, "partitioned runs replay bit-identically");
        assert!(a.net.windows > 0, "premise: the schedule actually partitions");
        assert!(a.net.noise.delivered > 0, "premise: noisy flows were charged");
        assert!(a.net.exactly_once(), "dedup must make delivery exactly-once-effective");
    }

    #[test]
    fn degraded_mode_never_worse_than_abort_baseline() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 24, 8.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(24));
        let net = NetFaultPlan::generate(&net_spec(24));
        let ckpt = CheckpointConfig::periodic(4);
        let degraded = eng
            .simulate_run_partitioned(
                24,
                &faults,
                &churn,
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap();
        let abort = eng
            .simulate_run_partitioned(
                24,
                &faults,
                &churn,
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::abort_only(),
            )
            .unwrap();
        assert!(degraded.net.partitioned_epochs > 0, "premise: a window armed");
        assert_eq!(abort.net.degraded_windows, 0, "baseline must always abort");
        assert!(
            degraded.total_seconds() <= abort.total_seconds() + 1e-9,
            "degraded run {} must not exceed the abort-and-recover baseline {}",
            degraded.total_seconds(),
            abort.total_seconds()
        );
        if degraded.net.degraded_windows > 0 {
            assert!(
                degraded.net.max_staleness <= net.staleness_bound,
                "staleness {} beyond the bound {}",
                degraded.net.max_staleness,
                net.staleness_bound
            );
            assert!(degraded.net.stale_served > 0, "degraded epochs serve stale replicas");
        }
    }

    #[test]
    fn noise_only_plan_keeps_training_progress_and_charges_transport() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let net = NetFaultPlan::generate(&gp_cluster::NetFaultSpec {
            partition_prob: 0.0,
            ..gp_cluster::NetFaultSpec::standard(8, 10, 0xb0)
        });
        assert!(net.windows.is_empty());
        let ckpt = CheckpointConfig::periodic(4);
        let plain = eng
            .simulate_run_elastic(
                10,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &ckpt,
                ElasticOptions::default(),
            )
            .unwrap();
        let noisy = eng
            .simulate_run_partitioned(
                10,
                &FaultPlan::empty(),
                &ChurnPlan::empty(),
                &net,
                &ckpt,
                ElasticOptions::default(),
                NetRunOptions::default(),
            )
            .unwrap();
        // Noise rides on top of the same schedule: epochs are untouched,
        // the transport overhead is strictly positive and separable.
        assert_eq!(noisy.elastic, plain);
        assert!(noisy.net.noise.retries > 0, "1% loss over many messages must retry");
        assert!(noisy.net.noise.extra_secs > 0.0);
        assert!(noisy.net.exactly_once());
        assert_eq!(
            noisy.total_seconds(),
            plain.total_seconds() + noisy.net.overhead_seconds()
        );
    }

    #[test]
    fn elastic_restore_detects_corrupt_snapshots() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        // One ungraceful leave at epoch 6; snapshots at 1, 3, 5.
        let churn = ChurnPlan {
            events: vec![gp_cluster::ChurnEvent::Leave { worker: 0, epoch: 6 }],
            machines: 8,
            epochs: 8,
        };
        let ckpt = CheckpointConfig::periodic(2);
        let clean_plan = FaultPlan::empty();
        let clean = eng
            .simulate_run_elastic(8, &clean_plan, &churn, &ckpt, ElasticOptions::no_handoff())
            .unwrap();
        assert_eq!(clean.recovery.corrupted_checkpoints, 0);
        // Corrupt worker 0's newest snapshot (epoch 5): restore detects
        // it, walks back to epoch 3 and loses two more epochs.
        let corrupt_plan = FaultPlan {
            events: vec![gp_cluster::FaultEvent::CheckpointCorruption { machine: 0, epoch: 5 }],
            machines: 8,
            epochs: 8,
            recovery_budget_secs: f64::INFINITY,
        };
        let corrupt = eng
            .simulate_run_elastic(8, &corrupt_plan, &churn, &ckpt, ElasticOptions::no_handoff())
            .unwrap();
        assert_eq!(corrupt.recovery.corrupted_checkpoints, 1);
        assert!(
            corrupt.recovery.lost_progress_epochs
                > clean.recovery.lost_progress_epochs
        );
        assert!(corrupt.recovery.recovery_bytes > clean.recovery.recovery_bytes);
        assert!(corrupt.recovery.restore_seconds > clean.recovery.restore_seconds);
    }

    #[test]
    fn elastic_rejoin_rebalances_under_migrate_then_commit() {
        let (g, _, hep) = setup(8);
        let eng = DistGnnEngine::builder(&g, &hep).config(cfg(8, 64, 64, 2)).build().unwrap();
        let churn = ChurnPlan {
            events: vec![
                gp_cluster::ChurnEvent::Leave { worker: 3, epoch: 1 },
                gp_cluster::ChurnEvent::Join { worker: 3, epoch: 3 },
            ],
            machines: 8,
            epochs: 10,
        };
        let run = eng
            .simulate_run_elastic(
                10,
                &FaultPlan::empty(),
                &churn,
                &CheckpointConfig::default(),
                ElasticOptions::default(),
            )
            .unwrap();
        assert_eq!(run.leaves, 1);
        assert_eq!(run.joins, 1);
        assert_eq!(run.live_workers[1], vec![0, 1, 2, 4, 5, 6, 7]);
        // The rejoin brings the slot straight back online...
        assert!(run.live_workers[3].contains(&3));
        assert_eq!(run.live_workers.last().unwrap().len(), 8);
        // ...and a global rebalance was either committed (bytes moved)
        // or priced and rejected every epoch since — never silent.
        assert!(run.rebalances + run.rejected_rebalances >= 1);
        if run.rebalances > 0 {
            assert!(run.handoff_bytes > 0);
        }
        // Once the fleet is whole and rebalanced, epochs settle back to
        // a steady state.
        let last = run.epoch_seconds.last().unwrap();
        assert_eq!(run.epoch_seconds[8], *last);
    }

    #[test]
    fn elastic_traced_report_is_identical_and_spans_cover_events() {
        let (g, _, hep) = setup(8);
        let faults = FaultPlan::generate(&gp_cluster::FaultSpec::standard(8, 16, 6.0, 0xfa11));
        let churn = ChurnPlan::generate(&churn_spec(16));
        let ckpt = CheckpointConfig::periodic(4);
        let untraced = DistGnnEngine::builder(&g, &hep)
            .config(cfg(8, 64, 64, 2))
            .build()
            .unwrap()
            .simulate_run_elastic(16, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        let sink = TraceSink::enabled();
        let traced_eng = DistGnnEngine::builder(&g, &hep)
            .config(cfg(8, 64, 64, 2))
            .trace(sink.clone())
            .build()
            .unwrap();
        let traced = traced_eng
            .simulate_run_elastic(16, &faults, &churn, &ckpt, ElasticOptions::default())
            .unwrap();
        assert_eq!(traced, untraced, "tracing never feeds back into the run");
        let spans = sink.spans();
        assert!(spans.iter().any(|s| s.phase == TracePhase::Migration));
        assert!(spans.iter().any(|s| s.phase == TracePhase::Checkpoint));
        // Per-epoch, per-worker span sums reproduce the recorded phase
        // totals exactly for workers live through the whole run.
        let snap = gp_cluster::MetricsSnapshot::from_sink(&sink);
        let always_live: Vec<u32> = (0..8)
            .filter(|w| traced.live_workers.iter().all(|l| l.contains(w)))
            .collect();
        assert!(!always_live.is_empty(), "premise: someone survives the whole soak");
        for &w in &always_live {
            for (i, phase) in [
                TracePhase::Forward,
                TracePhase::Backward,
                TracePhase::Sync,
                TracePhase::Optimizer,
            ]
            .iter()
            .enumerate()
            {
                let per_epoch: Vec<f64> =
                    traced.phase_seconds.iter().map(|e| e[i].1).collect();
                assert_eq!(
                    snap.phase_seconds(w, *phase),
                    gp_cluster::fold_exact(&per_epoch),
                    "worker {w} phase {} span sum drifts",
                    phase.name()
                );
            }
        }
    }

    fn stream_spec(batches: u32, seed: u64) -> gp_graph::StreamSpec {
        gp_graph::StreamSpec {
            batches,
            inserts_per_batch: 48,
            deletes_per_batch: 24,
            arrivals_per_batch: 4,
            edges_per_arrival: 3,
            seed,
        }
    }

    #[test]
    fn stream_run_reports_quality_per_batch() {
        let (g, random, _) = setup(4);
        let engine =
            DistGnnEngine::builder(&g, &random).config(cfg(4, 32, 32, 2)).build().unwrap();
        let spec = RunSpec::healthy().stream(stream_spec(5, 11), RepartitionPolicy::Never);
        let r = engine.run(&spec).unwrap().into_stream();
        assert_eq!(r.partitioner, "HDRF");
        assert_eq!(r.policy, "never");
        assert_eq!(r.batches.len(), 5);
        assert_eq!(r.repartitions(), 0);
        assert_eq!(r.total_partition_seconds(), 0.0);
        for (i, b) in r.batches.iter().enumerate() {
            assert_eq!(b.batch, i as u32);
            assert!(b.replication_factor >= 1.0, "RF {} < 1", b.replication_factor);
            assert!(b.balance >= 1.0);
            assert!(b.epoch_seconds > 0.0);
            assert!(!b.repartitioned);
            assert_eq!(b.partition_seconds, 0.0);
            assert!(b.mutations > 0);
        }
        // The graph ages: vertex arrivals grow the snapshot.
        assert!(r.batches.last().unwrap().num_vertices > g.num_vertices());
        // Deterministic: a second run is identical.
        let r2 = engine.run(&spec).unwrap().into_stream();
        assert_eq!(r, r2);
    }

    #[test]
    fn stream_threshold_no_worse_than_never_on_epoch_time() {
        let (g, random, _) = setup(4);
        let engine =
            DistGnnEngine::builder(&g, &random).config(cfg(4, 32, 32, 2)).build().unwrap();
        let spec = stream_spec(6, 3);
        let never = engine
            .run(&RunSpec::healthy().stream(spec.clone(), RepartitionPolicy::Never))
            .unwrap()
            .into_stream();
        let thresh = engine
            .run(&RunSpec::healthy()
                .stream(spec, RepartitionPolicy::Threshold { imbalance: 1.0 }))
            .unwrap()
            .into_stream();
        // The adoption gate probes epoch time and only adopts candidates
        // that are no worse — so the threshold policy can never lose to
        // `never` on training time at equal seeds.
        assert!(
            thresh.total_epoch_seconds() <= never.total_epoch_seconds() + 1e-12,
            "threshold {} > never {}",
            thresh.total_epoch_seconds(),
            never.total_epoch_seconds()
        );
        // Until the first adoption the two runs are the same partition.
        let first = thresh.batches.iter().position(|b| b.repartitioned);
        for i in 0..first.unwrap_or(thresh.batches.len()) {
            assert_eq!(thresh.batches[i].epoch_seconds, never.batches[i].epoch_seconds);
        }
        // An adopted repartition is charged simulated partitioner cost
        // and is never worse on replication factor than the incremental
        // state the `never` run kept.
        if let Some(i) = first {
            assert!(thresh.batches[i].partition_seconds > 0.0);
            assert!(
                thresh.batches[i].replication_factor
                    <= never.batches[i].replication_factor + 1e-12
            );
        }
    }

    #[test]
    fn stream_override_and_unknown_partitioner() {
        let (g, random, _) = setup(4);
        let engine =
            DistGnnEngine::builder(&g, &random).config(cfg(4, 32, 32, 2)).build().unwrap();
        let r = engine
            .run(&RunSpec::healthy()
                .stream(stream_spec(2, 5), RepartitionPolicy::Never)
                .stream_partitioner("DBH"))
            .unwrap()
            .into_stream();
        assert_eq!(r.partitioner, "DBH");
        // LDG is a vertex partitioner — not valid for the vertex-cut engine.
        let err = engine
            .run(&RunSpec::healthy()
                .stream(stream_spec(2, 5), RepartitionPolicy::Never)
                .stream_partitioner("LDG"))
            .unwrap_err();
        assert!(matches!(err, DistGnnError::InvalidConfig(_)));
    }

    #[test]
    fn stream_trace_counters_and_migration_spans() {
        let (g, random, _) = setup(4);
        let sink = TraceSink::enabled();
        let engine = DistGnnEngine::builder(&g, &random)
            .config(cfg(4, 32, 32, 2))
            .trace(sink.clone())
            .build()
            .unwrap();
        let r = engine
            .run(&RunSpec::healthy()
                .stream(stream_spec(4, 7), RepartitionPolicy::Periodic { every: 2 }))
            .unwrap()
            .into_stream();
        let counters = sink.counters();
        for name in [
            counter_names::STREAM_LIVE_EDGES,
            counter_names::STREAM_REPLICATION_FACTOR,
            counter_names::STREAM_BALANCE,
            counter_names::STREAM_REPARTITIONS,
            counter_names::STREAM_PARTITION_SECONDS,
        ] {
            assert_eq!(
                counters.iter().filter(|c| c.name == name).count(),
                r.batches.len(),
                "one {name} sample per batch"
            );
        }
        // Adopted repartitions appear as Migration spans.
        let n_migrations =
            sink.spans().iter().filter(|s| s.phase == TracePhase::Migration).count();
        assert_eq!(n_migrations as u32, r.repartitions());
        // Tracing is observational: an untraced engine reports the same.
        let bare =
            DistGnnEngine::builder(&g, &random).config(cfg(4, 32, 32, 2)).build().unwrap();
        let r2 = bare
            .run(&RunSpec::healthy()
                .stream(stream_spec(4, 7), RepartitionPolicy::Periodic { every: 2 }))
            .unwrap()
            .into_stream();
        assert_eq!(r, r2);
    }
}
