//! Real full-batch training.
//!
//! Executes the actual GraphSAGE forward/backward over the whole graph.
//! Data-parallel full-batch training with per-epoch gradient all-reduce
//! is mathematically identical to centralised training, so the math runs
//! once globally — while the per-machine cost accounting (FLOPs, sync
//! bytes, memory) is produced by [`crate::engine::DistGnnEngine::simulate_epoch`]
//! from the same partition, keeping simulated time and real learning
//! consistent.

use gp_graph::Graph;
use gp_tensor::init::synthetic_features;
use gp_tensor::{Aggregation, GnnModel, Optimizer, Tensor};

/// Loss/accuracy trajectory of a training run.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Training accuracy per epoch.
    pub accuracies: Vec<f64>,
}

impl TrainStats {
    /// Whether the loss decreased from start to finish.
    pub fn improved(&self) -> bool {
        match (self.losses.first(), self.losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Build the full-graph aggregation block (every vertex aggregates from
/// its message neighbours).
pub fn full_graph_block(graph: &Graph) -> Aggregation {
    let n = graph.num_vertices() as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut indices = Vec::new();
    for v in graph.vertices() {
        indices.extend_from_slice(graph.message_neighbors(v));
        offsets.push(indices.len() as u32);
    }
    Aggregation::new(n, offsets, indices)
}

/// Deterministic synthetic features for every vertex.
pub fn vertex_features(graph: &Graph, feature_dim: usize, seed: u64) -> Tensor {
    synthetic_features(graph.num_vertices() as usize, feature_dim, seed)
}

/// Structure-correlated synthetic labels: the label of `v` is the argmax
/// over the first `classes` feature dimensions of the mean feature of
/// `N(v) ∪ {v}` — learnable by a 1-layer GNN, non-trivial for an MLP.
pub fn vertex_labels(graph: &Graph, features: &Tensor, classes: usize) -> Vec<u32> {
    assert!(classes <= features.cols(), "classes must fit in the feature dim");
    let mut labels = Vec::with_capacity(graph.num_vertices() as usize);
    for v in graph.vertices() {
        let mut acc = vec![0.0f32; classes];
        let mut count = 1.0f32;
        for (a, &x) in acc.iter_mut().zip(features.row(v as usize).iter()) {
            *a += x;
        }
        for &u in graph.message_neighbors(v) {
            for (a, &x) in acc.iter_mut().zip(features.row(u as usize).iter()) {
                *a += x;
            }
            count += 1.0;
        }
        let label = acc
            .iter()
            .map(|x| x / count)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i as u32)
            .expect("classes >= 1");
        labels.push(label);
    }
    labels
}

/// Evaluate classification accuracy on a vertex subset using full-graph
/// inference (the standard evaluation protocol: no sampling at test
/// time).
pub fn evaluate(
    model: &mut GnnModel,
    graph: &Graph,
    features: &Tensor,
    labels: &[u32],
    subset: &[u32],
) -> f64 {
    if subset.is_empty() {
        return 0.0;
    }
    let block = full_graph_block(graph);
    let logits = model.forward_full(&block, features);
    let subset_logits = logits.select_rows(subset);
    let subset_labels: Vec<u32> = subset.iter().map(|&v| labels[v as usize]).collect();
    gp_tensor::loss::accuracy(&subset_logits, &subset_labels)
}

/// Train a model full-batch for `epochs` epochs; returns the loss curve.
pub fn train_full_batch<O: Optimizer>(
    model: &mut GnnModel,
    graph: &Graph,
    features: &Tensor,
    labels: &[u32],
    opt: &mut O,
    epochs: u32,
) -> TrainStats {
    let block = full_graph_block(graph);
    let blocks: Vec<&Aggregation> = std::iter::repeat_n(&block, model.num_layers()).collect();
    let mut losses = Vec::with_capacity(epochs as usize);
    let mut accuracies = Vec::with_capacity(epochs as usize);
    for _ in 0..epochs {
        let (loss, acc) = model.train_step(&blocks, features, labels, opt);
        losses.push(loss);
        accuracies.push(acc);
    }
    TrainStats { losses, accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::generators::{smallworld, SmallWorldParams};
    use gp_tensor::{Adam, ModelConfig, ModelKind};

    fn small_graph() -> Graph {
        smallworld(SmallWorldParams { n: 200, k: 3, rewire_prob: 0.1 }, 3).unwrap()
    }

    #[test]
    fn full_graph_block_shape() {
        let g = small_graph();
        let b = full_graph_block(&g);
        assert_eq!(b.num_dst(), 200);
        assert_eq!(b.num_src(), 200);
        assert_eq!(b.num_edges(), g.num_arcs() as usize);
    }

    #[test]
    fn labels_in_range_and_deterministic() {
        let g = small_graph();
        let x = vertex_features(&g, 16, 1);
        let l1 = vertex_labels(&g, &x, 4);
        let l2 = vertex_labels(&g, &x, 4);
        assert_eq!(l1, l2);
        assert!(l1.iter().all(|&l| l < 4));
        // All classes appear on a 200-vertex graph.
        for c in 0..4u32 {
            assert!(l1.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn full_batch_training_learns() {
        let g = small_graph();
        let x = vertex_features(&g, 16, 2);
        let labels = vertex_labels(&g, &x, 4);
        let mut model = GnnModel::new(ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: 16,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 4,
            seed: 5,
        });
        let mut opt = Adam::new(0.01);
        let stats = train_full_batch(&mut model, &g, &x, &labels, &mut opt, 60);
        assert!(stats.improved(), "loss did not improve: {:?}", &stats.losses[..3]);
        let final_acc = *stats.accuracies.last().unwrap();
        assert!(final_acc > 0.6, "accuracy only {final_acc}");
    }

    #[test]
    fn evaluate_on_held_out_split() {
        let g = small_graph();
        let x = vertex_features(&g, 16, 2);
        let labels = vertex_labels(&g, &x, 4);
        let split = gp_graph::VertexSplit::random(g.num_vertices(), 0.5, 0.2, 9).unwrap();
        let mut model = GnnModel::new(gp_tensor::ModelConfig {
            kind: gp_tensor::ModelKind::Sage,
            feature_dim: 16,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 4,
            seed: 5,
        });
        let before = evaluate(&mut model, &g, &x, &labels, &split.val);
        let mut opt = Adam::new(0.01);
        let _ = train_full_batch(&mut model, &g, &x, &labels, &mut opt, 60);
        let after = evaluate(&mut model, &g, &x, &labels, &split.val);
        // Validation accuracy improves (the labels are derived from the
        // graph+features, so they generalise across the split).
        assert!(after > before, "val acc {before} -> {after}");
        assert!(after > 0.5, "val acc {after}");
        assert_eq!(evaluate(&mut model, &g, &x, &labels, &[]), 0.0);
    }

    #[test]
    fn directed_graph_blocks_use_in_neighbors() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], true).unwrap();
        let b = full_graph_block(&g);
        assert_eq!(b.neighbors(0), &[] as &[u32]);
        assert_eq!(b.neighbors(1), &[0]);
        assert_eq!(b.neighbors(2), &[1]);
    }
}
