//! Replica-synchronisation traffic model.
//!
//! In edge-partitioned full-batch training every layer performs two
//! collective exchanges:
//!
//! 1. **Gather** — each non-master replica sends its partial neighbour
//!    aggregate (`state_dim` floats + a count) to the vertex's master;
//! 2. **Scatter** — the master sends the updated representation back to
//!    every non-master replica.
//!
//! A vertex with `r` replicas therefore moves `2 (r − 1) · state_bytes`
//! per layer, which is exactly why the replication factor `RF(P) =
//! Σ|V(pᵢ)| / |V|` governs network volume (paper Figure 3: R² ≥ 0.98).

use gp_cluster::ClusterCounters;
use gp_partition::EdgePartition;

use crate::view::NO_MASTER;

/// Per-machine traffic of one replica synchronisation round (one layer,
/// one direction — forward aggregates or backward gradients, which are
/// symmetric).
#[derive(Debug, Clone)]
pub struct SyncTraffic {
    /// Bytes sent by each machine.
    pub bytes_sent: Vec<u64>,
    /// Bytes received by each machine.
    pub bytes_received: Vec<u64>,
    /// Messages sent by each machine (batched per peer partition).
    pub messages: Vec<u64>,
}

impl SyncTraffic {
    /// Total volume moved (each byte counted once at the sender).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// The slowest machine's sent+received byte count — the straggler
    /// that gates the synchronisation barrier.
    pub fn straggler_bytes(&self) -> u64 {
        self.bytes_sent
            .iter()
            .zip(self.bytes_received.iter())
            .map(|(s, r)| s + r)
            .max()
            .unwrap_or(0)
    }
}

/// Compute the gather+scatter traffic of one layer with `state_dim`
/// floats of state per vertex in both directions.
pub fn layer_sync_traffic(
    partition: &EdgePartition,
    masters: &[u32],
    state_dim: u64,
) -> SyncTraffic {
    layer_sync_traffic_dims(partition, masters, state_dim, state_dim)
}

/// Compute one layer's sync traffic: non-master replicas gather
/// `gather_dim` floats to the master; the master scatters `scatter_dim`
/// floats back. `masters` comes from [`crate::view::assign_masters`].
pub fn layer_sync_traffic_dims(
    partition: &EdgePartition,
    masters: &[u32],
    gather_dim: u64,
    scatter_dim: u64,
) -> SyncTraffic {
    let k = partition.k() as usize;
    let gather_bytes = 4 * gather_dim;
    let scatter_bytes = 4 * scatter_dim;
    let mut bytes_sent = vec![0u64; k];
    let mut bytes_received = vec![0u64; k];
    // Message batching: machines exchange one message per peer per round;
    // count distinct (src, dst) pairs.
    let mut pair_seen = vec![false; k * k];
    let mut messages = vec![0u64; k];
    for v in 0..partition.num_vertices() {
        let mask = partition.replica_mask(v);
        if mask == 0 || mask.count_ones() == 1 {
            continue;
        }
        let master = masters[v as usize];
        debug_assert_ne!(master, NO_MASTER);
        let mut m = mask;
        while m != 0 {
            let p = m.trailing_zeros();
            m &= m - 1;
            if p == master {
                continue;
            }
            // Gather: replica p → master. Scatter: master → replica p.
            bytes_sent[p as usize] += gather_bytes;
            bytes_received[master as usize] += gather_bytes;
            bytes_sent[master as usize] += scatter_bytes;
            bytes_received[p as usize] += scatter_bytes;
            for (a, b) in [(p as usize, master as usize), (master as usize, p as usize)] {
                if !pair_seen[a * k + b] {
                    pair_seen[a * k + b] = true;
                    messages[a] += 1;
                }
            }
        }
    }
    SyncTraffic { bytes_sent, bytes_received, messages }
}

/// Add one sync round into the cluster counters.
pub fn record_sync(counters: &mut ClusterCounters, traffic: &SyncTraffic) {
    for m in 0..traffic.bytes_sent.len() {
        let c = counters.machine_mut(m as u32);
        c.bytes_sent += traffic.bytes_sent[m];
        c.bytes_received += traffic.bytes_received[m];
        c.messages += traffic.messages[m];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::Graph;

    fn cycle() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], false).unwrap()
    }

    fn masters(p: &EdgePartition) -> Vec<u32> {
        crate::view::assign_masters(p)
    }

    #[test]
    fn no_replication_no_traffic() {
        let g = cycle();
        let p = EdgePartition::new(&g, 1, vec![0; 4]).unwrap();
        let t = layer_sync_traffic(&p, &masters(&p), 64);
        assert_eq!(t.total_bytes(), 0);
    }

    #[test]
    fn traffic_proportional_to_replicas() {
        let g = cycle();
        // Edges (0,1),(1,2) -> p0; (2,3),(0,3) -> p1: vertices 0 and 2
        // have two replicas each.
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let t = layer_sync_traffic(&p, &masters(&p), 16);
        // Two replicated vertices, each moving 2 * (2-1) * 64 bytes.
        assert_eq!(t.total_bytes(), 2 * 2 * 64);
    }

    #[test]
    fn traffic_scales_with_state_dim() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let m = masters(&p);
        let t16 = layer_sync_traffic(&p, &m, 16).total_bytes();
        let t64 = layer_sync_traffic(&p, &m, 64).total_bytes();
        assert_eq!(t64, 4 * t16);
    }

    #[test]
    fn sent_equals_received_globally() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 1, 0, 1]).unwrap();
        let t = layer_sync_traffic(&p, &masters(&p), 8);
        let sent: u64 = t.bytes_sent.iter().sum();
        let recv: u64 = t.bytes_received.iter().sum();
        assert_eq!(sent, recv);
    }

    #[test]
    fn record_sync_accumulates() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let t = layer_sync_traffic(&p, &masters(&p), 16);
        let mut counters = ClusterCounters::new(2);
        record_sync(&mut counters, &t);
        record_sync(&mut counters, &t);
        assert_eq!(counters.total_network_bytes(), 2 * 2 * t.total_bytes());
    }
}
