//! Per-machine view of an edge partition.

use gp_graph::Graph;
use gp_partition::EdgePartition;

/// What one machine of the cluster holds under an edge partition.
#[derive(Debug, Clone)]
pub struct PartitionView {
    /// Machine / partition id.
    pub machine: u32,
    /// Edges assigned to this machine (canonical edge ids).
    pub local_edges: Vec<u32>,
    /// Vertices covered by this machine (sorted global ids) — every
    /// vertex incident to a local edge, i.e. the replica set `V(p)`.
    pub local_vertices: Vec<u32>,
    /// Vertices *mastered* by this machine: each replicated vertex has
    /// exactly one master replica that combines partial aggregates and
    /// runs the dense layer for it.
    pub master_vertices: Vec<u32>,
}

impl PartitionView {
    /// Number of covered vertices `|V(p)|`.
    pub fn num_local_vertices(&self) -> u64 {
        self.local_vertices.len() as u64
    }

    /// Number of local edges.
    pub fn num_local_edges(&self) -> u64 {
        self.local_edges.len() as u64
    }

    /// Number of mastered vertices.
    pub fn num_masters(&self) -> u64 {
        self.master_vertices.len() as u64
    }
}

/// Sentinel master for vertices without any incident edge.
pub const NO_MASTER: u32 = u32::MAX;

/// Assign every covered vertex a *master* replica, balancing the number
/// of masters per machine (DistGNN balances the owner role because the
/// dense-layer compute happens at the owner). Greedy: each vertex goes
/// to its least-loaded replica partition; deterministic by vertex order.
pub fn assign_masters(partition: &EdgePartition) -> Vec<u32> {
    assign_masters_avoiding(partition, 0)
}

/// [`assign_masters`] with a bitmask of machines to avoid: the mitigation
/// layer migrates the master role away from a persistently slow machine
/// by reassigning with that machine banned. A vertex replicated *only* on
/// banned machines keeps a banned master (the replica sets themselves
/// are fixed by the edge partition — only the owner role moves).
/// `banned = 0` reproduces [`assign_masters`] exactly.
pub fn assign_masters_avoiding(partition: &EdgePartition, banned: u64) -> Vec<u32> {
    let k = partition.k() as usize;
    let mut load = vec![0u64; k];
    let mut masters = vec![NO_MASTER; partition.num_vertices() as usize];
    for v in 0..partition.num_vertices() {
        let mask = partition.replica_mask(v);
        if mask == 0 {
            continue;
        }
        let candidates = if mask & !banned != 0 { mask & !banned } else { mask };
        let mut best = NO_MASTER;
        let mut best_load = u64::MAX;
        let mut m = candidates;
        while m != 0 {
            let p = m.trailing_zeros();
            if load[p as usize] < best_load {
                best_load = load[p as usize];
                best = p;
            }
            m &= m - 1;
        }
        masters[v as usize] = best;
        load[best as usize] += 1;
    }
    masters
}

/// Build all machine views for an edge partition using a master
/// assignment from [`assign_masters`].
pub fn build_views(graph: &Graph, partition: &EdgePartition, masters: &[u32]) -> Vec<PartitionView> {
    let k = partition.k();
    let mut views: Vec<PartitionView> = (0..k)
        .map(|machine| PartitionView {
            machine,
            local_edges: Vec::new(),
            local_vertices: Vec::new(),
            master_vertices: Vec::new(),
        })
        .collect();
    for e in 0..graph.num_edges() {
        let p = partition.edge_partition(e);
        views[p as usize].local_edges.push(e);
    }
    for v in graph.vertices() {
        let mask = partition.replica_mask(v);
        if mask == 0 {
            continue;
        }
        let mut m = mask;
        while m != 0 {
            let p = m.trailing_zeros();
            views[p as usize].local_vertices.push(v);
            m &= m - 1;
        }
        views[masters[v as usize] as usize].master_vertices.push(v);
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::Graph;
    use gp_partition::EdgePartition;

    fn cycle() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], false).unwrap()
    }

    fn views_of(g: &Graph, p: &EdgePartition) -> Vec<PartitionView> {
        let masters = assign_masters(p);
        build_views(g, p, &masters)
    }

    #[test]
    fn views_cover_all_edges_once() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let views = views_of(&g, &p);
        let total: usize = views.iter().map(|v| v.local_edges.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(views[0].local_edges, vec![0, 1]);
    }

    #[test]
    fn local_vertices_match_replica_sets() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let views = views_of(&g, &p);
        assert_eq!(views[0].local_vertices, vec![0, 1, 2]);
        assert_eq!(views[1].local_vertices, vec![0, 2, 3]);
    }

    #[test]
    fn each_vertex_mastered_exactly_once() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 1, 0, 1]).unwrap();
        let views = views_of(&g, &p);
        let mut masters: Vec<u32> = views.iter().flat_map(|v| v.master_vertices.clone()).collect();
        masters.sort_unstable();
        assert_eq!(masters, vec![0, 1, 2, 3]);
    }

    #[test]
    fn master_is_a_replica() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let views = views_of(&g, &p);
        for view in &views {
            for &v in &view.master_vertices {
                assert!(p.has_replica(v, view.machine), "master {v} not a replica");
            }
        }
    }

    #[test]
    fn masters_balanced() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let masters = assign_masters(&p);
        let c0 = masters.iter().filter(|&&m| m == 0).count();
        let c1 = masters.iter().filter(|&&m| m == 1).count();
        assert_eq!(c0 + c1, 4);
        assert!(c0.abs_diff(c1) <= 1, "masters {c0} vs {c1}");
    }

    #[test]
    fn avoiding_moves_masters_off_banned_machine() {
        let g = cycle();
        let p = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let base = assign_masters(&p);
        assert_eq!(assign_masters_avoiding(&p, 0), base, "banned = 0 is the identity");
        let avoided = assign_masters_avoiding(&p, 1 << 0);
        for v in 0..4u32 {
            if p.replica_mask(v) & !1 != 0 {
                assert_ne!(avoided[v as usize], 0, "vertex {v} mastered on banned machine");
            } else {
                assert_eq!(avoided[v as usize], 0, "only-banned vertex keeps its master");
            }
        }
    }

    #[test]
    fn isolated_vertex_has_no_master() {
        let g = Graph::from_edges(3, &[(0, 1)], false).unwrap();
        let p = EdgePartition::new(&g, 2, vec![0]).unwrap();
        let masters = assign_masters(&p);
        assert_eq!(masters[2], NO_MASTER);
    }
}
