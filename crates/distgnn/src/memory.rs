//! Per-machine memory-footprint model for full-batch training.
//!
//! Unlike classical graph processing, the vertex *state* dominates GNN
//! memory: features (`f` floats) plus one intermediate representation
//! per layer (`h` floats each, kept alive for the backward pass) for
//! **every covered vertex** — replicas included. This is why the
//! replication factor correlates almost perfectly with the memory
//! footprint (paper: R² ≥ 0.99).

use gp_tensor::ModelConfig;

use crate::view::PartitionView;

/// Breakdown of one machine's resident bytes during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Graph structure: local edges (two `u32` endpoints) + local vertex
    /// table (global id + local index).
    pub graph_bytes: u64,
    /// Input features of covered vertices.
    pub feature_bytes: u64,
    /// Intermediate representations: one per covered vertex per layer
    /// (inputs of the next layer / saved for backward), plus the
    /// gradient buffer of the same size during the backward pass.
    pub activation_bytes: u64,
    /// Model parameters, gradients and optimiser state.
    pub model_bytes: u64,
    /// Communication buffers for replica sync, sized for the machine's
    /// whole local vertex set (buffers are allocated per covered vertex
    /// so gather/scatter can index them directly).
    pub buffer_bytes: u64,
}

impl MemoryBreakdown {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.graph_bytes
            + self.feature_bytes
            + self.activation_bytes
            + self.model_bytes
            + self.buffer_bytes
    }
}

/// Estimate the footprint of one machine.
pub fn machine_memory(view: &PartitionView, model: &ModelConfig) -> MemoryBreakdown {
    let nv = view.num_local_vertices();
    let ne = view.num_local_edges();
    let f = model.feature_dim as u64;
    let graph_bytes = ne * 8 + nv * 8;
    let feature_bytes = nv * f * 4;
    // Output dims of each layer are stored for every covered vertex
    // (forward caches), and the backward pass holds a gradient of the
    // same shape (factor 2).
    let act_per_vertex: u64 =
        (0..model.num_layers).map(|i| model.layer_dims(i).1 as u64).sum();
    let activation_bytes = 2 * nv * act_per_vertex * 4;
    // Value + grad + two Adam moments.
    let model_bytes = gp_tensor::flops::model_param_count(model) * 4 * 4;
    // Sync buffers hold the widest state exchanged.
    let widest = (0..model.num_layers)
        .map(|i| model.layer_dims(i).1 as u64)
        .max()
        .unwrap_or(0)
        .max(f);
    let buffer_bytes = nv * widest * 4;
    MemoryBreakdown { graph_bytes, feature_bytes, activation_bytes, model_bytes, buffer_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_tensor::ModelKind;

    fn view(nv: usize, ne: usize) -> PartitionView {
        PartitionView {
            machine: 0,
            local_edges: (0..ne as u32).collect(),
            local_vertices: (0..nv as u32).collect(),
            master_vertices: (0..nv as u32).collect(),
        }
    }

    fn cfg(f: usize, h: usize, layers: usize) -> ModelConfig {
        ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: f,
            hidden_dim: h,
            num_layers: layers,
            num_classes: 8,
            seed: 0,
        }
    }

    #[test]
    fn memory_scales_with_vertices() {
        let small = machine_memory(&view(100, 500), &cfg(64, 64, 2)).total();
        let large = machine_memory(&view(200, 500), &cfg(64, 64, 2)).total();
        assert!(large > small);
    }

    #[test]
    fn memory_scales_with_feature_dim() {
        let small = machine_memory(&view(100, 500), &cfg(16, 64, 2));
        let large = machine_memory(&view(100, 500), &cfg(512, 64, 2));
        assert_eq!(large.feature_bytes, 32 * small.feature_bytes);
    }

    #[test]
    fn more_layers_more_activations() {
        let l2 = machine_memory(&view(100, 500), &cfg(64, 64, 2));
        let l4 = machine_memory(&view(100, 500), &cfg(64, 64, 4));
        assert!(l4.activation_bytes > l2.activation_bytes);
    }

    #[test]
    fn vertex_state_dominates_structure_at_large_dims() {
        // The paper's key memory observation: state, not structure,
        // dominates once features are large.
        let b = machine_memory(&view(1000, 5000), &cfg(512, 512, 3));
        assert!(b.feature_bytes + b.activation_bytes > 10 * b.graph_bytes);
    }
}
