//! Engine-level property tests for the DistGNN mitigation layer.
//!
//! Adaptive cd-r and master rebalancing are adopted per epoch only when
//! they beat the unmitigated epoch (and a migration must pay for itself
//! within the epoch that commits it), so mitigation can never make an
//! epoch more expensive. Unit tests pin this on hand-picked schedules;
//! here it is checked over randomised slowdown/brownout schedules,
//! together with empty-plan bit-identity and determinism.

// These properties step the engine epoch by epoch through a shared
// mitigation session, which only the deprecated per-epoch wrappers
// expose; they stay pinned here until the wrappers are removed.
#![allow(deprecated)]

use gp_cluster::{
    ClusterSpec, FaultEvent, FaultPlan, MitigationPolicy, MitigationReport,
};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_graph::generators::{community, CommunityParams};
use gp_graph::Graph;
use gp_partition::prelude::*;
use gp_tensor::{ModelConfig, ModelKind};
use proptest::prelude::*;

const K: u32 = 4;
const EPOCHS: u32 = 6;

fn setup() -> (Graph, EdgePartition) {
    let g = community(
        CommunityParams {
            n: 400,
            m: 4_000,
            communities: 4,
            intra_prob: 0.75,
            degree_exponent: 2.3,
        },
        5,
    )
    .unwrap();
    let part = Hdrf::default().partition_edges(&g, K, 1).unwrap();
    (g, part)
}

fn config() -> DistGnnConfig {
    DistGnnConfig::paper(
        ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: 32,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 8,
            seed: 0,
        },
        ClusterSpec::paper(K),
    )
}

/// Crash-free plan: transient stragglers plus an optional brownout —
/// the fault classes the adaptive policy reacts to.
fn stress_plan(
    slowdowns: &[(u32, f64, u32, u32)],
    brownout: Option<(u32, u32, f64)>,
) -> FaultPlan {
    let mut events: Vec<FaultEvent> = slowdowns
        .iter()
        .map(|&(machine, factor, from, until)| FaultEvent::Slowdown {
            machine,
            from_epoch: from,
            until_epoch: until,
            factor,
        })
        .collect();
    if let Some((from, until, bandwidth_factor)) = brownout {
        events.push(FaultEvent::Degradation {
            from_epoch: from,
            until_epoch: until,
            bandwidth_factor,
            loss_rate: 0.02,
        });
    }
    FaultPlan { events, machines: K, epochs: EPOCHS, recovery_budget_secs: f64::INFINITY }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mitigated_never_worse_and_deterministic(
        slowdowns in proptest::collection::vec(
            (0..K, 0.1f64..0.9, 0u32..3, 1u32..4),
            1..3,
        ),
        brownout in proptest::option::of((0u32..3, 1u32..4, 0.2f64..0.9)),
    ) {
        let spec: Vec<(u32, f64, u32, u32)> = slowdowns
            .into_iter()
            .map(|(m, f, from, len)| (m, f, from, from + len))
            .collect();
        let plan = stress_plan(
            &spec,
            brownout.map(|(from, len, bw)| (from, from + len, bw)),
        );
        let (g, part) = setup();
        let engine = DistGnnEngine::builder(&g, &part).config(config()).build().unwrap();
        let mut s1 = engine.mitigation(MitigationPolicy::adaptive());
        let mut s2 = engine.mitigation(MitigationPolicy::adaptive());
        for epoch in 0..EPOCHS {
            let unmit = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let a = engine.simulate_epoch_mitigated(epoch, &plan, &mut s1).unwrap();
            let b = engine.simulate_epoch_mitigated(epoch, &plan, &mut s2).unwrap();
            // The engine's contract: the adopted epoch plus any
            // migration charged in it (migrate-then-run) never costs
            // more than the unmitigated epoch.
            let mit_cost = a.report.epoch_time()
                + a.recovery.total_overhead_seconds()
                + a.mitigation.migration_seconds;
            let unmit_cost =
                unmit.report.epoch_time() + unmit.recovery.total_overhead_seconds();
            prop_assert!(
                mit_cost <= unmit_cost + 1e-9,
                "epoch {epoch}: mitigated {mit_cost} > unmitigated {unmit_cost}"
            );
            prop_assert_eq!(a.report.phases, b.report.phases);
            prop_assert_eq!(&a.report.counters, &b.report.counters);
            prop_assert_eq!(a.mitigation, b.mitigation);
        }
    }

    #[test]
    fn empty_plan_mitigated_is_bit_identical(_seed in 0u8..4) {
        let (g, part) = setup();
        let engine = DistGnnEngine::builder(&g, &part).config(config()).build().unwrap();
        let mut session = engine.mitigation(MitigationPolicy::adaptive());
        let base = engine.simulate_epoch();
        let mit = engine
            .simulate_epoch_mitigated(0, &FaultPlan::empty(), &mut session)
            .unwrap();
        prop_assert_eq!(mit.report.phases, base.phases);
        prop_assert_eq!(&mit.report.counters, &base.counters);
        prop_assert_eq!(mit.mitigation, MitigationReport::default());
    }
}
