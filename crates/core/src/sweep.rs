//! Hyper-parameter grid sweeps producing the paper's distributions.
//!
//! Every sweep has a `*_threaded` variant that runs one job per
//! partitioner on the `gp-exec` work-stealing pool. Each job is a pure
//! function of its inputs and writes into an index-addressed slot, so
//! the outcome vector is **bit-identical for every thread count**
//! (`Threads::serial()` is the old sequential path, kept as the
//! conformance oracle).

use gp_cluster::ClusterSpec;
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::{par_map, Parallelism, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_tensor::ModelKind;

use crate::config::PaperParams;
use crate::experiment::{TimedEdgePartition, TimedVertexPartition};

/// Per-partitioner outcome of a DistGNN grid sweep, aligned with the
/// grid order. All `*_pct` / speedup values are relative to `Random` at
/// the same grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct DistGnnGridOutcome {
    /// Partitioner name.
    pub name: String,
    /// Speedup over Random per grid point (>1 = faster).
    pub speedups: Vec<f64>,
    /// Memory footprint in % of Random per grid point.
    pub memory_pct: Vec<f64>,
    /// Network traffic in % of Random per grid point.
    pub traffic_pct: Vec<f64>,
    /// Absolute epoch times (simulated seconds).
    pub epoch_times: Vec<f64>,
    /// Absolute epoch times of the Random baseline.
    pub random_times: Vec<f64>,
}

impl DistGnnGridOutcome {
    /// Mean speedup over the grid.
    pub fn mean_speedup(&self) -> f64 {
        mean(&self.speedups)
    }

    /// Mean epoch time over the grid.
    pub fn mean_epoch_time(&self) -> f64 {
        mean(&self.epoch_times)
    }
}

/// Sweep the grid for every timed edge partition. `timed` must contain
/// the `Random` baseline.
///
/// # Panics
///
/// Panics if `Random` is missing from `timed`.
pub fn distgnn_grid(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    grid: &[PaperParams],
) -> Vec<DistGnnGridOutcome> {
    distgnn_grid_threaded(graph, timed, grid, Threads::serial())
}

/// [`distgnn_grid`] on the `gp-exec` pool: one job per partitioner,
/// outcomes in `timed` order, bit-identical for every `(sweep, engine)`
/// width pair.
///
/// # Panics
///
/// Panics if `Random` is missing from `timed`.
pub fn distgnn_grid_threaded(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    grid: &[PaperParams],
    par: impl Into<Parallelism>,
) -> Vec<DistGnnGridOutcome> {
    let _prof = gp_prof::scope("core.sweep.distgnn_grid");
    let par = par.into();
    let random = timed.iter().find(|t| t.name == "Random").expect("Random baseline required");
    let cluster = ClusterSpec::paper(random.partition.k());
    fn mk_engine<'g>(
        graph: &'g Graph,
        t: &'g TimedEdgePartition,
        cluster: ClusterSpec,
        engine_threads: Threads,
    ) -> DistGnnEngine<'g> {
        let config =
            DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), cluster);
        DistGnnEngine::builder(graph, &t.partition)
            .config(config)
            .threads(engine_threads)
            .build()
            .expect("valid config")
    }
    // Baseline reports per grid point, computed once up front.
    let random_engine = mk_engine(graph, random, cluster, par.engine);
    let base: Vec<_> = grid
        .iter()
        .map(|p| random_engine.simulate_epoch_for(&p.model(ModelKind::Sage)))
        .collect();

    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            let base = &base;
            move || {
                let engine = mk_engine(graph, t, cluster, par.engine);
                let mut speedups = Vec::with_capacity(grid.len());
                let mut memory_pct = Vec::with_capacity(grid.len());
                let mut traffic_pct = Vec::with_capacity(grid.len());
                let mut epoch_times = Vec::with_capacity(grid.len());
                let mut random_times = Vec::with_capacity(grid.len());
                for (params, base_report) in grid.iter().zip(base.iter()) {
                    let report = engine.simulate_epoch_for(&params.model(ModelKind::Sage));
                    let own = report.epoch_time();
                    let base_time = base_report.epoch_time();
                    speedups.push(base_time / own);
                    memory_pct.push(
                        100.0 * report.total_memory() as f64 / base_report.total_memory() as f64,
                    );
                    traffic_pct.push(
                        100.0 * report.counters.total_network_bytes() as f64
                            / base_report.counters.total_network_bytes() as f64,
                    );
                    epoch_times.push(own);
                    random_times.push(base_time);
                }
                DistGnnGridOutcome {
                    name: t.name.clone(),
                    speedups,
                    memory_pct,
                    traffic_pct,
                    epoch_times,
                    random_times,
                }
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Per-partitioner outcome of a DistDGL grid sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DistDglGridOutcome {
    /// Partitioner name.
    pub name: String,
    /// Speedup over Random per grid point.
    pub speedups: Vec<f64>,
    /// Remote input vertices in % of Random per grid point.
    pub remote_pct: Vec<f64>,
    /// Network traffic in % of Random per grid point.
    pub traffic_pct: Vec<f64>,
    /// Absolute epoch times.
    pub epoch_times: Vec<f64>,
    /// Absolute epoch times of the Random baseline.
    pub random_times: Vec<f64>,
}

impl DistDglGridOutcome {
    /// Mean speedup over the grid.
    pub fn mean_speedup(&self) -> f64 {
        mean(&self.speedups)
    }

    /// Mean epoch time over the grid.
    pub fn mean_epoch_time(&self) -> f64 {
        mean(&self.epoch_times)
    }
}

/// Sweep the grid for every timed vertex partition with one model kind.
/// Sampling is reused across grid points with the same layer count
/// (dimensions do not affect sampled blocks).
///
/// # Panics
///
/// Panics if `Random` is missing from `timed`.
pub fn distdgl_grid(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    grid: &[PaperParams],
    kind: ModelKind,
    global_batch_size: u32,
) -> Vec<DistDglGridOutcome> {
    distdgl_grid_threaded(graph, split, timed, grid, kind, global_batch_size, Threads::serial())
}

/// [`distdgl_grid`] on the `gp-exec` pool: one job per partitioner,
/// outcomes in `timed` order, bit-identical for every `(sweep, engine)`
/// width pair.
///
/// # Panics
///
/// Panics if `Random` is missing from `timed`.
pub fn distdgl_grid_threaded(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    grid: &[PaperParams],
    kind: ModelKind,
    global_batch_size: u32,
    par: impl Into<Parallelism>,
) -> Vec<DistDglGridOutcome> {
    let _prof = gp_prof::scope("core.sweep.distdgl_grid");
    let par = par.into();
    let random = timed.iter().find(|t| t.name == "Random").expect("Random baseline required");
    let k = random.partition.k();
    let cluster = ClusterSpec::paper(k);
    let layer_counts: Vec<usize> = {
        let mut l: Vec<usize> = grid.iter().map(|p| p.num_layers).collect();
        l.sort_unstable();
        l.dedup();
        l
    };

    // One engine + sampled epoch per (partitioner, layer count); the
    // engine is rebuilt per grid point (cheap) while samples are reused.
    let simulate = |t: &TimedVertexPartition| -> Vec<gp_distdgl::EpochSummary> {
        let mut summaries = Vec::with_capacity(grid.len());
        for &layers in &layer_counts {
            let probe = PaperParams { num_layers: layers, ..PaperParams::middle() };
            let mut config = DistDglConfig::paper(probe.model(kind), cluster);
            config.global_batch_size = global_batch_size;
            let engine = DistDglEngine::builder(graph, &t.partition, split)
                .config(config)
                .threads(par.engine)
                .build()
                .expect("valid config");
            let sampled = engine.sample_epoch(0);
            for params in grid.iter().filter(|p| p.num_layers == layers) {
                let mut config = DistDglConfig::paper(params.model(kind), cluster);
                config.global_batch_size = global_batch_size;
                let engine = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                summaries.push((params, engine.simulate_epoch_from(&sampled)));
            }
        }
        // Restore grid order.
        let mut ordered = Vec::with_capacity(grid.len());
        for params in grid {
            let pos = summaries
                .iter()
                .position(|(p, _)| *p == params)
                .expect("every grid point simulated");
            ordered.push(summaries.remove(pos).1);
        }
        ordered
    };

    let base = simulate(random);
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            let simulate = &simulate;
            let base = &base;
            move || {
                let own = simulate(t);
                let mut speedups = Vec::with_capacity(grid.len());
                let mut remote_pct = Vec::with_capacity(grid.len());
                let mut traffic_pct = Vec::with_capacity(grid.len());
                let mut epoch_times = Vec::with_capacity(grid.len());
                let mut random_times = Vec::with_capacity(grid.len());
                for (o, b) in own.iter().zip(base.iter()) {
                    speedups.push(b.epoch_time() / o.epoch_time());
                    remote_pct.push(pct(o.total_remote_vertices, b.total_remote_vertices));
                    traffic_pct.push(pct(
                        o.counters.total_network_bytes(),
                        b.counters.total_network_bytes(),
                    ));
                    epoch_times.push(o.epoch_time());
                    random_times.push(b.epoch_time());
                }
                DistDglGridOutcome {
                    name: t.name.clone(),
                    speedups,
                    remote_pct,
                    traffic_pct,
                    epoch_times,
                    random_times,
                }
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

fn pct(own: u64, base: u64) -> f64 {
    if base == 0 {
        if own == 0 {
            100.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * own as f64 / base as f64
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{timed_edge_partitions, timed_vertex_partitions};
    use gp_graph::{DatasetId, GraphScale};

    fn tiny_grid() -> Vec<PaperParams> {
        vec![
            PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 },
            PaperParams { feature_size: 64, hidden_dim: 16, num_layers: 3 },
        ]
    }

    #[test]
    fn distgnn_sweep_shapes() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        let grid = tiny_grid();
        let outcomes = distgnn_grid(&g, &timed, &grid);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert_eq!(o.speedups.len(), 2);
            if o.name == "Random" {
                for &s in &o.speedups {
                    assert!((s - 1.0).abs() < 1e-9, "Random speedup {s}");
                }
            }
        }
        // HEP-100 must beat the streaming baselines on average.
        let get = |n: &str| outcomes.iter().find(|o| o.name == n).unwrap().mean_speedup();
        assert!(get("HEP-100") > get("Random"));
        assert!(get("HEP-100") > 1.2, "HEP-100 speedup {}", get("HEP-100"));
    }

    #[test]
    fn distdgl_sweep_shapes() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed = timed_vertex_partitions(&g, 4, 1, &split.train);
        let grid = tiny_grid();
        let outcomes = distdgl_grid(&g, &split, &timed, &grid, ModelKind::Sage, 256);
        assert_eq!(outcomes.len(), 6);
        let get = |n: &str| outcomes.iter().find(|o| o.name == n).unwrap();
        for &s in &get("Random").speedups {
            assert!((s - 1.0).abs() < 1e-9);
        }
        // METIS reduces remote vertices vs Random.
        assert!(get("METIS").remote_pct.iter().all(|&p| p < 100.0));
    }

    #[test]
    fn distgnn_grid_threaded_is_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        let grid = tiny_grid();
        let serial = distgnn_grid(&g, &timed, &grid);
        for threads in [2usize, 4, 8] {
            let par = distgnn_grid_threaded(&g, &timed, &grid, gp_exec::Threads::new(threads));
            assert_eq!(par, serial, "threads = {threads}: f64 == on every field");
        }
    }

    #[test]
    fn distdgl_grid_threaded_is_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed = timed_vertex_partitions(&g, 4, 1, &split.train);
        let grid = tiny_grid();
        let serial = distdgl_grid(&g, &split, &timed, &grid, ModelKind::Sage, 256);
        for threads in [2usize, 4] {
            let par = distdgl_grid_threaded(
                &g,
                &split,
                &timed,
                &grid,
                ModelKind::Sage,
                256,
                gp_exec::Threads::new(threads),
            );
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn mean_speedup_folds_in_index_order() {
        // Order-sensitive values: summing in any order other than
        // 0,1,2,3 yields different f64 bits, so this pins the
        // aggregation order the parallel path must reproduce.
        let values = vec![1.0, 1e16, -1e16, 0.0];
        let expect = (((1.0 + 1e16) + -1e16) + 0.0) / 4.0;
        let reversed: f64 = values.iter().rev().sum::<f64>() / 4.0;
        assert!(expect != reversed, "values must actually be order-sensitive");
        let o = DistGnnGridOutcome {
            name: "x".into(),
            speedups: values.clone(),
            memory_pct: Vec::new(),
            traffic_pct: Vec::new(),
            epoch_times: values.clone(),
            random_times: Vec::new(),
        };
        assert_eq!(o.mean_speedup(), expect);
        assert_eq!(o.mean_epoch_time(), expect);
        let d = DistDglGridOutcome {
            name: "x".into(),
            speedups: values.clone(),
            remote_pct: Vec::new(),
            traffic_pct: Vec::new(),
            epoch_times: values,
            random_times: Vec::new(),
        };
        assert_eq!(d.mean_speedup(), expect);
        assert_eq!(d.mean_epoch_time(), expect);
    }

    #[test]
    fn empty_grid_means_are_zero_not_nan() {
        let o = DistGnnGridOutcome {
            name: "x".into(),
            speedups: Vec::new(),
            memory_pct: Vec::new(),
            traffic_pct: Vec::new(),
            epoch_times: Vec::new(),
            random_times: Vec::new(),
        };
        assert_eq!(o.mean_speedup(), 0.0);
        assert_eq!(o.mean_epoch_time(), 0.0);
        let d = DistDglGridOutcome {
            name: "x".into(),
            speedups: Vec::new(),
            remote_pct: Vec::new(),
            traffic_pct: Vec::new(),
            epoch_times: Vec::new(),
            random_times: Vec::new(),
        };
        assert_eq!(d.mean_speedup(), 0.0);
        assert_eq!(d.mean_epoch_time(), 0.0);
    }
}
