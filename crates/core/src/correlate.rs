//! Correlation statistics (paper Figures 3 and 5 report R²).

/// Pearson correlation coefficient of two equally-long samples.
/// Returns 0.0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sample lengths differ");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Coefficient of determination R² of a linear fit y ~ x.
pub fn r_squared(x: &[f64], y: &[f64]) -> f64 {
    let r = pearson(x, y);
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((r_squared(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        assert!((r_squared(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
