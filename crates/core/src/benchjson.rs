//! Shared writer for the `BENCH_*` JSON artifacts.
//!
//! Every benchmark snapshot this workspace commits
//! (`BENCH_diagnose.json`, `BENCH_chaos.json`, `BENCH_netchaos.json`,
//! `BENCH_stream.json`, `BENCH_perf.json`) is a single-line JSON
//! document with one grammar:
//!
//! * floats are fixed-precision `{:.9}` — valid under the strict
//!   `gnnpart jsonlint` number grammar and byte-stable across
//!   platforms;
//! * integers print as plain decimal, booleans as `true`/`false`;
//! * the top level is `{"bench":"<kind>", <section>: <rows>, ...}`
//!   terminated by a newline.
//!
//! The emitters in `diagnose`, `chaos`, `netchaos`, `stream_sweep` and
//! `perf` all build their rows through [`Obj`] so the grammar lives in
//! exactly one place; the pinned-schema unit test below freezes the
//! byte-level output shape.

/// Fixed-precision float for artifact cells: deterministic,
/// byte-stable across platforms, and valid under the strict JSON
/// number grammar (no `inf`/`NaN`, no bare `.5`).
pub fn fmt9(x: f64) -> String {
    format!("{x:.9}")
}

/// Minimal JSON string escaping (quote, backslash, control chars).
/// Partitioner and policy names are ASCII identifiers, but the writer
/// must not be able to emit invalid JSON for any input.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Single-line JSON object builder with typed field appenders. Field
/// order is the call order — the schema of every BENCH artifact is the
/// sequence of appender calls in its emitter.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Obj {
        Obj { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    /// A string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// A float field in the fixed `{:.9}` grammar.
    pub fn f9(mut self, key: &str, value: f64) -> Obj {
        self.key(key);
        self.buf.push_str(&fmt9(value));
        self
    }

    /// An unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Obj {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// A boolean field.
    pub fn boolean(mut self, key: &str, value: bool) -> Obj {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// A pre-rendered JSON value (array, nested object).
    pub fn raw(mut self, key: &str, value: &str) -> Obj {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Close the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render pre-built JSON values as an array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Render an `f64` series as a JSON array in the `{:.9}` grammar.
pub fn f64_array(xs: &[f64]) -> String {
    let vals: Vec<String> = xs.iter().map(|&x| fmt9(x)).collect();
    format!("[{}]", vals.join(","))
}

/// The canonical top level of a BENCH artifact:
/// `{"bench":"<kind>",<name>:<value>,...}` + newline. Sections are
/// pre-rendered JSON values (usually [`array`]s of [`Obj`] rows).
pub fn bench_doc(kind: &str, sections: &[(&str, String)]) -> String {
    let mut out = format!("{{\"bench\":\"{}\"", escape(kind));
    for (name, value) in sections {
        out.push_str(&format!(",\"{name}\":{value}"));
    }
    out.push_str("}\n");
    out
}

/// Structural signature of a rendered document: every number replaced
/// by `#`. Two runs of the same deterministic workload must have equal
/// structures even when host-measured fields differ.
pub fn structure_of(doc: &str) -> String {
    gp_prof::redact_numbers(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_schema_bench_doc_shape() {
        // The frozen byte-level shape every BENCH artifact shares: a
        // change here is a schema break for committed artifacts and
        // downstream scripts (scripts/bench_diff.py, CI validators).
        let row = Obj::new()
            .str("partitioner", "HEP-100")
            .uint("epochs", 10)
            .f9("seconds", 1.5)
            .boolean("invariants_hold", true)
            .raw("series", &f64_array(&[0.25, 2.0]))
            .finish();
        assert_eq!(
            row,
            "{\"partitioner\":\"HEP-100\",\"epochs\":10,\"seconds\":1.500000000,\
             \"invariants_hold\":true,\"series\":[0.250000000,2.000000000]}"
        );
        let doc = bench_doc("example", &[("rows", array(&[row.clone(), row]))]);
        assert!(doc.starts_with("{\"bench\":\"example\",\"rows\":[{\"partitioner\":"));
        assert!(doc.ends_with("}]}\n"), "single line, newline-terminated: {doc:?}");
        assert_eq!(doc.lines().count(), 1);
    }

    #[test]
    fn fmt9_stays_inside_the_jsonlint_number_grammar() {
        assert_eq!(fmt9(0.0), "0.000000000");
        assert_eq!(fmt9(-1.25), "-1.250000000");
        assert_eq!(fmt9(1e-10), "0.000000000");
        for s in [fmt9(3.5), fmt9(-0.125), fmt9(1234.0)] {
            // No leading zeros beyond a single digit, no bare dots, no
            // exponent form — the strict-lint-safe subset.
            assert!(!s.starts_with('.') && !s.ends_with('.'), "{s}");
            assert!(!s.contains('e') && !s.contains('E'), "{s}");
            let unsigned = s.strip_prefix('-').unwrap_or(&s);
            assert!(
                !(unsigned.len() > 1 && unsigned.starts_with('0') && !unsigned.starts_with("0.")),
                "{s}"
            );
        }
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn structure_of_erases_measurements_only() {
        let a = bench_doc("perf", &[("rows", array(&[Obj::new().f9("wall", 0.123).finish()]))]);
        let b = bench_doc("perf", &[("rows", array(&[Obj::new().f9("wall", 9.876).finish()]))]);
        assert_eq!(structure_of(&a), structure_of(&b));
        assert_ne!(a, b);
    }
}
