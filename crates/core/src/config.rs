//! The paper's hyper-parameter grid (Table 3) and cluster sizes.

use gp_tensor::{ModelConfig, ModelKind};

/// Scale-out factors evaluated throughout the paper.
pub const SCALE_OUT_FACTORS: [u32; 4] = [4, 8, 16, 32];

/// Hidden dimensions of Table 3.
pub const HIDDEN_DIMS: [usize; 3] = [16, 64, 512];

/// Feature sizes of Table 3.
pub const FEATURE_SIZES: [usize; 3] = [16, 64, 512];

/// Layer counts of Table 3.
pub const NUM_LAYERS: [usize; 3] = [2, 3, 4];

/// Number of classes used for the synthetic node-classification task.
pub const NUM_CLASSES: usize = 16;

/// One point of the hyper-parameter grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PaperParams {
    /// Input feature size.
    pub feature_size: usize,
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Number of GNN layers.
    pub num_layers: usize,
}

impl PaperParams {
    /// The paper's "default" middle configuration.
    pub fn middle() -> Self {
        PaperParams { feature_size: 64, hidden_dim: 64, num_layers: 3 }
    }

    /// Convert into a model configuration.
    pub fn model(self, kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            feature_dim: self.feature_size,
            hidden_dim: self.hidden_dim,
            num_layers: self.num_layers,
            num_classes: NUM_CLASSES,
            seed: 0x6d6f,
        }
    }
}

/// The full Table-3 grid (27 combinations).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParamGrid;

impl ParamGrid {
    /// Iterate all 27 combinations.
    pub fn iter() -> impl Iterator<Item = PaperParams> {
        FEATURE_SIZES.into_iter().flat_map(|feature_size| {
            HIDDEN_DIMS.into_iter().flat_map(move |hidden_dim| {
                NUM_LAYERS
                    .into_iter()
                    .map(move |num_layers| PaperParams { feature_size, hidden_dim, num_layers })
            })
        })
    }

    /// A reduced grid (8 combinations) for quick runs: the extreme
    /// corners of every axis.
    pub fn corners() -> impl Iterator<Item = PaperParams> {
        [16usize, 512].into_iter().flat_map(|feature_size| {
            [16usize, 512].into_iter().flat_map(move |hidden_dim| {
                [2usize, 4]
                    .into_iter()
                    .map(move |num_layers| PaperParams { feature_size, hidden_dim, num_layers })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_27_points() {
        assert_eq!(ParamGrid::iter().count(), 27);
    }

    #[test]
    fn corners_has_8_points() {
        assert_eq!(ParamGrid::corners().count(), 8);
    }

    #[test]
    fn grid_covers_table3() {
        let all: Vec<PaperParams> = ParamGrid::iter().collect();
        for f in FEATURE_SIZES {
            for h in HIDDEN_DIMS {
                for l in NUM_LAYERS {
                    assert!(all.contains(&PaperParams {
                        feature_size: f,
                        hidden_dim: h,
                        num_layers: l
                    }));
                }
            }
        }
    }

    #[test]
    fn params_to_model() {
        let m = PaperParams::middle().model(ModelKind::Sage);
        assert_eq!(m.feature_dim, 64);
        assert_eq!(m.num_layers, 3);
        assert_eq!(m.num_classes, NUM_CLASSES);
    }
}
