//! # gp-core — the experimental study
//!
//! Ties the substrates together into the paper's experiment harness:
//!
//! * [`registry`] — the 12 partitioners of Table 2, constructible by
//!   name.
//! * [`config`] — the hyper-parameter grid of Table 3 and the scale-out
//!   factors.
//! * [`experiment`] — timed partitioning runs and engine invocations.
//! * [`sweep`] — grid sweeps producing speedup/memory distributions.
//! * [`fault_sweep`] — partitioner × failure-rate robustness sweeps
//!   under seeded fault injection, plus mitigated-vs-unmitigated
//!   comparisons of the straggler-mitigation layer (extension beyond
//!   the paper).
//! * [`trace_run`] — traced engine runs feeding the Chrome-JSON /
//!   phase-CSV exports of the `gnnpart trace` subcommand (extension).
//! * [`amortize`] — partitioning-time amortisation (Tables 4 and 5).
//! * [`advisor`] — EASE-style partitioner recommendation (extension).
//! * [`correlate`] — Pearson correlation / R² (Figures 3, 5).
//! * [`report`] — CSV and Markdown emitters for every figure and table.

pub mod advisor;
pub mod amortize;
pub mod config;
pub mod correlate;
pub mod experiment;
pub mod fault_sweep;
pub mod registry;
pub mod report;
pub mod sweep;
pub mod trace_run;

/// Convenience prelude.
pub mod prelude {
    pub use crate::advisor::{recommend_edge_partitioner, recommend_vertex_partitioner};
    pub use crate::amortize::epochs_to_amortize;
    pub use crate::config::{ParamGrid, PaperParams, SCALE_OUT_FACTORS};
    pub use crate::correlate::{pearson, r_squared};
    pub use crate::experiment::{
        timed_edge_partitions, timed_vertex_partitions, TimedEdgePartition, TimedVertexPartition,
    };
    pub use crate::fault_sweep::{
        distdgl_fault_sweep, distdgl_mitigation_sweep, distgnn_fault_sweep,
        distgnn_mitigation_sweep, fault_sweep_table, mitigation_stress_spec,
        mitigation_sweep_table, FaultSweepRow, MitigationSweepRow,
    };
    pub use crate::registry::{edge_partitioner, edge_partitioner_names, vertex_partitioner, vertex_partitioner_names};
    pub use crate::report::{Distribution, Table};
    pub use crate::trace_run::{distdgl_trace_run, distgnn_trace_run, phase_table};
}
