//! # gp-core — the experimental study
//!
//! Ties the substrates together into the paper's experiment harness:
//!
//! * [`registry`] — the 12 partitioners of Table 2, constructible by
//!   name.
//! * [`config`] — the hyper-parameter grid of Table 3 and the scale-out
//!   factors.
//! * [`experiment`] — timed partitioning runs and engine invocations.
//! * [`sweep`] — grid sweeps producing speedup/memory distributions.
//!   Every sweep (and the fault/mitigation/trace runners below) has a
//!   `*_threaded` variant running its cells on the `gp-exec`
//!   work-stealing pool; the variants accept
//!   `impl Into<gp_exec::Parallelism>`, so a bare `Threads` selects
//!   sweep-level fan-out only, while a full
//!   [`Parallelism`](gp_exec::Parallelism) additionally threads the
//!   engines' intra-epoch compute. Output is bit-identical for every
//!   `(sweep, engine)` width pair; the plain names are the
//!   `Threads::serial()` oracle.
//! * [`fault_sweep`] — partitioner × failure-rate robustness sweeps
//!   under seeded fault injection, plus mitigated-vs-unmitigated
//!   comparisons of the straggler-mitigation layer (extension beyond
//!   the paper).
//! * [`chaos`] — elastic-membership soak harness: every partitioner
//!   runs a multi-epoch churn + fault + checkpoint schedule through
//!   the engines' `.elastic(..)` `RunSpec` legs, with the elastic
//!   contract (determinism, trace transparency, never-worse handoffs,
//!   exact span sums) checked per row — behind `gnnpart chaos` and the
//!   `chaos` ablation (extension).
//! * [`stream_sweep`] — streaming dynamic-graph sweeps: every
//!   partitioner replays a seeded mutation stream under each
//!   repartition policy, with per-batch quality-decay curves, modeled
//!   repartition costs, recovered speedups, and the stream contract
//!   (determinism, trace transparency, never-worse adoption) checked
//!   per row — behind `gnnpart stream` and the `stream` ablation
//!   (extension).
//! * [`trace_run`] — traced engine runs feeding the Chrome-JSON /
//!   phase-CSV exports of the `gnnpart trace` subcommand (extension).
//! * [`diagnose`] — metrics aggregation and automated run diagnosis
//!   over traced runs: exact histogram-vs-report cross-checks, skew
//!   indices, straggler attribution, ranked causes of epoch time, and
//!   the Prometheus / markdown-report / skew-CSV artifacts behind
//!   `gnnpart diagnose` and the `diagnose` ablation (extension).
//! * [`perf`] — host-time benchmark harness: the pinned workload
//!   matrix behind `gnnpart bench` and the `perf` ablation, measuring
//!   real wall seconds, throughput and allocator high-water marks of
//!   the implementation itself via `gp-prof` (extension).
//! * [`amortize`] — partitioning-time amortisation (Tables 4 and 5).
//! * [`advisor`] — EASE-style partitioner recommendation (extension).
//! * [`correlate`] — Pearson correlation / R² (Figures 3, 5).
//! * [`report`] — CSV and Markdown emitters for every figure and table.

pub mod advisor;
pub mod amortize;
pub mod benchjson;
pub mod chaos;
pub mod config;
pub mod correlate;
pub mod diagnose;
pub mod experiment;
pub mod fault_sweep;
pub mod netchaos;
pub mod perf;
pub mod registry;
pub mod report;
pub mod stream_sweep;
pub mod sweep;
pub mod trace_run;

/// Convenience prelude.
pub mod prelude {
    pub use crate::advisor::{
        recommend_edge_partitioner, recommend_edge_partitioner_threaded,
        recommend_vertex_partitioner, recommend_vertex_partitioner_threaded,
    };
    pub use crate::amortize::epochs_to_amortize;
    pub use crate::chaos::{
        chaos_bench_json, chaos_churn_spec, chaos_table, distdgl_chaos_soak,
        distdgl_chaos_soak_threaded, distgnn_chaos_soak, distgnn_chaos_soak_threaded, ChaosRow,
    };
    pub use crate::config::{ParamGrid, PaperParams, SCALE_OUT_FACTORS};
    pub use crate::correlate::{pearson, r_squared};
    pub use crate::diagnose::{
        bench_json, diagnose_distdgl, diagnose_distdgl_runs, diagnose_distgnn,
        diagnose_distgnn_runs, diagnose_prometheus, diagnose_report, merged_snapshot, rank_causes,
        skew_table, summary_table, Cause, RunDiagnosis,
    };
    pub use crate::experiment::{
        timed_edge_partitions, timed_edge_partitions_threaded, timed_vertex_partitions,
        timed_vertex_partitions_threaded, TimedEdgePartition, TimedVertexPartition,
    };
    pub use crate::fault_sweep::{
        distdgl_fault_sweep, distdgl_fault_sweep_threaded, distdgl_mitigation_sweep,
        distdgl_mitigation_sweep_threaded, distgnn_fault_sweep, distgnn_fault_sweep_threaded,
        distgnn_mitigation_sweep, distgnn_mitigation_sweep_threaded, fault_sweep_table,
        mitigation_stress_spec, mitigation_sweep_table, FaultSweepRow, MitigationSweepRow,
    };
    pub use crate::netchaos::{
        distdgl_netchaos_soak, distdgl_netchaos_soak_threaded, distgnn_netchaos_soak,
        distgnn_netchaos_soak_threaded, netchaos_bench_json, netchaos_net_spec, netchaos_table,
        NetChaosRow,
    };
    pub use crate::perf::{
        perf_bench_json, perf_report_markdown, run_perf, PerfEngineRow, PerfGraphStats,
        PerfPartitionerRow, PerfReport, PerfSpec,
    };
    pub use crate::registry::{edge_partitioner, edge_partitioner_names, vertex_partitioner, vertex_partitioner_names};
    pub use crate::report::{Distribution, Table};
    pub use crate::stream_sweep::{
        distdgl_stream_sweep, distdgl_stream_sweep_threaded, distgnn_stream_sweep,
        distgnn_stream_sweep_threaded, stream_bench_json, stream_policies, stream_table,
        StreamSweepRow,
    };
    pub use crate::sweep::{
        distdgl_grid, distdgl_grid_threaded, distgnn_grid, distgnn_grid_threaded,
        DistDglGridOutcome, DistGnnGridOutcome,
    };
    pub use crate::trace_run::{
        distdgl_trace_run, distdgl_trace_runs, distgnn_trace_run, distgnn_trace_runs, phase_table,
    };
    pub use gp_exec::{
        par_map, par_map_indexed, CellPanic, ExecTiming, ParReport, Parallelism, Threads,
    };
}
