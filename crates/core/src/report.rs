//! Report emitters: CSV files and Markdown tables.

use std::io::Write;
use std::path::Path;

/// A simple column-oriented results table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (used as the file stem).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of string cells (pre-formatted numbers).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row.iter().map(|c| escape_csv(c)).collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Write `<dir>/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv<P: AsRef<Path>>(&self, dir: P) -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

fn escape_csv(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Five-number summary + mean of a sample (the paper's box plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Summarise a sample; returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        Some(Distribution {
            min: v[0],
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            max: v[v.len() - 1],
            mean: values.iter().sum::<f64>() / values.len() as f64,
        })
    }
}

/// Format a float with 3 significant decimals for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "x,y".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    fn markdown_renders() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a |"));
        assert!(md.contains("| 1 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("gp_core_report_test");
        let mut t = Table::new("file_test", &["x"]);
        t.push(vec!["5".into()]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("file_test.csv")).unwrap();
        assert!(content.contains("5"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn distribution_five_numbers() {
        let d = Distribution::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.p25, 2.0);
        assert_eq!(d.p75, 4.0);
    }

    #[test]
    fn distribution_empty_none() {
        assert!(Distribution::of(&[]).is_none());
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.1234");
        assert_eq!(fmt(3.14159), "3.14");
        assert_eq!(fmt(1234.5), "1234");
    }
}
