//! Host-time performance benchmark: the pinned workload matrix behind
//! `gnnpart bench` and the `perf` ablation.
//!
//! Unlike every other harness in this crate — whose outputs are
//! *simulated* seconds from the calibrated cost models and therefore
//! bit-deterministic — this module measures **host wall-clock time and
//! memory** of the implementation itself via [`gp_prof`]: how long the
//! generators, partitioners and engines take to run on this machine,
//! and how many bytes they allocate doing it. The numbers vary run to
//! run; the *structure* of the report (row set, field set, ordering)
//! is pinned so artifacts from two machines or two commits line up
//! row for row in `scripts/bench_diff.py`.
//!
//! The workload is deliberately frozen ([`PerfSpec::pinned`]): the OR
//! (Orkut-analogue) graph, `k = 8` parts, the Table-3 middle
//! hyper-parameters, one healthy epoch per engine — once at
//! `engine-threads 1` and once at `auto`, giving the pool speedup as a
//! free column. Simulated epoch seconds ride along so host cost can be
//! normalised against modeled cost, and the dual-width runs double as
//! a determinism check (`identical_across_widths`).

use gp_cluster::{ClusterSpec, RunSpec};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::Threads;
use gp_graph::{DatasetId, Graph, GraphScale, VertexSplit};
use gp_prof::{MemRegion, Profile};
use gp_tensor::ModelKind;

use crate::benchjson::{self, Obj};
use crate::config::PaperParams;
use crate::registry;

/// The frozen workload description. All fields are public so the CLI
/// can surface overrides (`--scale`, `--parts`), but the committed
/// baseline always uses [`PerfSpec::pinned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfSpec {
    /// Dataset to generate (pinned: OR — the densest analogue, so the
    /// partitioners and engines all do non-trivial work).
    pub dataset: DatasetId,
    /// Generation scale.
    pub scale: GraphScale,
    /// Number of parts / machines.
    pub k: u32,
    /// Seed for generation, partitioning and splits.
    pub seed: u64,
    /// Model hyper-parameters.
    pub params: PaperParams,
    /// DistDGL global batch size.
    pub global_batch: u32,
}

impl PerfSpec {
    /// The pinned benchmark workload at the given scale.
    pub fn pinned(scale: GraphScale) -> PerfSpec {
        PerfSpec {
            dataset: DatasetId::OR,
            scale,
            k: 8,
            seed: 0x9a9a,
            params: PaperParams::middle(),
            global_batch: 1024,
        }
    }
}

/// Host cost of generating the benchmark graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfGraphStats {
    /// Vertices generated.
    pub vertices: u32,
    /// Edges generated.
    pub edges: u32,
    /// Host wall seconds for generation.
    pub gen_seconds: f64,
    /// Peak live bytes above the pre-generation baseline.
    pub gen_peak_bytes: u64,
    /// Total bytes allocated during generation.
    pub gen_allocated_bytes: u64,
}

/// Host cost of one partitioner on the benchmark graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPartitionerRow {
    /// Registry name (e.g. `"HDRF"`).
    pub name: String,
    /// `"edge"` or `"vertex"`.
    pub family: &'static str,
    /// Host wall seconds for the partitioning call.
    pub seconds: f64,
    /// Edge throughput: graph edges / host seconds.
    pub edges_per_second: f64,
    /// Peak live bytes above the baseline at partitioner entry.
    pub peak_bytes: u64,
    /// Total bytes allocated by the call.
    pub allocated_bytes: u64,
    /// Allocation count of the call.
    pub allocs: u64,
}

/// Host cost of one healthy epoch of one engine over one partition,
/// measured at two pool widths.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEngineRow {
    /// `"distgnn"` or `"distdgl"`.
    pub engine: &'static str,
    /// Partitioner that produced the partition.
    pub partitioner: String,
    /// Host wall seconds at `engine-threads 1`.
    pub wall_seconds_t1: f64,
    /// Host wall seconds at `engine-threads auto`.
    pub wall_seconds_auto: f64,
    /// `wall_seconds_t1 / wall_seconds_auto` (≈ 1.0 on one core).
    pub pool_speedup: f64,
    /// Epoch throughput at auto width: `1 / wall_seconds_auto`.
    pub epochs_per_second: f64,
    /// Edge throughput at auto width: edges / `wall_seconds_auto`.
    pub edges_per_second: f64,
    /// *Simulated* epoch seconds from the cost model (identical at
    /// both widths — that identity is `identical_across_widths`).
    pub sim_epoch_seconds: f64,
    /// Peak live bytes above baseline during the auto-width run.
    pub peak_bytes: u64,
    /// Whether the t1 and auto epoch reports were bit-identical.
    pub identical_across_widths: bool,
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// The workload that was run.
    pub spec: PerfSpec,
    /// Graph-generation cost.
    pub graph: PerfGraphStats,
    /// One row per partitioner, edge family first, registry order.
    pub partitioners: Vec<PerfPartitionerRow>,
    /// One row per (engine, partitioner), DistGNN first.
    pub engines: Vec<PerfEngineRow>,
}

/// Guard against a sub-resolution timing reading zero: throughput
/// denominators clamp to one nanosecond.
fn per_second(units: f64, seconds: f64) -> f64 {
    units / seconds.max(1e-9)
}

/// Run the pinned workload matrix and return the report plus the
/// hierarchical host-time profile accumulated while it ran.
///
/// Profiling and memory accounting are force-enabled for the duration
/// and restored to their previous state afterwards; the profile
/// registry is reset on entry so the returned [`Profile`] covers
/// exactly this run.
///
/// # Panics
///
/// Panics if generation, a registered partitioner, or an engine build
/// fails — the pinned spec is valid for every registry entry.
pub fn run_perf(spec: &PerfSpec) -> (PerfReport, Profile) {
    let prof_was = gp_prof::is_enabled();
    let mem_was = gp_prof::mem_enabled();
    gp_prof::set_enabled(true);
    gp_prof::set_mem_enabled(true);
    gp_prof::reset();

    // Graph generation.
    let (graph, gstats) = {
        let _prof = gp_prof::scope("perf.graph_gen");
        let region = MemRegion::enter();
        let start = gp_prof::now();
        let graph = spec.dataset.generate(spec.scale).expect("pinned dataset generates");
        let seconds = start.elapsed_secs();
        let mem = region.finish();
        let stats = PerfGraphStats {
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            gen_seconds: seconds,
            gen_peak_bytes: mem.peak_delta_bytes,
            gen_allocated_bytes: mem.allocated_bytes,
        };
        (graph, stats)
    };
    let edges = f64::from(graph.num_edges());

    // Partitioners, serially (concurrent timings would contend).
    let mut partitioners = Vec::new();
    let mut edge_parts = Vec::new();
    for &name in registry::edge_partitioner_names() {
        let p = registry::edge_partitioner(name).expect("registered");
        let _prof = gp_prof::scope_label(|| format!("partition.{name}"));
        let region = MemRegion::enter();
        let start = gp_prof::now();
        let partition =
            p.partition_edges(&graph, spec.k, spec.seed).unwrap_or_else(|e| panic!("{name}: {e}"));
        let seconds = start.elapsed_secs();
        let mem = region.finish();
        partitioners.push(PerfPartitionerRow {
            name: name.to_string(),
            family: "edge",
            seconds,
            edges_per_second: per_second(edges, seconds),
            peak_bytes: mem.peak_delta_bytes,
            allocated_bytes: mem.allocated_bytes,
            allocs: mem.allocs,
        });
        edge_parts.push((name, partition));
    }
    let split =
        VertexSplit::paper_default(graph.num_vertices(), 0x5eed).expect("valid split");
    let mut vertex_parts = Vec::new();
    for &name in registry::vertex_partitioner_names() {
        let p = registry::vertex_partitioner(name, Some(split.train.clone()))
            .expect("registered");
        let _prof = gp_prof::scope_label(|| format!("partition.{name}"));
        let region = MemRegion::enter();
        let start = gp_prof::now();
        let partition = p
            .partition_vertices(&graph, spec.k, spec.seed)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let seconds = start.elapsed_secs();
        let mem = region.finish();
        partitioners.push(PerfPartitionerRow {
            name: name.to_string(),
            family: "vertex",
            seconds,
            edges_per_second: per_second(edges, seconds),
            peak_bytes: mem.peak_delta_bytes,
            allocated_bytes: mem.allocated_bytes,
            allocs: mem.allocs,
        });
        vertex_parts.push((name, partition));
    }

    // Engines: one healthy epoch per partition at both pool widths.
    let cluster = ClusterSpec::paper(spec.k);
    let mut engines = Vec::new();
    for (name, partition) in &edge_parts {
        let config = DistGnnConfig::paper(spec.params.model(ModelKind::Sage), cluster.clone());
        let run_at = |threads: Threads| {
            let engine = DistGnnEngine::builder(&graph, partition)
                .config(config.clone())
                .threads(threads)
                .build()
                .expect("valid config");
            let region = MemRegion::enter();
            let start = gp_prof::now();
            let report = engine
                .run(&RunSpec::healthy())
                .expect("healthy run")
                .into_healthy()
                .remove(0);
            (start.elapsed_secs(), region.finish(), report)
        };
        let (t1, _, report_t1) = run_at(Threads::serial());
        let (auto, mem, report_auto) = run_at(Threads::auto());
        engines.push(PerfEngineRow {
            engine: "distgnn",
            partitioner: name.to_string(),
            wall_seconds_t1: t1,
            wall_seconds_auto: auto,
            pool_speedup: t1 / auto.max(1e-9),
            epochs_per_second: per_second(1.0, auto),
            edges_per_second: per_second(edges, auto),
            sim_epoch_seconds: report_auto.epoch_time(),
            peak_bytes: mem.peak_delta_bytes,
            identical_across_widths: format!("{report_t1:?}") == format!("{report_auto:?}"),
        });
    }
    for (name, partition) in &vertex_parts {
        let mut config = DistDglConfig::paper(spec.params.model(ModelKind::Sage), cluster.clone());
        config.global_batch_size = spec.global_batch;
        let run_at = |threads: Threads| {
            let engine = DistDglEngine::builder(&graph, partition, &split)
                .config(config.clone())
                .threads(threads)
                .build()
                .expect("valid config");
            let region = MemRegion::enter();
            let start = gp_prof::now();
            let summary = engine
                .run(&RunSpec::healthy())
                .expect("healthy run")
                .into_healthy()
                .remove(0);
            (start.elapsed_secs(), region.finish(), summary)
        };
        let (t1, _, sum_t1) = run_at(Threads::serial());
        let (auto, mem, sum_auto) = run_at(Threads::auto());
        engines.push(PerfEngineRow {
            engine: "distdgl",
            partitioner: name.to_string(),
            wall_seconds_t1: t1,
            wall_seconds_auto: auto,
            pool_speedup: t1 / auto.max(1e-9),
            epochs_per_second: per_second(1.0, auto),
            edges_per_second: per_second(edges, auto),
            sim_epoch_seconds: sum_auto.epoch_time(),
            peak_bytes: mem.peak_delta_bytes,
            identical_across_widths: format!("{sum_t1:?}") == format!("{sum_auto:?}"),
        });
    }

    let profile = gp_prof::take_profile();
    gp_prof::set_enabled(prof_was);
    gp_prof::set_mem_enabled(mem_was);
    (PerfReport { spec: *spec, graph: gstats, partitioners, engines }, profile)
}

fn scale_name(scale: GraphScale) -> &'static str {
    match scale {
        GraphScale::Tiny => "tiny",
        GraphScale::Small => "small",
        GraphScale::Medium => "medium",
    }
}

/// Render the report as the single-line `BENCH_perf.json` document.
///
/// Values are host measurements and vary run to run; the *structure*
/// (see [`benchjson::structure_of`]) is identical across reruns,
/// machines and thread widths, which is what CI and
/// `scripts/bench_diff.py` key on.
pub fn perf_bench_json(report: &PerfReport) -> String {
    let graph = Obj::new()
        .uint("vertices", u64::from(report.graph.vertices))
        .uint("edges", u64::from(report.graph.edges))
        .f9("gen_seconds", report.graph.gen_seconds)
        .uint("gen_peak_bytes", report.graph.gen_peak_bytes)
        .uint("gen_allocated_bytes", report.graph.gen_allocated_bytes)
        .finish();
    let partitioners: Vec<String> = report
        .partitioners
        .iter()
        .map(|r| {
            Obj::new()
                .str("partitioner", &r.name)
                .str("family", r.family)
                .f9("seconds", r.seconds)
                .f9("edges_per_second", r.edges_per_second)
                .uint("peak_bytes", r.peak_bytes)
                .uint("allocated_bytes", r.allocated_bytes)
                .uint("allocs", r.allocs)
                .finish()
        })
        .collect();
    let engines: Vec<String> = report
        .engines
        .iter()
        .map(|r| {
            Obj::new()
                .str("engine", r.engine)
                .str("partitioner", &r.partitioner)
                .f9("wall_seconds_t1", r.wall_seconds_t1)
                .f9("wall_seconds_auto", r.wall_seconds_auto)
                .f9("pool_speedup", r.pool_speedup)
                .f9("epochs_per_second", r.epochs_per_second)
                .f9("edges_per_second", r.edges_per_second)
                .f9("sim_epoch_seconds", r.sim_epoch_seconds)
                .uint("peak_bytes", r.peak_bytes)
                .boolean("identical_across_widths", r.identical_across_widths)
                .finish()
        })
        .collect();
    let doc = Obj::new()
        .str("bench", "perf")
        .str("dataset", report.spec.dataset.name())
        .str("scale", scale_name(report.spec.scale))
        .uint("parts", u64::from(report.spec.k))
        .uint("seed", report.spec.seed)
        .uint("feature_size", report.spec.params.feature_size as u64)
        .uint("hidden_dim", report.spec.params.hidden_dim as u64)
        .uint("num_layers", report.spec.params.num_layers as u64)
        .uint("global_batch", u64::from(report.spec.global_batch))
        .raw("graph", &graph)
        .raw("partitioners", &benchjson::array(&partitioners))
        .raw("engines", &benchjson::array(&engines))
        .finish();
    format!("{doc}\n")
}

fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / f64::from(1u32 << 20))
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Human-readable markdown companion to [`perf_bench_json`]: the same
/// rows as tables, followed by the hierarchical host-time profile.
pub fn perf_report_markdown(report: &PerfReport, profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str("# Host-time benchmark\n\n");
    out.push_str(&format!(
        "Workload: `{}` at `{}` scale, k = {}, seed = {:#x}, \
         (f={}, h={}, L={}), global batch {}.\n\n",
        report.spec.dataset.name(),
        scale_name(report.spec.scale),
        report.spec.k,
        report.spec.seed,
        report.spec.params.feature_size,
        report.spec.params.hidden_dim,
        report.spec.params.num_layers,
        report.spec.global_batch,
    ));
    out.push_str(&format!(
        "Graph: {} vertices, {} edges, generated in {:.3} s \
         (peak {}, allocated {}).\n\n",
        report.graph.vertices,
        report.graph.edges,
        report.graph.gen_seconds,
        fmt_bytes(report.graph.gen_peak_bytes),
        fmt_bytes(report.graph.gen_allocated_bytes),
    ));

    out.push_str("## Partitioners\n\n");
    out.push_str("| partitioner | family | seconds | edges/s | peak | allocated | allocs |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
    for r in &report.partitioners {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.0} | {} | {} | {} |\n",
            r.name,
            r.family,
            r.seconds,
            r.edges_per_second,
            fmt_bytes(r.peak_bytes),
            fmt_bytes(r.allocated_bytes),
            r.allocs,
        ));
    }

    out.push_str("\n## Engines (one healthy epoch)\n\n");
    out.push_str(
        "| engine | partitioner | t1 s | auto s | speedup | epochs/s | \
         sim epoch s | peak | identical |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---|\n");
    for r in &report.engines {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.4} | {:.2} | {:.2} | {:.6} | {} | {} |\n",
            r.engine,
            r.partitioner,
            r.wall_seconds_t1,
            r.wall_seconds_auto,
            r.pool_speedup,
            r.epochs_per_second,
            r.sim_epoch_seconds,
            fmt_bytes(r.peak_bytes),
            if r.identical_across_widths { "yes" } else { "NO" },
        ));
    }

    out.push_str("\n## Host-time profile\n\n");
    if profile.is_empty() {
        out.push_str("(profiling disabled)\n");
    } else {
        out.push_str(&profile.to_markdown());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::structure_of;
    use std::sync::Mutex;

    /// `run_perf` resets and drains the process-global profile
    /// registry; run these tests one at a time so they do not steal
    /// each other's scopes.
    static PERF_GUARD: Mutex<()> = Mutex::new(());

    fn tiny_spec() -> PerfSpec {
        PerfSpec::pinned(GraphScale::Tiny)
    }

    #[test]
    fn tiny_perf_run_covers_the_full_matrix() {
        let _guard = PERF_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let (report, profile) = run_perf(&tiny_spec());
        assert_eq!(report.partitioners.len(), 12);
        assert_eq!(report.partitioners.iter().filter(|r| r.family == "edge").count(), 6);
        assert_eq!(report.engines.len(), 12);
        assert!(report.engines.iter().all(|r| r.identical_across_widths));
        assert!(report.engines.iter().all(|r| r.sim_epoch_seconds > 0.0));
        assert!(report.engines.iter().all(|r| r.wall_seconds_auto >= 0.0));
        assert!(report.graph.edges > 0);
        // The profile saw the run's own scopes.
        assert!(!profile.is_empty());
        let structure = profile.structure();
        assert!(structure.contains("perf.graph_gen"), "{structure}");
        assert!(structure.contains("partition."), "{structure}");
    }

    #[test]
    fn perf_json_structure_is_identical_across_reruns() {
        let _guard = PERF_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let (r1, _) = run_perf(&tiny_spec());
        let (r2, _) = run_perf(&tiny_spec());
        let j1 = perf_bench_json(&r1);
        let j2 = perf_bench_json(&r2);
        assert_eq!(structure_of(&j1), structure_of(&j2));
        assert!(j1.ends_with('\n'));
        // Simulated values (not host times) are bit-identical.
        for (a, b) in r1.engines.iter().zip(&r2.engines) {
            assert_eq!(a.sim_epoch_seconds, b.sim_epoch_seconds);
            assert_eq!(a.engine, b.engine);
            assert_eq!(a.partitioner, b.partitioner);
        }
    }

    #[test]
    fn perf_markdown_renders_every_row() {
        let _guard = PERF_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let (report, profile) = run_perf(&tiny_spec());
        let md = perf_report_markdown(&report, &profile);
        for r in &report.partitioners {
            assert!(md.contains(&format!("| {} |", r.name)), "{}", r.name);
        }
        assert!(md.contains("## Host-time profile"));
    }
}
