//! Traced engine runs.
//!
//! Builds an engine with an *enabled* span sink, runs a handful of
//! epochs — optionally under a fault plan and/or with the mitigation
//! layer active — and hands back the recorded [`TraceSink`], ready for
//! Chrome-JSON (`chrome://tracing`) or per-phase CSV export. These are
//! the helpers behind the `gnnpart trace` subcommand and the `phases`
//! ablation.
//!
//! Tracing is purely observational: the engines produce bit-identical
//! reports with and without a sink attached (asserted by the engine
//! test suites), so a traced run is also a faithful run.

use gp_cluster::{FaultPlan, MitigationPolicy, RunSpec, TraceSink};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::{par_map_indexed, ExecTiming, Parallelism, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_partition::{EdgePartition, VertexPartition};

use crate::experiment::{TimedEdgePartition, TimedVertexPartition};
use crate::report::Table;

/// Run `epochs` traced DistGNN epochs over `partition`.
///
/// `plan: None` (or an empty plan) is the healthy baseline; with
/// `mitigate` the full mitigation policy rides on top of the fault
/// path, exactly as in the robustness sweeps.
///
/// # Errors
///
/// Construction errors ([`gp_distgnn::DistGnnError::InvalidConfig`],
/// cluster mismatch) and fault-path errors (crash of the last replica
/// holder, recovery budget).
pub fn distgnn_trace_run(
    graph: &Graph,
    partition: &EdgePartition,
    config: DistGnnConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    mitigate: bool,
    engine_threads: Threads,
) -> Result<TraceSink, gp_distgnn::DistGnnError> {
    let sink = TraceSink::enabled();
    let engine = DistGnnEngine::builder(graph, partition)
        .config(config)
        .trace(sink.clone())
        .threads(engine_threads)
        .build()?;
    engine.run(&run_spec(epochs, plan, mitigate))?.strict()?;
    Ok(sink)
}

/// The [`RunSpec`] both trace runners share: `epochs` epochs, faults
/// when a plan is given, the full mitigation policy when `mitigate`.
fn run_spec(epochs: u32, plan: Option<&FaultPlan>, mitigate: bool) -> RunSpec {
    let mut spec = RunSpec::healthy().epochs(epochs);
    if let Some(plan) = plan {
        spec = spec.faults(plan.clone());
    } else if mitigate {
        // The mitigated scenario observes an explicit (empty) plan, like
        // the pre-RunSpec entry point did.
        spec = spec.faults(FaultPlan::empty());
    }
    if mitigate {
        spec = spec.mitigate(MitigationPolicy::all());
    }
    spec
}

/// Run `epochs` traced DistDGL epochs over `partition` / `split`.
///
/// Mirrors [`distgnn_trace_run`]; see there for the `plan` / `mitigate`
/// semantics.
///
/// # Errors
///
/// Construction and fault-path errors of
/// [`gp_distdgl::DistDglEngine`].
pub fn distdgl_trace_run(
    graph: &Graph,
    partition: &VertexPartition,
    split: &VertexSplit,
    config: DistDglConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    mitigate: bool,
    engine_threads: Threads,
) -> Result<TraceSink, gp_distdgl::DistDglError> {
    let sink = TraceSink::enabled();
    let engine = DistDglEngine::builder(graph, partition, split)
        .config(config)
        .trace(sink.clone())
        .threads(engine_threads)
        .build()?;
    engine.run(&run_spec(epochs, plan, mitigate))?.strict()?;
    Ok(sink)
}

/// One traced run per timed edge partition, on the `gp-exec` pool.
///
/// Every partitioner gets its own [`TraceSink`] (sinks are `Send` since
/// the buffer is `Arc<Mutex>`-shared), so cells never contend on one
/// buffer and the recorded spans per partitioner are bit-identical for
/// every thread count. Returns `(name, sink)` pairs in `timed` order
/// together with the pool's [`ExecTiming`] — the `phases` ablation uses
/// [`ExecTiming::speedup`] to print the runner's own
/// sequential-vs-parallel speedup.
///
/// # Errors
///
/// The first failing cell's error, in index order.
pub fn distgnn_trace_runs(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    config: DistGnnConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    mitigate: bool,
    par: impl Into<Parallelism>,
) -> Result<(Vec<(String, TraceSink)>, ExecTiming), gp_distgnn::DistGnnError> {
    let _prof = gp_prof::scope("core.trace.distgnn");
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                distgnn_trace_run(graph, &t.partition, config, epochs, plan, mitigate, par.engine)
            }
        })
        .collect();
    let report = par_map_indexed(par.sweep, jobs);
    let timing = report.timing();
    let mut sinks = Vec::with_capacity(timed.len());
    for (t, r) in timed.iter().zip(report.into_results()) {
        let sink = r.unwrap_or_else(|p| panic!("{p}"))?;
        sinks.push((t.name.clone(), sink));
    }
    Ok((sinks, timing))
}

/// One traced run per timed vertex partition; mirrors
/// [`distgnn_trace_runs`].
///
/// # Errors
///
/// The first failing cell's error, in index order.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_trace_runs(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    config: DistDglConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    mitigate: bool,
    par: impl Into<Parallelism>,
) -> Result<(Vec<(String, TraceSink)>, ExecTiming), gp_distdgl::DistDglError> {
    let _prof = gp_prof::scope("core.trace.distdgl");
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            let config = config.clone();
            move || {
                distdgl_trace_run(
                    graph,
                    &t.partition,
                    split,
                    config,
                    epochs,
                    plan,
                    mitigate,
                    par.engine,
                )
            }
        })
        .collect();
    let report = par_map_indexed(par.sweep, jobs);
    let timing = report.timing();
    let mut sinks = Vec::with_capacity(timed.len());
    for (t, r) in timed.iter().zip(report.into_results()) {
        let sink = r.unwrap_or_else(|p| panic!("{p}"))?;
        sinks.push((t.name.clone(), sink));
    }
    Ok((sinks, timing))
}

/// Per-(worker, phase) aggregate of a recorded trace as a results
/// [`Table`] (the same rows as [`TraceSink::phase_csv`], routed through
/// the report layer so sweeps and ablations can emit it like any other
/// artifact).
pub fn phase_table(name: &str, sink: &TraceSink) -> Table {
    let mut table =
        Table::new(name, &["worker", "phase", "spans", "seconds", "bytes", "flops"]);
    for row in sink.phase_rows() {
        table.push(vec![
            row.worker.to_string(),
            row.phase.name().to_string(),
            row.spans.to_string(),
            format!("{:.9}", row.seconds),
            row.bytes.to_string(),
            row.flops.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperParams;
    use crate::experiment::{timed_edge_partitions, timed_vertex_partitions};
    use gp_cluster::ClusterSpec;
    use gp_graph::{DatasetId, GraphScale};
    use gp_tensor::ModelKind;

    fn slowdown_plan() -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Slowdown {
                machine: 1,
                from_epoch: 0,
                until_epoch: 3,
                factor: 0.25,
            }],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn distgnn_trace_run_records_spans() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        let config = DistGnnConfig::paper(
            PaperParams::middle().model(ModelKind::Sage),
            ClusterSpec::paper(4),
        );
        let sink =
            distgnn_trace_run(&g, &timed[0].partition, config, 2, None, false, Threads::serial())
                .unwrap();
        assert!(!sink.spans().is_empty());
        assert!(sink.spans().iter().any(|s| s.epoch == 1), "both epochs recorded");
        let json = sink.to_chrome_json();
        assert!(json.starts_with('['));
        let table = phase_table("phase_breakdown", &sink);
        assert_eq!(table.headers.len(), 6);
        assert!(!table.rows.is_empty());
    }

    #[test]
    fn trace_runs_are_bit_identical_across_thread_counts() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        let config = DistGnnConfig::paper(
            PaperParams::middle().model(ModelKind::Sage),
            ClusterSpec::paper(4),
        );
        let (serial, serial_timing) =
            distgnn_trace_runs(&g, &timed, config, 2, None, false, gp_exec::Threads::serial())
                .unwrap();
        assert_eq!(serial_timing.threads, 1);
        assert_eq!(serial_timing.steals, 0);
        for threads in [2usize, 4] {
            let (par, _) = distgnn_trace_runs(
                &g, &timed, config, 2, None, false,
                gp_exec::Threads::new(threads),
            )
            .unwrap();
            assert_eq!(par.len(), serial.len());
            for ((pn, ps), (sn, ss)) in par.iter().zip(serial.iter()) {
                assert_eq!(pn, sn, "partitioner order preserved");
                assert_eq!(ps.spans(), ss.spans(), "threads = {threads}: spans bit-identical");
                assert_eq!(ps.phase_csv(), ss.phase_csv(), "CSV byte-identical");
            }
        }
    }

    #[test]
    fn distdgl_trace_run_composes_faults_and_mitigation() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed = timed_vertex_partitions(&g, 4, 1, &split.train);
        let mut config = DistDglConfig::paper(
            PaperParams::middle().model(ModelKind::Sage),
            ClusterSpec::paper(4),
        );
        config.global_batch_size = 256;
        let plan = slowdown_plan();
        let sink = distdgl_trace_run(
            &g,
            &timed[0].partition,
            &split,
            config,
            3,
            Some(&plan),
            true,
            Threads::serial(),
        )
        .unwrap();
        assert!(!sink.spans().is_empty());
        assert!(sink.spans().iter().any(|s| s.epoch == 2), "all epochs recorded");
        assert!(!sink.phase_csv().is_empty());
    }
}
