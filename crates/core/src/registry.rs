//! Partitioner registry: every algorithm of the paper's Table 2 by name.

use gp_partition::prelude::*;

/// Names of the six edge partitioners (vertex-cut), baseline first.
pub const EDGE_PARTITIONERS: [&str; 6] = ["Random", "DBH", "HDRF", "2PS-L", "HEP-10", "HEP-100"];

/// Names of the six vertex partitioners (edge-cut), baseline first.
pub const VERTEX_PARTITIONERS: [&str; 6] =
    ["Random", "LDG", "Spinner", "METIS", "ByteGNN", "KaHIP"];

/// All edge-partitioner names.
pub fn edge_partitioner_names() -> &'static [&'static str] {
    &EDGE_PARTITIONERS
}

/// All vertex-partitioner names.
pub fn vertex_partitioner_names() -> &'static [&'static str] {
    &VERTEX_PARTITIONERS
}

/// Names of the extension partitioners beyond the paper's roster.
pub const EXTENSION_EDGE_PARTITIONERS: [&str; 2] = ["Greedy", "Grid2D"];

/// Names of the extension vertex partitioners beyond the paper's roster.
pub const EXTENSION_VERTEX_PARTITIONERS: [&str; 1] = ["ReLDG"];

/// Construct an edge partitioner by name (paper roster + extensions).
pub fn edge_partitioner(name: &str) -> Option<Box<dyn EdgePartitioner>> {
    Some(match name {
        "Random" => Box::new(RandomEdgePartitioner),
        "DBH" => Box::new(Dbh),
        "HDRF" => Box::new(Hdrf::default()),
        "2PS-L" => Box::new(TwoPsL::default()),
        "HEP-10" => Box::new(Hep::hep10()),
        "HEP-100" => Box::new(Hep::hep100()),
        "Greedy" => Box::new(Greedy),
        "Grid2D" => Box::new(Grid2d),
        _ => return None,
    })
}

/// Construct a vertex partitioner by name (paper roster + extensions).
/// `train_vertices` parameterises
/// ByteGNN (the only training-aware partitioner); the others ignore it.
pub fn vertex_partitioner(
    name: &str,
    train_vertices: Option<Vec<u32>>,
) -> Option<Box<dyn VertexPartitioner>> {
    Some(match name {
        "Random" => Box::new(RandomVertexPartitioner),
        "LDG" => Box::new(Ldg::default()),
        "Spinner" => Box::new(Spinner::default()),
        "METIS" => Box::new(Metis::default()),
        "ByteGNN" => match train_vertices {
            Some(t) => Box::new(ByteGnn::with_train_vertices(t)),
            None => Box::new(ByteGnn::default()),
        },
        "KaHIP" => Box::new(Kahip::default()),
        "ReLDG" => Box::new(ReLdg::default()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_edge_name_resolves() {
        for name in EDGE_PARTITIONERS {
            let p = edge_partitioner(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.name(), name);
        }
        assert!(edge_partitioner("nope").is_none());
    }

    #[test]
    fn every_vertex_name_resolves() {
        for name in VERTEX_PARTITIONERS {
            let p = vertex_partitioner(name, None).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.name(), name);
        }
        assert!(vertex_partitioner("nope", None).is_none());
    }

    #[test]
    fn twelve_partitioners_total() {
        assert_eq!(EDGE_PARTITIONERS.len() + VERTEX_PARTITIONERS.len(), 12);
    }

    #[test]
    fn extensions_resolve_too() {
        for name in EXTENSION_EDGE_PARTITIONERS {
            assert!(edge_partitioner(name).is_some(), "{name}");
        }
        for name in EXTENSION_VERTEX_PARTITIONERS {
            assert!(vertex_partitioner(name, None).is_some(), "{name}");
        }
    }

    #[test]
    fn bytegnn_takes_train_set() {
        let p = vertex_partitioner("ByteGNN", Some(vec![1, 2, 3])).unwrap();
        assert_eq!(p.name(), "ByteGNN");
    }
}
