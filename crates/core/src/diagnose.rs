//! Automated run diagnosis on top of the metrics registry.
//!
//! Where [`crate::trace_run`] hands back raw spans, this module runs
//! the engines with an enabled sink, aggregates the trace through
//! [`MetricsRegistry`], **cross-checks every per-worker, per-phase
//! histogram total against the engine's own [`EpochOutcome`] breakdown
//! exactly** (f64 `==` — the PR-3 invariant discipline, extended from
//! spans to aggregated metrics), and derives the paper's Sections 5–6
//! analysis automatically: load-imbalance indices, communication skew,
//! straggler attribution, and a ranked breakdown of what the epoch time
//! was spent on (balanced compute vs compute imbalance vs fetch/sync
//! volume vs injected faults).
//!
//! Everything exported here — the markdown run report, the Prometheus
//! text, the skew tables — is deterministic: same inputs, same bytes,
//! at every thread count (the threaded runners place per-cell results
//! by index, and snapshot merging is order-insensitive by
//! construction).

use gp_cluster::{
    fold_exact, EpochOutcome, FaultPlan, MetricsRegistry, MetricsSnapshot, MitigationPolicy,
    RunSpec, TracePhase, TraceSink,
};
use gp_distdgl::{DistDglConfig, DistDglEngine, DistDglRunReport};
use gp_distgnn::{DistGnnConfig, DistGnnEngine, DistGnnRunReport};
use gp_exec::{par_map_indexed, ExecTiming, Parallelism, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_partition::{EdgePartition, VertexPartition};

use crate::experiment::{TimedEdgePartition, TimedVertexPartition};
use crate::report::Table;

/// One ranked contributor to a run's total epoch time.
#[derive(Debug, Clone, PartialEq)]
pub struct Cause {
    /// Stable label (e.g. `"compute imbalance"`).
    pub label: &'static str,
    /// Seconds of critical path attributed to this cause.
    pub seconds: f64,
}

/// The diagnosed outcome of one (partitioner, engine-path) run.
#[derive(Debug, Clone)]
pub struct RunDiagnosis {
    /// Run label (usually the partitioner name).
    pub name: String,
    /// Aggregated, mergeable metrics of the whole run.
    pub snapshot: MetricsSnapshot,
    /// Cluster size.
    pub workers: u32,
    /// Epochs simulated.
    pub epochs: u32,
    /// Exact canonical fold of the per-epoch engine epoch times.
    pub epoch_seconds: f64,
    /// Total network bytes over all epochs (exact integer sum).
    pub total_bytes: u64,
    /// Number of exact (f64 `==`) histogram-vs-outcome comparisons the
    /// cross-check performed (one per worker per reported phase).
    pub cross_checks: usize,
    /// Contributors to `epoch_seconds`, sorted descending.
    pub causes: Vec<Cause>,
}

/// Compute phases (per-worker work) vs communication phases (fetch /
/// sync volume) vs fault phases (injected-fault overhead) — the cause
/// taxonomy of the run report.
const COMPUTE_PHASES: [TracePhase; 5] = [
    TracePhase::Forward,
    TracePhase::Backward,
    TracePhase::Optimizer,
    TracePhase::Sampling,
    TracePhase::Update,
];
const COMM_PHASES: [TracePhase; 2] = [TracePhase::Sync, TracePhase::FeatureLoad];
const FAULT_PHASES: [TracePhase; 3] =
    [TracePhase::Checkpoint, TracePhase::Recovery, TracePhase::Migration];

/// Critical-path seconds of one phase: the maximum per-worker mass
/// (identical across workers for gated phases; the per-worker maximum
/// for recovery/migration, which land on specific machines).
fn phase_critical_seconds(snap: &MetricsSnapshot, workers: u32, phase: TracePhase) -> f64 {
    (0..workers).map(|w| snap.phase_seconds(w, phase)).fold(0.0, f64::max)
}

/// Rank the causes of a run's epoch time from its snapshot.
///
/// The engines gate every phase on the slowest worker, so a phase's
/// observed time scales with the *maximum* per-worker load; a perfectly
/// balanced phase would take `observed · mean/max`. That splits compute
/// time into a balanced part and an imbalance part using the FLOP
/// skew, with fetch/sync volume and injected-fault overhead as the
/// remaining contributors.
pub fn rank_causes(snap: &MetricsSnapshot, workers: u32) -> Vec<Cause> {
    let compute: f64 = COMPUTE_PHASES
        .iter()
        .map(|&p| phase_critical_seconds(snap, workers, p))
        .sum();
    let comm: f64 =
        COMM_PHASES.iter().map(|&p| phase_critical_seconds(snap, workers, p)).sum();
    let faults: f64 =
        FAULT_PHASES.iter().map(|&p| phase_critical_seconds(snap, workers, p)).sum();
    // Transport-level loss retries and partition handling are recorded
    // as a cumulative per-run counter, so the peak is the total.
    let net: f64 = (0..workers)
        .filter_map(|w| snap.counter(w, gp_cluster::trace::counter_names::NET_RETRY_SECONDS))
        .map(|c| c.peak)
        .fold(0.0, f64::max);
    let skew = snap.compute_skew();
    let balanced = if skew > 1.0 { compute / skew } else { compute };
    let mut causes = vec![
        Cause { label: "balanced compute", seconds: balanced },
        Cause { label: "compute imbalance", seconds: compute - balanced },
        Cause { label: "fetch/sync volume", seconds: comm },
        Cause { label: "injected faults & recovery", seconds: faults },
        Cause { label: "network loss/partition", seconds: net },
    ];
    causes.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then(a.label.cmp(b.label)));
    causes
}

/// Cross-check the snapshot against the per-epoch engine outcomes: for
/// every worker and every phase the engine reports, the aggregated
/// histogram mass must equal the canonical fold of the per-epoch
/// outcome values **exactly** (f64 `==`).
///
/// Returns the number of comparisons performed.
///
/// # Panics
///
/// On any mismatch — that is a broken engine/metrics invariant, not a
/// recoverable condition.
pub fn cross_check(
    name: &str,
    snap: &MetricsSnapshot,
    workers: u32,
    per_epoch: &[Vec<(&'static str, f64)>],
) -> usize {
    let mut checks = 0usize;
    let Some(first) = per_epoch.first() else { return 0 };
    for (i, (phase_name, _)) in first.iter().enumerate() {
        let phase = TracePhase::from_name(phase_name)
            .expect("EpochOutcome phase names match TracePhase::name");
        let values: Vec<f64> = per_epoch.iter().map(|b| b[i].1).collect();
        let expect = fold_exact(&values);
        for w in 0..workers {
            let got = snap.phase_seconds(w, phase);
            assert!(
                got == expect,
                "{name}: worker {w} {phase_name} histogram mass {got} != engine total {expect}"
            );
            checks += 1;
        }
    }
    checks
}

fn diagnose_from(
    name: &str,
    sink: &TraceSink,
    workers: u32,
    epochs: u32,
    epoch_times: &[f64],
    total_bytes: u64,
    per_epoch: &[Vec<(&'static str, f64)>],
) -> RunDiagnosis {
    let mut reg = MetricsRegistry::new();
    reg.ingest_sink(sink);
    let snapshot = reg.snapshot();
    let cross_checks = cross_check(name, &snapshot, workers, per_epoch);
    let causes = rank_causes(&snapshot, workers);
    RunDiagnosis {
        name: name.to_string(),
        snapshot,
        workers,
        epochs,
        epoch_seconds: fold_exact(epoch_times),
        total_bytes,
        cross_checks,
        causes,
    }
}

/// Diagnose `epochs` DistGNN epochs over `partition`: a traced run plus
/// metrics aggregation, exact cross-check, and cause ranking. `plan` /
/// `policy` compose exactly as in the `gnnpart simulate` fault path; a
/// [`MitigationPolicy::none`] policy runs the unmitigated engine.
///
/// # Errors
///
/// Construction and fault-path errors of [`gp_distgnn::DistGnnEngine`].
pub fn diagnose_distgnn(
    graph: &Graph,
    partition: &EdgePartition,
    name: &str,
    config: DistGnnConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    policy: MitigationPolicy,
    engine_threads: Threads,
) -> Result<RunDiagnosis, gp_distgnn::DistGnnError> {
    let sink = TraceSink::enabled();
    let engine = DistGnnEngine::builder(graph, partition)
        .config(config)
        .trace(sink.clone())
        .threads(engine_threads)
        .build()?;
    let k = config.cluster.machines;
    let mut epoch_times = Vec::with_capacity(epochs as usize);
    let mut per_epoch = Vec::with_capacity(epochs as usize);
    let mut total_bytes = 0u64;
    let mut observe = |time: f64, bytes: u64, phases: Vec<(&'static str, f64)>| {
        epoch_times.push(time);
        total_bytes += bytes;
        per_epoch.push(phases);
    };
    match engine.run(&diagnose_spec(epochs, plan, policy))?.strict()? {
        DistGnnRunReport::Faulty { epochs: rs, .. } => {
            for r in &rs {
                observe(r.report.epoch_time(), r.report.total_bytes(), r.report.phase_breakdown());
            }
        }
        DistGnnRunReport::Mitigated { epochs: rs, .. } => {
            for r in &rs {
                observe(r.report.epoch_time(), r.report.total_bytes(), r.report.phase_breakdown());
            }
        }
        other => unreachable!("diagnose spec resolves to faulty/mitigated, got {other:?}"),
    }
    Ok(diagnose_from(name, &sink, k, epochs, &epoch_times, total_bytes, &per_epoch))
}

/// The [`RunSpec`] both diagnosers share: always an explicit fault plan
/// (empty when none was given, like the pre-RunSpec entry points), plus
/// the mitigation layer when the policy enables anything.
fn diagnose_spec(epochs: u32, plan: Option<&FaultPlan>, policy: MitigationPolicy) -> RunSpec {
    let mut spec = RunSpec::healthy()
        .epochs(epochs)
        .faults(plan.cloned().unwrap_or_else(FaultPlan::empty));
    if !policy.is_none() {
        spec = spec.mitigate(policy);
    }
    spec
}

/// Diagnose `epochs` DistDGL epochs; mirrors [`diagnose_distgnn`].
///
/// # Errors
///
/// Construction and fault-path errors of [`gp_distdgl::DistDglEngine`].
#[allow(clippy::too_many_arguments)]
pub fn diagnose_distdgl(
    graph: &Graph,
    partition: &VertexPartition,
    split: &VertexSplit,
    name: &str,
    config: DistDglConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    policy: MitigationPolicy,
    engine_threads: Threads,
) -> Result<RunDiagnosis, gp_distdgl::DistDglError> {
    let sink = TraceSink::enabled();
    let k = config.cluster.machines;
    let engine = DistDglEngine::builder(graph, partition, split)
        .config(config)
        .trace(sink.clone())
        .threads(engine_threads)
        .build()?;
    let mut epoch_times = Vec::with_capacity(epochs as usize);
    let mut per_epoch = Vec::with_capacity(epochs as usize);
    let mut total_bytes = 0u64;
    let mut observe = |time: f64, bytes: u64, phases: Vec<(&'static str, f64)>| {
        epoch_times.push(time);
        total_bytes += bytes;
        per_epoch.push(phases);
    };
    match engine.run(&diagnose_spec(epochs, plan, policy))?.strict()? {
        DistDglRunReport::Faulty { epochs: rs, .. } => {
            for r in &rs {
                observe(
                    r.summary.epoch_time(),
                    r.summary.total_bytes(),
                    r.summary.phase_breakdown(),
                );
            }
        }
        DistDglRunReport::Mitigated { epochs: rs, .. } => {
            for r in &rs {
                observe(
                    r.summary.epoch_time(),
                    r.summary.total_bytes(),
                    r.summary.phase_breakdown(),
                );
            }
        }
        other => unreachable!("diagnose spec resolves to faulty/mitigated, got {other:?}"),
    }
    Ok(diagnose_from(name, &sink, k, epochs, &epoch_times, total_bytes, &per_epoch))
}

/// One diagnosis per timed edge partition, on the `gp-exec` pool.
/// Results are placed by index, so output order (and every derived
/// artifact) is bit-identical at every thread count.
///
/// # Errors
///
/// The first failing cell's error, in index order.
pub fn diagnose_distgnn_runs(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    config: DistGnnConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    policy: MitigationPolicy,
    par: impl Into<Parallelism>,
) -> Result<(Vec<RunDiagnosis>, ExecTiming), gp_distgnn::DistGnnError> {
    let _prof = gp_prof::scope("core.diagnose.distgnn");
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                diagnose_distgnn(
                    graph,
                    &t.partition,
                    &t.name,
                    config,
                    epochs,
                    plan,
                    policy,
                    par.engine,
                )
            }
        })
        .collect();
    let report = par_map_indexed(par.sweep, jobs);
    let timing = report.timing();
    let mut runs = Vec::with_capacity(timed.len());
    for r in report.into_results() {
        runs.push(r.unwrap_or_else(|p| panic!("{p}"))?);
    }
    Ok((runs, timing))
}

/// One diagnosis per timed vertex partition; mirrors
/// [`diagnose_distgnn_runs`].
///
/// # Errors
///
/// The first failing cell's error, in index order.
#[allow(clippy::too_many_arguments)]
pub fn diagnose_distdgl_runs(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    config: DistDglConfig,
    epochs: u32,
    plan: Option<&FaultPlan>,
    policy: MitigationPolicy,
    par: impl Into<Parallelism>,
) -> Result<(Vec<RunDiagnosis>, ExecTiming), gp_distdgl::DistDglError> {
    let _prof = gp_prof::scope("core.diagnose.distdgl");
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            let config = config.clone();
            move || {
                diagnose_distdgl(
                    graph,
                    &t.partition,
                    split,
                    &t.name,
                    config,
                    epochs,
                    plan,
                    policy,
                    par.engine,
                )
            }
        })
        .collect();
    let report = par_map_indexed(par.sweep, jobs);
    let timing = report.timing();
    let mut runs = Vec::with_capacity(timed.len());
    for r in report.into_results() {
        runs.push(r.unwrap_or_else(|p| panic!("{p}"))?);
    }
    Ok((runs, timing))
}

/// Merge the per-run snapshots in index order into one cluster-wide
/// snapshot. Merging is associative and order-insensitive, so any
/// grouping of the same runs produces bit-identical bytes.
pub fn merged_snapshot(runs: &[RunDiagnosis]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for r in runs {
        merged.merge(&r.snapshot);
    }
    merged
}

/// Fixed-precision float for report/CSV cells: deterministic and
/// byte-stable across platforms (the shared BENCH-artifact grammar).
use crate::benchjson::{self, fmt9};

/// Per-(partitioner, phase) skew table: quantiles from the cluster-wide
/// histogram, load/traffic imbalance from the per-worker totals.
pub fn skew_table(name: &str, runs: &[RunDiagnosis]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "phase",
            "p50",
            "p95",
            "p99",
            "max",
            "seconds",
            "flops_imbalance",
            "bytes_imbalance",
        ],
    );
    for run in runs {
        for phase in run.snapshot.phases_present() {
            let Some(stat) = run.snapshot.cluster_phase_stat(phase) else { continue };
            table.push(vec![
                run.name.clone(),
                phase.name().to_string(),
                fmt9(stat.quantile(0.5)),
                fmt9(stat.quantile(0.95)),
                fmt9(stat.quantile(0.99)),
                fmt9(stat.max),
                fmt9(phase_critical_seconds(&run.snapshot, run.workers, phase)),
                fmt9(run.snapshot.phase_flops_imbalance(phase)),
                fmt9(run.snapshot.phase_bytes_imbalance(phase)),
            ]);
        }
    }
    table
}

/// Per-partitioner summary table: epoch time, skews, straggler and the
/// top-ranked cause.
pub fn summary_table(name: &str, runs: &[RunDiagnosis]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "epochs",
            "epoch_seconds",
            "total_bytes",
            "compute_skew",
            "comm_skew",
            "straggler",
            "straggler_phase",
            "straggler_excess_s",
            "top_cause",
            "top_cause_seconds",
            "cross_checks",
        ],
    );
    for run in runs {
        let (sw, sp, se) = match run.snapshot.load_straggler() {
            Some(s) => (s.worker.to_string(), s.phase.name().to_string(), fmt9(s.excess_seconds)),
            None => ("none".to_string(), "none".to_string(), fmt9(0.0)),
        };
        let top = run.causes.first();
        table.push(vec![
            run.name.clone(),
            run.epochs.to_string(),
            fmt9(run.epoch_seconds),
            run.total_bytes.to_string(),
            fmt9(run.snapshot.compute_skew()),
            fmt9(run.snapshot.communication_skew()),
            sw,
            sp,
            se,
            top.map_or("none", |c| c.label).to_string(),
            fmt9(top.map_or(0.0, |c| c.seconds)),
            run.cross_checks.to_string(),
        ]);
    }
    table
}

/// The deterministic markdown run report: per run, the phase statistics
/// table, skew indices, straggler attribution, the ranked causes of
/// epoch time, and the exactness cross-check tally.
pub fn diagnose_report(title: &str, runs: &[RunDiagnosis]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Run diagnosis: {title}\n"));
    for run in runs {
        out.push_str(&format!(
            "\n## {}\n\nworkers: {} · epochs: {} · epoch time: {} s · network: {} bytes\n",
            run.name,
            run.workers,
            run.epochs,
            fmt9(run.epoch_seconds),
            run.total_bytes
        ));
        out.push_str("\n| phase | p50 | p95 | p99 | max | seconds | flops skew | bytes skew |\n");
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for phase in run.snapshot.phases_present() {
            let Some(stat) = run.snapshot.cluster_phase_stat(phase) else { continue };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                phase.name(),
                fmt9(stat.quantile(0.5)),
                fmt9(stat.quantile(0.95)),
                fmt9(stat.quantile(0.99)),
                fmt9(stat.max),
                fmt9(phase_critical_seconds(&run.snapshot, run.workers, phase)),
                fmt9(run.snapshot.phase_flops_imbalance(phase)),
                fmt9(run.snapshot.phase_bytes_imbalance(phase)),
            ));
        }
        out.push_str(&format!(
            "\ncompute skew (max/mean FLOPs): {}\ncommunication skew (max/mean bytes): {}\n",
            fmt9(run.snapshot.compute_skew()),
            fmt9(run.snapshot.communication_skew())
        ));
        match run.snapshot.load_straggler() {
            Some(s) => out.push_str(&format!(
                "straggler: worker {} in {} (+{} s critical path)\n",
                s.worker,
                s.phase.name(),
                fmt9(s.excess_seconds)
            )),
            None => out.push_str("straggler: none\n"),
        }
        out.push_str("\n### Ranked causes of epoch time\n\n| cause | seconds |\n|---|---|\n");
        for c in &run.causes {
            out.push_str(&format!("| {} | {} |\n", c.label, fmt9(c.seconds)));
        }
        out.push_str(&format!(
            "\nexactness cross-check: {} per-worker phase totals equal the engine report (f64 ==)\n",
            run.cross_checks
        ));
    }
    out
}

/// Prometheus text exposition of all runs merged (index order — the
/// merge is order-insensitive, so this is canonical).
pub fn diagnose_prometheus(runs: &[RunDiagnosis]) -> String {
    merged_snapshot(runs).to_prometheus()
}

/// JSON benchmark snapshot: per-partitioner imbalance index and p99
/// phase times (the first point of the perf/skew trajectory in
/// `results/BENCH_diagnose.json`).
pub fn bench_json(runs: &[RunDiagnosis]) -> String {
    let mut entries = Vec::new();
    for run in runs {
        let mut phases = Vec::new();
        for phase in run.snapshot.phases_present() {
            let Some(stat) = run.snapshot.cluster_phase_stat(phase) else { continue };
            phases.push(
                benchjson::Obj::new()
                    .str("phase", phase.name())
                    .f9("p99", stat.quantile(0.99))
                    .f9("max", stat.max)
                    .f9("flops_imbalance", run.snapshot.phase_flops_imbalance(phase))
                    .finish(),
            );
        }
        entries.push(
            benchjson::Obj::new()
                .str("partitioner", &run.name)
                .f9("epoch_seconds", run.epoch_seconds)
                .f9("compute_skew", run.snapshot.compute_skew())
                .f9("comm_skew", run.snapshot.communication_skew())
                .raw("phases", &benchjson::array(&phases))
                .finish(),
        );
    }
    benchjson::bench_doc("diagnose", &[("runs", benchjson::array(&entries))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperParams;
    use crate::experiment::{timed_edge_partitions, timed_vertex_partitions};
    use gp_cluster::ClusterSpec;
    use gp_graph::{DatasetId, GraphScale};
    use gp_tensor::ModelKind;

    fn graph() -> Graph {
        DatasetId::OR.generate(GraphScale::Tiny).unwrap()
    }

    fn gnn_config(k: u32) -> DistGnnConfig {
        DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(k))
    }

    fn slowdown_plan() -> FaultPlan {
        FaultPlan {
            events: vec![gp_cluster::FaultEvent::Slowdown {
                machine: 1,
                from_epoch: 0,
                until_epoch: 3,
                factor: 0.25,
            }],
            machines: 4,
            epochs: 10,
            recovery_budget_secs: f64::INFINITY,
        }
    }

    #[test]
    fn diagnose_distgnn_cross_checks_every_worker_phase() {
        let g = graph();
        let timed = timed_edge_partitions(&g, 4, 1);
        let d = diagnose_distgnn(
            &g,
            &timed[0].partition,
            &timed[0].name,
            gnn_config(4),
            3,
            None,
            MitigationPolicy::none(),
            Threads::serial(),
        )
        .unwrap();
        // 4 workers × 4 reported phases × one exact comparison each.
        assert_eq!(d.cross_checks, 16);
        assert_eq!(d.workers, 4);
        assert_eq!(d.epochs, 3);
        assert!(d.epoch_seconds > 0.0);
        assert!(d.total_bytes > 0);
        assert_eq!(d.causes.len(), 5);
        assert!(d.causes.windows(2).all(|w| w[0].seconds >= w[1].seconds), "ranked descending");
        // Healthy run: no fault overhead, no transport overhead.
        let faults =
            d.causes.iter().find(|c| c.label == "injected faults & recovery").unwrap();
        assert_eq!(faults.seconds, 0.0);
        let net = d.causes.iter().find(|c| c.label == "network loss/partition").unwrap();
        assert_eq!(net.seconds, 0.0);
    }

    #[test]
    fn diagnose_composes_faults_and_mitigation() {
        let g = graph();
        let timed = timed_edge_partitions(&g, 4, 1);
        let plan = slowdown_plan();
        for policy in [
            MitigationPolicy::none(),
            MitigationPolicy::steal(),
            MitigationPolicy::adaptive(),
            MitigationPolicy::all(),
        ] {
            let d = diagnose_distgnn(
                &g,
                &timed[0].partition,
                "hdrf",
                gnn_config(4),
                3,
                Some(&plan),
                policy,
                Threads::serial(),
            )
            .unwrap();
            assert_eq!(d.cross_checks, 16, "policy = {policy:?}");
            assert!(d.epoch_seconds > 0.0);
        }
    }

    #[test]
    fn diagnose_distdgl_cross_checks_every_worker_phase() {
        let g = graph();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed = timed_vertex_partitions(&g, 4, 1, &split.train);
        let mut config = DistDglConfig::paper(
            PaperParams::middle().model(ModelKind::Sage),
            ClusterSpec::paper(4),
        );
        config.global_batch_size = 256;
        let d = diagnose_distdgl(
            &g,
            &timed[0].partition,
            &split,
            &timed[0].name,
            config,
            2,
            None,
            MitigationPolicy::none(),
            Threads::serial(),
        )
        .unwrap();
        // 4 workers × 5 reported phases.
        assert_eq!(d.cross_checks, 20);
        // Mini-batch sampling yields real load skew.
        assert!(d.snapshot.compute_skew() >= 1.0);
    }

    #[test]
    fn diagnose_runs_and_artifacts_are_thread_invariant() {
        let g = graph();
        let timed = timed_edge_partitions(&g, 4, 1);
        let (serial, timing) = diagnose_distgnn_runs(
            &g,
            &timed,
            gnn_config(4),
            2,
            None,
            MitigationPolicy::none(),
            Threads::serial(),
        )
        .unwrap();
        assert_eq!(timing.threads, 1);
        let report = diagnose_report("distgnn", &serial);
        let prom = diagnose_prometheus(&serial);
        let skew = skew_table("skew", &serial).to_csv();
        let summary = summary_table("summary", &serial).to_csv();
        let bench = bench_json(&serial);
        for threads in [2usize, 4] {
            let (par, _) = diagnose_distgnn_runs(
                &g,
                &timed,
                gnn_config(4),
                2,
                None,
                MitigationPolicy::none(),
                Threads::new(threads),
            )
            .unwrap();
            assert_eq!(diagnose_report("distgnn", &par), report, "threads = {threads}");
            assert_eq!(diagnose_prometheus(&par), prom, "threads = {threads}");
            assert_eq!(skew_table("skew", &par).to_csv(), skew, "threads = {threads}");
            assert_eq!(summary_table("summary", &par).to_csv(), summary, "threads = {threads}");
            assert_eq!(bench_json(&par), bench, "threads = {threads}");
        }
        // Shape sanity: the report names every partitioner and the
        // Prometheus text carries each family once.
        for t in &timed {
            assert!(report.contains(&format!("## {}", t.name)));
        }
        assert_eq!(prom.matches("# TYPE gnnpart_phase_duration_seconds histogram").count(), 1);
        assert!(!bench.contains("NaN"));
    }

    #[test]
    fn merged_snapshot_is_grouping_invariant() {
        let g = graph();
        let timed = timed_edge_partitions(&g, 4, 1);
        let (runs, _) = diagnose_distgnn_runs(
            &g,
            &timed,
            gnn_config(4),
            2,
            None,
            MitigationPolicy::none(),
            Threads::serial(),
        )
        .unwrap();
        let all = merged_snapshot(&runs);
        // Merge in reverse order and in two halves: identical snapshots.
        let mut rev = MetricsSnapshot::default();
        for r in runs.iter().rev() {
            rev.merge(&r.snapshot);
        }
        assert_eq!(all, rev);
        let mid = runs.len() / 2;
        let mut left = merged_snapshot(&runs[..mid]);
        let right = merged_snapshot(&runs[mid..]);
        left.merge(&right);
        assert_eq!(all, left);
        assert_eq!(all.to_prometheus(), rev.to_prometheus());
    }
}
