//! Partitioning-time amortisation (Tables 4 and 5).
//!
//! The paper asks after how many training epochs the time invested in
//! partitioning pays for itself through faster epochs, assuming random
//! partitioning is free.

/// Number of epochs after which `partition_seconds` is amortised by the
/// per-epoch saving over random partitioning. Returns `None` when the
/// partitioner provides no speedup ("no" in the paper's tables).
pub fn epochs_to_amortize(
    partition_seconds: f64,
    random_epoch_seconds: f64,
    partitioner_epoch_seconds: f64,
) -> Option<f64> {
    let saving = random_epoch_seconds - partitioner_epoch_seconds;
    if saving <= 0.0 {
        return None;
    }
    Some(partition_seconds / saving)
}

/// Format an amortisation value like the paper's tables ("no" for a
/// slowdown).
pub fn fmt_amortize(value: Option<f64>) -> String {
    match value {
        Some(v) => crate::report::fmt(v),
        None => "no".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortizes_with_speedup() {
        // 10 s partitioning, 2 s/epoch saved → 5 epochs.
        assert_eq!(epochs_to_amortize(10.0, 5.0, 3.0), Some(5.0));
    }

    #[test]
    fn no_amortization_on_slowdown() {
        assert_eq!(epochs_to_amortize(10.0, 3.0, 5.0), None);
        assert_eq!(epochs_to_amortize(10.0, 3.0, 3.0), None);
    }

    #[test]
    fn free_partitioning_amortizes_instantly() {
        assert_eq!(epochs_to_amortize(0.0, 5.0, 3.0), Some(0.0));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_amortize(None), "no");
        assert_eq!(fmt_amortize(Some(5.0)), "5.00");
    }
}
