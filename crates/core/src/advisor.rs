//! Partitioner advisor (extension).
//!
//! The paper closes hoping its findings "spawn the development of even
//! more effective graph partitioning algorithms", and cites EASE
//! (Merkel et al., ICDE 2023) for partitioner *selection*. This module
//! packages the study's machinery into exactly that: given a graph, a
//! workload and a training budget, it measures every candidate
//! partitioner's real partitioning time and simulated epoch time, and
//! ranks them by **net saving** over the budget:
//!
//! ```text
//! net(p) = epochs × (t_epoch(Random) − t_epoch(p)) − t_partition(p)
//! ```
//!
//! which is the paper's amortisation analysis (Tables 4/5) turned into a
//! decision procedure: a partitioner that amortises after more epochs
//! than the budget is ranked below cheaper ones even if it is faster per
//! epoch.

use gp_exec::{par_map, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_tensor::ModelKind;

use crate::config::PaperParams;
use crate::experiment::{
    distdgl_epoch, distgnn_epoch, timed_edge_partitions_threaded,
    timed_vertex_partitions_threaded,
};

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Partitioner name.
    pub name: String,
    /// Real partitioning wall time (seconds).
    pub partition_seconds: f64,
    /// Simulated epoch time (seconds).
    pub epoch_seconds: f64,
    /// Speedup over Random partitioning.
    pub speedup: f64,
    /// Net simulated seconds saved over the whole training budget
    /// (negative = the partitioner does not pay off).
    pub net_saving: f64,
}

/// The advisor's output: candidates sorted by net saving, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// All candidates, best first.
    pub ranked: Vec<Candidate>,
    /// The training budget used.
    pub epochs: u32,
}

impl Recommendation {
    /// The winning partitioner.
    ///
    /// # Panics
    ///
    /// Never panics: the candidate set always includes Random.
    pub fn best(&self) -> &Candidate {
        &self.ranked[0]
    }
}

fn rank(mut candidates: Vec<Candidate>, epochs: u32) -> Recommendation {
    candidates.sort_by(|a, b| b.net_saving.partial_cmp(&a.net_saving).expect("finite"));
    Recommendation { ranked: candidates, epochs }
}

/// Recommend an edge partitioner for full-batch (DistGNN-style)
/// training of `params` on `k` machines over `epochs` epochs.
pub fn recommend_edge_partitioner(
    graph: &Graph,
    k: u32,
    params: PaperParams,
    epochs: u32,
) -> Recommendation {
    recommend_edge_partitioner_threaded(graph, k, params, epochs, Threads::serial())
}

/// [`recommend_edge_partitioner`] on the `gp-exec` pool: partitioning
/// runs and per-candidate epoch simulations are parallel cells. The
/// simulated epoch times (and thus speedups and the ranking for a fixed
/// set of wall-clock partition times) are bit-identical for every
/// thread count; the measured `partition_seconds` are wall clock and
/// vary run to run exactly as they do serially.
pub fn recommend_edge_partitioner_threaded(
    graph: &Graph,
    k: u32,
    params: PaperParams,
    epochs: u32,
    threads: Threads,
) -> Recommendation {
    let timed = timed_edge_partitions_threaded(graph, k, 0xad71, threads);
    let epoch_jobs: Vec<_> = timed
        .iter()
        .map(|t| move || distgnn_epoch(graph, &t.partition, params).epoch_time())
        .collect();
    let epoch_times = par_map(threads, epoch_jobs);
    let random_idx =
        timed.iter().position(|t| t.name == "Random").expect("baseline");
    let base_epoch = epoch_times[random_idx];
    let candidates = timed
        .iter()
        .zip(epoch_times.iter())
        .map(|(t, &epoch)| candidate(&t.name, t.seconds, base_epoch, epoch, epochs))
        .collect();
    rank(candidates, epochs)
}

/// Build one candidate. Matching the paper's amortisation convention,
/// Random partitioning is treated as free.
fn candidate(name: &str, seconds: f64, base_epoch: f64, epoch: f64, epochs: u32) -> Candidate {
    let partition_seconds = if name == "Random" { 0.0 } else { seconds };
    Candidate {
        name: name.to_string(),
        partition_seconds,
        epoch_seconds: epoch,
        speedup: base_epoch / epoch,
        net_saving: f64::from(epochs) * (base_epoch - epoch) - partition_seconds,
    }
}

/// Recommend a vertex partitioner for mini-batch (DistDGL-style)
/// training of `params` on `k` machines over `epochs` epochs.
pub fn recommend_vertex_partitioner(
    graph: &Graph,
    split: &VertexSplit,
    k: u32,
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
) -> Recommendation {
    recommend_vertex_partitioner_threaded(
        graph,
        split,
        k,
        params,
        kind,
        global_batch_size,
        epochs,
        Threads::serial(),
    )
}

/// [`recommend_vertex_partitioner`] on the `gp-exec` pool; see
/// [`recommend_edge_partitioner_threaded`] for the determinism
/// contract.
#[allow(clippy::too_many_arguments)]
pub fn recommend_vertex_partitioner_threaded(
    graph: &Graph,
    split: &VertexSplit,
    k: u32,
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    threads: Threads,
) -> Recommendation {
    let timed = timed_vertex_partitions_threaded(graph, k, 0xad71, &split.train, threads);
    let epoch_jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                distdgl_epoch(graph, &t.partition, split, params, kind, global_batch_size)
                    .epoch_time()
            }
        })
        .collect();
    let epoch_times = par_map(threads, epoch_jobs);
    let random_idx =
        timed.iter().position(|t| t.name == "Random").expect("baseline");
    let base_epoch = epoch_times[random_idx];
    let candidates = timed
        .iter()
        .zip(epoch_times.iter())
        .map(|(t, &epoch)| candidate(&t.name, t.seconds, base_epoch, epoch, epochs))
        .collect();
    rank(candidates, epochs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::{DatasetId, GraphScale};

    #[test]
    fn distgnn_recommendation_beats_random_given_budget() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        // Full-batch training runs hundreds of epochs (paper Section 4.3).
        let rec = recommend_edge_partitioner(&g, 8, PaperParams::middle(), 300);
        assert_eq!(rec.ranked.len(), 6);
        let best = rec.best();
        assert_ne!(best.name, "Random", "with 300 epochs a quality partitioner wins");
        assert!(best.net_saving > 0.0);
        assert!(best.speedup > 1.0);
        // Ranking is by net saving, descending.
        for w in rec.ranked.windows(2) {
            assert!(w[0].net_saving >= w[1].net_saving);
        }
    }

    #[test]
    fn zero_budget_prefers_random() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let rec = recommend_edge_partitioner(&g, 8, PaperParams::middle(), 0);
        // With no training to amortise against, free partitioning wins.
        assert_eq!(rec.best().name, "Random");
    }

    #[test]
    fn random_candidate_has_neutral_stats() {
        let g = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
        let rec = recommend_edge_partitioner(&g, 4, PaperParams::middle(), 10);
        let random = rec.ranked.iter().find(|c| c.name == "Random").unwrap();
        assert!((random.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distdgl_recommendation_ranks_all_six() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let rec = recommend_vertex_partitioner(
            &g,
            &split,
            4,
            PaperParams::middle(),
            ModelKind::Sage,
            256,
            500,
        );
        assert_eq!(rec.ranked.len(), 6);
        let best = rec.best();
        assert!(best.net_saving >= 0.0, "budget large enough for some win");
    }
}
