//! Timed partitioning runs and engine invocations.


use gp_cluster::{ClusterSpec, RunSpec};
use gp_distdgl::{DistDglConfig, DistDglEngine, EpochSummary};
use gp_distgnn::{DistGnnConfig, DistGnnEngine, EpochReport};
use gp_exec::{par_map, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_partition::{EdgePartition, VertexPartition};
use gp_tensor::ModelKind;

use crate::config::PaperParams;
use crate::registry;

/// An edge partition with its real partitioning wall time.
#[derive(Debug, Clone)]
pub struct TimedEdgePartition {
    /// Partitioner name.
    pub name: String,
    /// The partition.
    pub partition: EdgePartition,
    /// Wall-clock partitioning time in seconds.
    pub seconds: f64,
}

/// A vertex partition with its real partitioning wall time.
#[derive(Debug, Clone)]
pub struct TimedVertexPartition {
    /// Partitioner name.
    pub name: String,
    /// The partition.
    pub partition: VertexPartition,
    /// Wall-clock partitioning time in seconds.
    pub seconds: f64,
}

/// Run all six edge partitioners on `graph` with `k` parts, timing each.
///
/// # Panics
///
/// Panics if a registered partitioner fails (presets are valid for all
/// dataset graphs).
pub fn timed_edge_partitions(graph: &Graph, k: u32, seed: u64) -> Vec<TimedEdgePartition> {
    timed_edge_partitions_threaded(graph, k, seed, Threads::serial())
}

/// [`timed_edge_partitions`] on the `gp-exec` pool: one job per
/// partitioner, results in registry order. The partitions themselves
/// are bit-identical for every thread count; only the wall-clock
/// `seconds` fields vary run to run (they time real work, threaded or
/// not).
///
/// # Panics
///
/// Panics if a registered partitioner fails (presets are valid for all
/// dataset graphs).
pub fn timed_edge_partitions_threaded(
    graph: &Graph,
    k: u32,
    seed: u64,
    threads: Threads,
) -> Vec<TimedEdgePartition> {
    let jobs: Vec<_> = registry::edge_partitioner_names()
        .iter()
        .map(|&name| {
            move || {
                let p = registry::edge_partitioner(name).expect("registered");
                let _prof = gp_prof::scope_label(|| format!("partition.{name}"));
                let start = gp_prof::now();
                let partition =
                    p.partition_edges(graph, k, seed).unwrap_or_else(|e| panic!("{name}: {e}"));
                TimedEdgePartition {
                    name: name.to_string(),
                    partition,
                    seconds: start.elapsed_secs(),
                }
            }
        })
        .collect();
    par_map(threads, jobs)
}

/// Run all six vertex partitioners on `graph` with `k` parts, timing
/// each. `train` parameterises ByteGNN.
///
/// # Panics
///
/// Panics if a registered partitioner fails.
pub fn timed_vertex_partitions(
    graph: &Graph,
    k: u32,
    seed: u64,
    train: &[u32],
) -> Vec<TimedVertexPartition> {
    timed_vertex_partitions_threaded(graph, k, seed, train, Threads::serial())
}

/// [`timed_vertex_partitions`] on the `gp-exec` pool: one job per
/// partitioner, results in registry order; see
/// [`timed_edge_partitions_threaded`] for the determinism contract.
///
/// # Panics
///
/// Panics if a registered partitioner fails.
pub fn timed_vertex_partitions_threaded(
    graph: &Graph,
    k: u32,
    seed: u64,
    train: &[u32],
    threads: Threads,
) -> Vec<TimedVertexPartition> {
    let jobs: Vec<_> = registry::vertex_partitioner_names()
        .iter()
        .map(|&name| {
            move || {
                let p = registry::vertex_partitioner(name, Some(train.to_vec()))
                    .expect("registered");
                let _prof = gp_prof::scope_label(|| format!("partition.{name}"));
                let start = gp_prof::now();
                let partition =
                    p.partition_vertices(graph, k, seed).unwrap_or_else(|e| panic!("{name}: {e}"));
                TimedVertexPartition {
                    name: name.to_string(),
                    partition,
                    seconds: start.elapsed_secs(),
                }
            }
        })
        .collect();
    par_map(threads, jobs)
}

/// Simulate one DistGNN (full-batch GraphSAGE) epoch.
///
/// # Panics
///
/// Panics on configuration mismatch (callers control both sides).
pub fn distgnn_epoch(graph: &Graph, partition: &EdgePartition, params: PaperParams) -> EpochReport {
    let config = DistGnnConfig::paper(params.model(ModelKind::Sage), ClusterSpec::paper(partition.k()));
    DistGnnEngine::builder(graph, partition)
        .config(config)
        .build()
        .expect("valid config")
        .run(&RunSpec::healthy())
        .expect("healthy run")
        .into_healthy()
        .remove(0)
}

/// Simulate one DistDGL epoch with the paper's defaults.
///
/// # Panics
///
/// Panics on configuration mismatch.
pub fn distdgl_epoch(
    graph: &Graph,
    partition: &VertexPartition,
    split: &VertexSplit,
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
) -> EpochSummary {
    let mut config =
        DistDglConfig::paper(params.model(kind), ClusterSpec::paper(partition.k()));
    config.global_batch_size = global_batch_size;
    DistDglEngine::builder(graph, partition, split)
        .config(config)
        .build()
        .expect("valid config")
        .run(&RunSpec::healthy())
        .expect("healthy run")
        .into_healthy()
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::{DatasetId, GraphScale};

    #[test]
    fn timed_edge_partitions_cover_all_six() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        assert_eq!(timed.len(), 6);
        for t in &timed {
            assert!(t.seconds >= 0.0);
            assert_eq!(t.partition.k(), 4);
        }
        // Quality ordering sanity: HEP-100 beats Random.
        let rf = |name: &str| {
            timed.iter().find(|t| t.name == name).unwrap().partition.replication_factor()
        };
        assert!(rf("HEP-100") < rf("Random"));
    }

    #[test]
    fn timed_vertex_partitions_cover_all_six() {
        let g = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed = timed_vertex_partitions(&g, 4, 1, &split.train);
        assert_eq!(timed.len(), 6);
        let cut = |name: &str| {
            timed.iter().find(|t| t.name == name).unwrap().partition.edge_cut_ratio()
        };
        assert!(cut("METIS") < cut("Random"));
    }

    #[test]
    fn threaded_partitions_match_serial_except_wall_clock() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let serial = timed_edge_partitions(&g, 4, 1);
        for threads in [2usize, 4] {
            let par = timed_edge_partitions_threaded(&g, 4, 1, gp_exec::Threads::new(threads));
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(serial.iter()) {
                assert_eq!(p.name, s.name, "registry order preserved");
                assert_eq!(p.partition, s.partition, "partitions are bit-identical");
                assert!(p.seconds >= 0.0);
            }
        }
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let vserial = timed_vertex_partitions(&g, 4, 1, &split.train);
        let vpar =
            timed_vertex_partitions_threaded(&g, 4, 1, &split.train, gp_exec::Threads::new(4));
        for (p, s) in vpar.iter().zip(vserial.iter()) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.partition, s.partition);
        }
    }

    #[test]
    fn engines_run_on_timed_partitions() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let ep = timed_edge_partitions(&g, 4, 1);
        let report = distgnn_epoch(&g, &ep[0].partition, crate::config::PaperParams::middle());
        assert!(report.epoch_time() > 0.0);
        let vp = timed_vertex_partitions(&g, 4, 1, &split.train);
        let summary = distdgl_epoch(
            &g,
            &vp[0].partition,
            &split,
            crate::config::PaperParams::middle(),
            ModelKind::Sage,
            1024,
        );
        assert!(summary.epoch_time() > 0.0);
    }
}
