//! Network-chaos soak harness: message-level faults + partitions on
//! top of the elastic chaos environment of [`crate::chaos`].
//!
//! Every partitioner runs a multi-epoch soak through its engine's
//! `.elastic(..).net(..)` [`RunSpec`] legs under a seeded [`ChurnPlan`]
//! (leaves, rejoins), a seeded [`FaultPlan`] (crashes, stragglers,
//! brownouts) *and* a seeded [`NetFaultPlan`] (per-message loss,
//! duplication, reorder, plus partition windows splitting the fleet
//! into quorum and minority islands) — the full composition the paper's
//! communication-cost analysis motivates. Each cell checks the network
//! fault contract and records the verdicts in its row:
//!
//! 1. **Deterministic** — the same seeds give a bit-identical
//!    [`PartitionedRunReport`] on a rerun.
//! 2. **Trace-transparent** — attaching an enabled [`TraceSink`]
//!    changes no `f64` of the report.
//! 3. **Degraded never worse** — the degraded-mode run (bounded-stale
//!    quorum-side progress during partitions) costs at most the
//!    abort-and-recover-from-checkpoint baseline
//!    ([`NetRunOptions::abort_only`]). The engines adopt degraded mode
//!    only when its priced cost is at most the abort price, so this is
//!    an *adopt-only* invariant, not a tolerance band.
//! 4. **Exactly once** — seeded duplication and retransmission never
//!    leak an effective duplicate past the receiver's dedup window.
//! 5. **Spans exact** — every worker's recorded per-phase span sums
//!    reproduce the phase totals of exactly the epochs it was live for
//!    ([`fold_exact`], no tolerance), quorum-only epochs included.
//!
//! A row whose run errors out reports zero completed epochs and fails
//! [`NetChaosRow::holds`]; the harness never panics on a survivable
//! schedule.

use gp_cluster::{
    fold_exact, CheckpointConfig, ChurnPlan, ClusterSpec, ElasticOptions, FaultPlan, FaultSpec,
    MetricsSnapshot, NetFaultPlan, NetFaultSpec, NetRunOptions, PartitionedRunReport, RunSpec,
    TracePhase, TraceSink,
};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::{par_map, Parallelism, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_tensor::ModelKind;

use crate::chaos::chaos_churn_spec;
use crate::config::PaperParams;
use crate::experiment::{TimedEdgePartition, TimedVertexPartition};
use crate::report::Table;

/// Phase order of the DistGNN engine's `phase_breakdown`.
const DISTGNN_PHASES: [TracePhase; 4] =
    [TracePhase::Forward, TracePhase::Backward, TracePhase::Sync, TracePhase::Optimizer];

/// Phase order of the DistDGL engine's `phase_breakdown`.
const DISTDGL_PHASES: [TracePhase; 5] = [
    TracePhase::Sampling,
    TracePhase::FeatureLoad,
    TracePhase::Forward,
    TracePhase::Backward,
    TracePhase::Update,
];

/// A network fault environment tuned for soaks: modest per-message
/// noise (loss stays well under the brownout rates of
/// [`FaultSpec::standard`], it composes with them) and frequent short
/// partition windows, so even a smoke-length soak arms windows and
/// exercises the degraded/abort decision.
pub fn netchaos_net_spec(machines: u32, epochs: u32, seed: u64) -> NetFaultSpec {
    NetFaultSpec {
        partition_prob: 0.12,
        ..NetFaultSpec::standard(machines, epochs, seed)
    }
}

/// One partitioner's network-chaos outcome plus its invariant verdicts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetChaosRow {
    /// Partitioner name.
    pub name: String,
    /// Requested soak horizon in epochs.
    pub epochs: u32,
    /// Epochs the partitioned run completed.
    pub completed_epochs: u32,
    /// Partition windows armed (a live link was actually cut).
    pub windows: u32,
    /// Windows ridden out in bounded-staleness degraded mode.
    pub degraded_windows: u32,
    /// Windows resolved by abort-and-recover.
    pub aborted_windows: u32,
    /// Epochs spent under an armed partition window.
    pub partitioned_epochs: u32,
    /// Epochs that made degraded-mode progress on the quorum side.
    pub degraded_epochs: u32,
    /// Longest consecutive staleness (epochs) any degraded window hit.
    pub max_staleness: u32,
    /// Remote aggregations / fetches served from stale replicas or the
    /// feature cache during degraded epochs.
    pub stale_served: u64,
    /// Minority-island feature fetches deferred to cache + snapshots.
    pub deferred_fetches: u64,
    /// Transport-level retransmissions (loss retries).
    pub net_retries: u64,
    /// Duplicate deliveries discarded by the receivers' dedup windows.
    pub dup_discarded: u64,
    /// Scheduled leaves applied (churn still runs underneath).
    pub leaves: u32,
    /// Scheduled joins admitted.
    pub joins: u32,
    /// Crashes repaired during the soak (fault plan).
    pub crashes: u32,
    /// Post-heal minority catch-up seconds (degraded windows only).
    pub catchup_secs: f64,
    /// Transport noise + catch-up seconds on top of the elastic run.
    pub net_overhead_secs: f64,
    /// Total simulated seconds of the degraded-mode run.
    pub degraded_secs: f64,
    /// Total simulated seconds of the abort-and-recover baseline;
    /// `-1.0` when the baseline itself failed to complete (the degraded
    /// run then wins by definition).
    pub abort_secs: f64,
    /// Invariant 1: rerun with the same seeds is bit-identical.
    pub deterministic: bool,
    /// Invariant 2: an enabled trace sink changes nothing.
    pub trace_transparent: bool,
    /// Invariant 3: degraded run ≤ abort-and-recover baseline.
    pub degraded_never_worse: bool,
    /// Invariant 4: delivery stayed exactly-once-effective.
    pub exactly_once: bool,
    /// Invariant 5: every worker's span sums reproduce the phase
    /// totals of exactly its live epochs.
    pub spans_exact: bool,
}

impl NetChaosRow {
    /// Whether the soak completed and every invariant held.
    pub fn holds(&self) -> bool {
        self.completed_epochs == self.epochs
            && self.deterministic
            && self.trace_transparent
            && self.degraded_never_worse
            && self.exactly_once
            && self.spans_exact
    }

    /// Percentage of the abort-baseline wall time saved by degraded
    /// mode (0 when the baseline is unavailable).
    pub fn degraded_saving_pct(&self) -> f64 {
        if self.abort_secs <= 0.0 {
            return 0.0;
        }
        100.0 * (self.abort_secs - self.degraded_secs) / self.abort_secs
    }

    /// The row of a run that errored out before completing.
    fn failed(name: String, epochs: u32) -> NetChaosRow {
        NetChaosRow { name, epochs, ..NetChaosRow::default() }
    }
}

/// Fold the run variants (degraded, rerun, abort baseline, traced) and
/// the recorded spans into one verdict-carrying row.
fn assemble_row(
    name: String,
    k: u32,
    epochs: u32,
    phases: &[TracePhase],
    run: &PartitionedRunReport,
    again: &PartitionedRunReport,
    abort: Option<&PartitionedRunReport>,
    traced: &PartitionedRunReport,
    sink: &TraceSink,
) -> NetChaosRow {
    let deterministic = run == again;
    let trace_transparent = traced == run;
    let (abort_secs, degraded_never_worse) = match abort {
        Some(b) => (b.total_seconds(), run.total_seconds() <= b.total_seconds() + 1e-9),
        // The rigid baseline died mid-soak; surviving at all wins.
        None => (-1.0, true),
    };
    let snap = MetricsSnapshot::from_sink(sink);
    let elastic = &run.elastic;
    let mut spans_exact = true;
    for w in 0..k {
        for (i, phase) in phases.iter().enumerate() {
            let per_epoch: Vec<f64> = elastic
                .phase_seconds
                .iter()
                .enumerate()
                .filter(|(e, _)| elastic.live_workers[*e].contains(&w))
                .map(|(_, row)| row[i].1)
                .collect();
            // Bit-exactness is the contract, not a tolerance band.
            if snap.phase_seconds(w, *phase) != fold_exact(&per_epoch) {
                spans_exact = false;
            }
        }
    }
    NetChaosRow {
        name,
        epochs,
        completed_epochs: elastic.completed_epochs,
        windows: run.net.windows,
        degraded_windows: run.net.degraded_windows,
        aborted_windows: run.net.aborted_windows,
        partitioned_epochs: run.net.partitioned_epochs,
        degraded_epochs: run.net.degraded_epochs,
        max_staleness: run.net.max_staleness,
        stale_served: run.net.stale_served,
        deferred_fetches: run.net.deferred_fetches,
        net_retries: run.net.noise.retries,
        dup_discarded: run.net.noise.dup_discarded,
        leaves: elastic.leaves,
        joins: elastic.joins,
        crashes: elastic.recovery.crashes,
        catchup_secs: run.net.catchup_seconds,
        net_overhead_secs: run.net.overhead_seconds(),
        degraded_secs: run.total_seconds(),
        abort_secs,
        deterministic,
        trace_transparent,
        degraded_never_worse,
        exactly_once: run.net.exactly_once(),
        spans_exact,
    }
}

/// Soak DistGNN (full-batch, edge-partitioned) over every timed
/// partition: churn from [`chaos_churn_spec`], faults from
/// [`FaultSpec::standard`] at `mtbf`, network faults from
/// [`netchaos_net_spec`], snapshots every `checkpoint_every` epochs.
/// Same seed ⇒ bit-identical rows.
pub fn distgnn_netchaos_soak(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
) -> Vec<NetChaosRow> {
    distgnn_netchaos_soak_threaded(
        graph,
        timed,
        params,
        epochs,
        mtbf,
        checkpoint_every,
        seed,
        Threads::serial(),
    )
}

/// [`distgnn_netchaos_soak`] on the `gp-exec` pool: one job per
/// partitioner, rows in `timed` order, bit-identical for every
/// `(sweep, engine)` width pair (each cell is pure and owns its trace
/// sink).
#[allow(clippy::too_many_arguments)]
pub fn distgnn_netchaos_soak_threaded(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<NetChaosRow> {
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                let k = t.partition.k();
                let config =
                    DistGnnConfig::paper(params.model(ModelKind::Sage), ClusterSpec::paper(k));
                let engine = DistGnnEngine::builder(graph, &t.partition)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let faults = FaultPlan::generate(&FaultSpec::standard(k, epochs, mtbf, seed));
                let churn = ChurnPlan::generate(&chaos_churn_spec(k, epochs, seed));
                let net = NetFaultPlan::generate(&netchaos_net_spec(k, epochs, seed));
                let ckpt = CheckpointConfig::periodic(checkpoint_every);
                let spec_with = |nopts: NetRunOptions| {
                    RunSpec::healthy()
                        .epochs(epochs)
                        .faults(faults.clone())
                        .elastic(churn.clone(), ckpt.clone(), ElasticOptions::default())
                        .net(net.clone(), nopts)
                };
                let spec = spec_with(NetRunOptions::default());
                let Ok(report) = engine.run(&spec) else {
                    return NetChaosRow::failed(t.name.clone(), epochs);
                };
                let degraded = report.into_partitioned();
                let again = engine
                    .run(&spec)
                    .expect("rerun of a completed schedule")
                    .into_partitioned();
                let abort = engine
                    .run(&spec_with(NetRunOptions::abort_only()))
                    .ok()
                    .map(|r| r.into_partitioned());
                let sink = TraceSink::enabled();
                let traced = DistGnnEngine::builder(graph, &t.partition)
                    .config(config)
                    .trace(sink.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config")
                    .run(&spec)
                    .expect("traced rerun of a completed schedule")
                    .into_partitioned();
                assemble_row(
                    t.name.clone(),
                    k,
                    epochs,
                    &DISTGNN_PHASES,
                    &degraded,
                    &again,
                    abort.as_ref(),
                    &traced,
                    &sink,
                )
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Soak DistDGL (mini-batch, vertex-partitioned) over every timed
/// partition; mirrors [`distgnn_netchaos_soak`].
#[allow(clippy::too_many_arguments)]
pub fn distdgl_netchaos_soak(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
) -> Vec<NetChaosRow> {
    distdgl_netchaos_soak_threaded(
        graph,
        split,
        timed,
        params,
        kind,
        global_batch_size,
        epochs,
        mtbf,
        checkpoint_every,
        seed,
        Threads::serial(),
    )
}

/// [`distdgl_netchaos_soak`] on the `gp-exec` pool: one job per
/// partitioner, rows in `timed` order, bit-identical for every
/// `(sweep, engine)` width pair.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_netchaos_soak_threaded(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<NetChaosRow> {
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                let k = t.partition.k();
                let mut config = DistDglConfig::paper(params.model(kind), ClusterSpec::paper(k));
                config.global_batch_size = global_batch_size;
                let engine = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let faults = FaultPlan::generate(&FaultSpec::standard(k, epochs, mtbf, seed));
                let churn = ChurnPlan::generate(&chaos_churn_spec(k, epochs, seed));
                let net = NetFaultPlan::generate(&netchaos_net_spec(k, epochs, seed));
                let ckpt = CheckpointConfig::periodic(checkpoint_every);
                let spec_with = |nopts: NetRunOptions| {
                    RunSpec::healthy()
                        .epochs(epochs)
                        .faults(faults.clone())
                        .elastic(churn.clone(), ckpt.clone(), ElasticOptions::default())
                        .net(net.clone(), nopts)
                };
                let spec = spec_with(NetRunOptions::default());
                let Ok(report) = engine.run(&spec) else {
                    return NetChaosRow::failed(t.name.clone(), epochs);
                };
                let degraded = report.into_partitioned();
                let again = engine
                    .run(&spec)
                    .expect("rerun of a completed schedule")
                    .into_partitioned();
                let abort = engine
                    .run(&spec_with(NetRunOptions::abort_only()))
                    .ok()
                    .map(|r| r.into_partitioned());
                let sink = TraceSink::enabled();
                let traced = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config)
                    .trace(sink.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config")
                    .run(&spec)
                    .expect("traced rerun of a completed schedule")
                    .into_partitioned();
                assemble_row(
                    t.name.clone(),
                    k,
                    epochs,
                    &DISTDGL_PHASES,
                    &degraded,
                    &again,
                    abort.as_ref(),
                    &traced,
                    &sink,
                )
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Render network-chaos rows as a [`Table`] (CSV / Markdown ready). The
/// last column is the invariant verdict (`ok` / `FAIL`).
pub fn netchaos_table(name: &str, rows: &[NetChaosRow]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "epochs",
            "completed",
            "windows",
            "degraded_w",
            "aborted_w",
            "part_epochs",
            "max_stale",
            "stale_served",
            "deferred",
            "retries",
            "dup_drop",
            "degraded_s",
            "abort_s",
            "saving_pct",
            "net_overhead_s",
            "invariants",
        ],
    );
    for r in rows {
        table.push(vec![
            r.name.clone(),
            r.epochs.to_string(),
            r.completed_epochs.to_string(),
            r.windows.to_string(),
            r.degraded_windows.to_string(),
            r.aborted_windows.to_string(),
            r.partitioned_epochs.to_string(),
            r.max_staleness.to_string(),
            r.stale_served.to_string(),
            r.deferred_fetches.to_string(),
            r.net_retries.to_string(),
            r.dup_discarded.to_string(),
            format!("{:.4}", r.degraded_secs),
            format!("{:.4}", r.abort_secs),
            format!("{:.2}", r.degraded_saving_pct()),
            format!("{:.4}", r.net_overhead_secs),
            if r.holds() { "ok".to_string() } else { "FAIL".to_string() },
        ]);
    }
    table
}

use crate::benchjson;

fn netchaos_rows_json(rows: &[NetChaosRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            benchjson::Obj::new()
                .str("partitioner", &r.name)
                .uint("epochs", u64::from(r.epochs))
                .uint("completed_epochs", u64::from(r.completed_epochs))
                .uint("windows", u64::from(r.windows))
                .uint("degraded_windows", u64::from(r.degraded_windows))
                .uint("aborted_windows", u64::from(r.aborted_windows))
                .uint("partitioned_epochs", u64::from(r.partitioned_epochs))
                .uint("degraded_epochs", u64::from(r.degraded_epochs))
                .uint("max_staleness", u64::from(r.max_staleness))
                .uint("stale_served", r.stale_served)
                .uint("deferred_fetches", r.deferred_fetches)
                .uint("net_retries", r.net_retries)
                .uint("dup_discarded", r.dup_discarded)
                .uint("leaves", u64::from(r.leaves))
                .uint("joins", u64::from(r.joins))
                .uint("crashes", u64::from(r.crashes))
                .f9("catchup_seconds", r.catchup_secs)
                .f9("net_overhead_seconds", r.net_overhead_secs)
                .f9("degraded_seconds", r.degraded_secs)
                .f9("abort_seconds", r.abort_secs)
                .f9("degraded_saving_pct", r.degraded_saving_pct())
                .boolean("invariants_hold", r.holds())
                .finish()
        })
        .collect();
    benchjson::array(&entries)
}

/// The `BENCH_netchaos.json` payload: per-partitioner degraded-mode and
/// transport-noise metrics for both engines, plus the invariant
/// verdicts. Deterministic rows ⇒ byte-identical artifact.
pub fn netchaos_bench_json(distgnn: &[NetChaosRow], distdgl: &[NetChaosRow]) -> String {
    benchjson::bench_doc(
        "netchaos",
        &[("distgnn", netchaos_rows_json(distgnn)), ("distdgl", netchaos_rows_json(distdgl))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{timed_edge_partitions, timed_vertex_partitions};
    use gp_graph::{DatasetId, GraphScale};

    #[test]
    fn netchaos_spec_schedules_actual_partitions() {
        let plan = NetFaultPlan::generate(&netchaos_net_spec(8, 40, 0xc0de));
        assert!(!plan.windows.is_empty(), "soak spec must arm partition windows");
        assert!(plan.has_noise());
    }

    #[test]
    fn distgnn_netchaos_rows_hold_all_invariants() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed: Vec<_> = timed_edge_partitions(&g, 4, 1).into_iter().take(3).collect();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let rows = distgnn_netchaos_soak(&g, &timed, params, 10, 6.0, 2, 0xc0de);
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert!(r.holds(), "{}: invariants must hold: {r:?}", r.name);
            assert_eq!(r.completed_epochs, 10);
            assert!(r.windows > 0, "{}: soak must arm partition windows", r.name);
            assert!(r.net_retries > 0, "{}: loss must cause retries", r.name);
        }
        let again = distgnn_netchaos_soak(&g, &timed, params, 10, 6.0, 2, 0xc0de);
        assert_eq!(rows, again, "same seed must give bit-identical rows");
    }

    #[test]
    fn distdgl_netchaos_rows_hold_all_invariants() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let rows = distdgl_netchaos_soak(
            &g, &split, &timed, params, ModelKind::Sage, 256, 8, 6.0, 2, 0xc0de,
        );
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert!(r.holds(), "{}: invariants must hold: {r:?}", r.name);
            assert_eq!(r.completed_epochs, 8);
            assert!(r.windows > 0, "{}: soak must arm partition windows", r.name);
        }
        let again = distdgl_netchaos_soak(
            &g, &split, &timed, params, ModelKind::Sage, 256, 8, 6.0, 2, 0xc0de,
        );
        assert_eq!(rows, again);
    }

    #[test]
    fn netchaos_soaks_threaded_are_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let timed: Vec<_> = timed_edge_partitions(&g, 4, 1).into_iter().take(3).collect();
        let serial = distgnn_netchaos_soak(&g, &timed, params, 8, 6.0, 2, 7);
        for threads in [2usize, 4] {
            let par = distgnn_netchaos_soak_threaded(
                &g, &timed, params, 8, 6.0, 2, 7,
                gp_exec::Threads::new(threads),
            );
            assert_eq!(par, serial, "distgnn threads = {threads}");
        }
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let vtimed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let vserial = distdgl_netchaos_soak(
            &g, &split, &vtimed, params, ModelKind::Sage, 256, 6, 6.0, 2, 7,
        );
        let vpar = distdgl_netchaos_soak_threaded(
            &g, &split, &vtimed, params, ModelKind::Sage, 256, 6, 6.0, 2, 7,
            gp_exec::Threads::new(4),
        );
        assert_eq!(vpar, vserial);
    }

    #[test]
    fn table_and_json_render_all_rows_and_verdicts() {
        let ok = NetChaosRow {
            name: "Metis".into(),
            epochs: 10,
            completed_epochs: 10,
            windows: 2,
            degraded_windows: 1,
            aborted_windows: 1,
            partitioned_epochs: 4,
            degraded_epochs: 2,
            max_staleness: 2,
            stale_served: 120,
            deferred_fetches: 40,
            net_retries: 7,
            dup_discarded: 3,
            catchup_secs: 0.125,
            net_overhead_secs: 0.25,
            degraded_secs: 1.4,
            abort_secs: 1.9,
            deterministic: true,
            trace_transparent: true,
            degraded_never_worse: true,
            exactly_once: true,
            spans_exact: true,
            ..NetChaosRow::default()
        };
        let failed = NetChaosRow::failed("Random".into(), 10);
        assert!(ok.holds());
        assert!(!failed.holds());
        let t = netchaos_table("netchaos", &[ok.clone(), failed.clone()]);
        let csv = t.to_csv();
        assert!(csv.contains("Metis"));
        assert!(csv.contains(",ok"), "verdict column: {csv}");
        assert!(csv.contains(",FAIL"), "failed verdict: {csv}");
        assert!(t.to_markdown().contains("degraded_w"));
        let json = netchaos_bench_json(&[ok], &[failed]);
        assert!(json.starts_with("{\"bench\":\"netchaos\""));
        assert!(json.contains("\"invariants_hold\":true"));
        assert!(json.contains("\"invariants_hold\":false"));
        assert!(json.contains("\"catchup_seconds\":0.125000000"));
        assert!(json.ends_with("}\n"));
    }
}
