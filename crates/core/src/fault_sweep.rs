//! Fault-injection sweeps: partitioner × failure-rate grid.
//!
//! Extends the paper's study with a robustness axis: how much does each
//! partitioning strategy pay when the cluster misbehaves? Every grid
//! point runs a seeded [`FaultPlan`] (crashes at a given cluster-wide
//! MTBF plus the mild stragglers/brownouts of [`FaultSpec::standard`])
//! through one of the engines and records the recovery overhead next to
//! the healthy baseline. Same seed ⇒ bit-identical rows.

use gp_cluster::{
    ClusterSpec, FaultPlan, FaultSpec, MitigationPolicy, MitigationReport, RecoveryReport, RunSpec,
};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::{par_map, Parallelism, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_tensor::ModelKind;

use crate::config::PaperParams;
use crate::experiment::{TimedEdgePartition, TimedVertexPartition};
use crate::report::Table;

/// One (partitioner, MTBF) cell of a fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepRow {
    /// Partitioner name.
    pub name: String,
    /// Cluster-wide mean epochs between crashes for this cell.
    pub mtbf_epochs: f64,
    /// Epochs that completed before the run ended (equals the horizon
    /// unless the engine reported an unrecoverable failure).
    pub completed_epochs: u32,
    /// Sum of healthy epoch times over the completed epochs.
    pub healthy_secs: f64,
    /// Sum of fault-injected epoch times over the completed epochs
    /// (executed steps only; recovery overhead is separate).
    pub faulty_secs: f64,
    /// Accumulated recovery overhead (retries, re-execution,
    /// checkpoints, restores) in simulated seconds.
    pub overhead_secs: f64,
    /// Crashes that actually hit the run.
    pub crashes: u32,
    /// Message retries caused by lossy links.
    pub retries: u64,
    /// Bytes moved only because of recovery (restores + re-served state).
    pub recovery_bytes: u64,
    /// Epochs of work lost to crashes and re-executed.
    pub lost_progress_epochs: f64,
}

impl FaultSweepRow {
    /// Wall-time inflation over the healthy baseline:
    /// `(faulty + overhead) / healthy`.
    pub fn slowdown(&self) -> f64 {
        if self.healthy_secs <= 0.0 {
            return 1.0;
        }
        (self.faulty_secs + self.overhead_secs) / self.healthy_secs
    }
}

/// Sweep DistGNN (full-batch, edge-partitioned) over every timed
/// partition × MTBF. `checkpoint_every = 0` disables checkpoints; with
/// them disabled a single-machine cluster cannot recover from a crash
/// and the row ends early at the crash epoch.
pub fn distgnn_fault_sweep(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    epochs: u32,
    mtbfs: &[f64],
    checkpoint_every: u32,
    seed: u64,
) -> Vec<FaultSweepRow> {
    distgnn_fault_sweep_threaded(
        graph,
        timed,
        params,
        epochs,
        mtbfs,
        checkpoint_every,
        seed,
        Threads::serial(),
    )
}

/// [`distgnn_fault_sweep`] on the `gp-exec` pool: one job per
/// (partitioner, MTBF) cell, rows in the serial loop's order
/// (partitioner-major), bit-identical for every `(sweep, engine)`
/// width pair. Each cell rebuilds its engine and healthy baseline —
/// both are pure, so the recomputation changes no `f64`. The faulty
/// run uses the [`RunSpec`] truncate-and-record contract: completed
/// epochs are exactly the prefix before the first unrecoverable
/// failure, as the old per-epoch loop observed.
#[allow(clippy::too_many_arguments)]
pub fn distgnn_fault_sweep_threaded(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    epochs: u32,
    mtbfs: &[f64],
    checkpoint_every: u32,
    seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<FaultSweepRow> {
    let par = par.into();
    let mut jobs = Vec::with_capacity(timed.len() * mtbfs.len());
    for t in timed {
        for &mtbf in mtbfs {
            jobs.push(move || {
                let k = t.partition.k();
                let mut config =
                    DistGnnConfig::paper(params.model(ModelKind::Sage), ClusterSpec::paper(k));
                config.checkpoint_every = checkpoint_every;
                let engine = DistGnnEngine::builder(graph, &t.partition)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let healthy_epoch =
                    engine.run(&RunSpec::healthy()).expect("healthy run").into_healthy()[0]
                        .epoch_time();
                let plan = FaultPlan::generate(&FaultSpec::standard(k, epochs, mtbf, seed));
                let (faulty, _) = engine
                    .run(&RunSpec::healthy().epochs(epochs).faults(plan))
                    .expect("valid spec")
                    .into_faulty();
                let mut recovery = RecoveryReport::default();
                let mut faulty_secs = 0.0;
                for r in &faulty {
                    faulty_secs += r.report.epoch_time();
                    recovery.merge(&r.recovery);
                }
                let completed = faulty.len() as u32;
                FaultSweepRow {
                    name: t.name.clone(),
                    mtbf_epochs: mtbf,
                    completed_epochs: completed,
                    healthy_secs: healthy_epoch * f64::from(completed),
                    faulty_secs,
                    overhead_secs: recovery.total_overhead_seconds(),
                    crashes: recovery.crashes,
                    retries: recovery.retries,
                    recovery_bytes: recovery.recovery_bytes,
                    lost_progress_epochs: recovery.lost_progress_epochs,
                }
            });
        }
    }
    par_map(par.sweep, jobs)
}

/// Sweep DistDGL (mini-batch, vertex-partitioned) over every timed
/// partition × MTBF. DistDGL crashes are permanent: survivors absorb
/// the lost training set, so a row only ends early when every worker is
/// gone.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_fault_sweep(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    mtbfs: &[f64],
    seed: u64,
) -> Vec<FaultSweepRow> {
    distdgl_fault_sweep_threaded(
        graph,
        split,
        timed,
        params,
        kind,
        global_batch_size,
        epochs,
        mtbfs,
        seed,
        Threads::serial(),
    )
}

/// [`distdgl_fault_sweep`] on the `gp-exec` pool: one job per
/// (partitioner, MTBF) cell, rows in the serial loop's order,
/// bit-identical for every `(sweep, engine)` width pair. The healthy
/// baseline is a separate [`RunSpec::healthy`] run over the same
/// horizon, summed over the faulty run's completed prefix — epochs are
/// stateless, so the per-epoch values match the old interleaved loop
/// exactly.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_fault_sweep_threaded(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    mtbfs: &[f64],
    seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<FaultSweepRow> {
    let par = par.into();
    let mut jobs = Vec::with_capacity(timed.len() * mtbfs.len());
    for t in timed {
        for &mtbf in mtbfs {
            jobs.push(move || {
                let k = t.partition.k();
                let mut config = DistDglConfig::paper(params.model(kind), ClusterSpec::paper(k));
                config.global_batch_size = global_batch_size;
                let engine = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let plan = FaultPlan::generate(&FaultSpec::standard(k, epochs, mtbf, seed));
                let (faulty, _) = engine
                    .run(&RunSpec::healthy().epochs(epochs).faults(plan))
                    .expect("valid spec")
                    .into_faulty();
                let healthy = engine
                    .run(&RunSpec::healthy().epochs(epochs))
                    .expect("healthy run")
                    .into_healthy();
                let mut recovery = RecoveryReport::default();
                let mut healthy_secs = 0.0;
                let mut faulty_secs = 0.0;
                for (r, h) in faulty.iter().zip(&healthy) {
                    healthy_secs += h.epoch_time();
                    faulty_secs += r.summary.epoch_time();
                    recovery.merge(&r.recovery);
                }
                let completed = faulty.len() as u32;
                FaultSweepRow {
                    name: t.name.clone(),
                    mtbf_epochs: mtbf,
                    completed_epochs: completed,
                    healthy_secs,
                    faulty_secs,
                    overhead_secs: recovery.total_overhead_seconds(),
                    crashes: recovery.crashes,
                    retries: recovery.retries,
                    recovery_bytes: recovery.recovery_bytes,
                    lost_progress_epochs: recovery.lost_progress_epochs,
                }
            });
        }
    }
    par_map(par.sweep, jobs)
}

/// One (partitioner, policy) cell of a mitigation sweep: the *same*
/// seeded fault plan run through an engine twice — plain fault path vs
/// mitigated — so the two totals differ only by what the mitigation
/// layer did.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationSweepRow {
    /// Partitioner name.
    pub name: String,
    /// Mitigation policy mode (`none|steal|speculate|adaptive|all`).
    pub policy: String,
    /// Cluster-wide mean epochs between crashes of the shared plan.
    pub mtbf_epochs: f64,
    /// Epochs both runs completed.
    pub completed_epochs: u32,
    /// Total simulated seconds of the unmitigated run (epoch time plus
    /// recovery overhead).
    pub unmitigated_secs: f64,
    /// Total simulated seconds of the mitigated run (epoch time plus
    /// recovery overhead plus one-off migration time).
    pub mitigated_secs: f64,
    /// Steps in which straggler work was stolen (DistDGL).
    pub stolen_steps: u64,
    /// Steps speculatively re-executed (DistDGL).
    pub speculated_steps: u64,
    /// cd-r sync-period changes (DistGNN).
    pub sync_period_changes: u32,
    /// Master replicas migrated off persistent stragglers (DistGNN).
    pub masters_migrated: u64,
    /// Extra traffic the mitigation layer paid for its wins.
    pub extra_bytes: u64,
}

impl MitigationSweepRow {
    /// Percentage of the unmitigated wall time saved by mitigation
    /// (non-negative by the engines' per-decision guards).
    pub fn improvement_pct(&self) -> f64 {
        if self.unmitigated_secs <= 0.0 {
            return 0.0;
        }
        100.0 * (self.unmitigated_secs - self.mitigated_secs) / self.unmitigated_secs
    }
}

/// A fault environment tuned to exercise the mitigation layer: no
/// crashes (so both runs execute the very same steps and the totals
/// differ only by mitigation), but long deep stragglers and brownouts —
/// the conditions stealing, speculation and adaptive cd-r react to.
pub fn mitigation_stress_spec(machines: u32, epochs: u32, seed: u64) -> FaultSpec {
    FaultSpec {
        machines,
        epochs,
        slowdown_prob: 0.06,
        slowdown_factor: 0.25,
        slowdown_epochs: 3,
        degradation_prob: 0.12,
        degradation_bandwidth_factor: 0.25,
        degradation_loss_rate: 0.02,
        degradation_epochs: 3,
        seed,
        ..FaultSpec::default()
    }
}

/// Run DistGNN over every timed partition under `spec`'s fault plan,
/// unmitigated and mitigated with `policy`, and report both totals. The
/// plan is generated once and shared by every partitioner (and both
/// runs), so rows are comparable cell-to-cell; same spec ⇒ bit-identical
/// rows.
pub fn distgnn_mitigation_sweep(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    spec: &FaultSpec,
    checkpoint_every: u32,
    policy: MitigationPolicy,
) -> Vec<MitigationSweepRow> {
    distgnn_mitigation_sweep_threaded(
        graph,
        timed,
        params,
        spec,
        checkpoint_every,
        policy,
        Threads::serial(),
    )
}

/// [`distgnn_mitigation_sweep`] on the `gp-exec` pool: one job per
/// partitioner (the mitigation session is stateful across that
/// partitioner's epochs, so a cell is the whole epoch loop), rows in
/// `timed` order, bit-identical for every `(sweep, engine)` width
/// pair. The unmitigated and mitigated totals come from two separate
/// [`RunSpec`] runs over the shared plan; epochs are stateless outside
/// the mitigation session (which lives inside the mitigated run), so
/// the per-epoch values match the old interleaved loop exactly, and
/// `completed` — the prefix both runs finished — matches its break
/// condition.
pub fn distgnn_mitigation_sweep_threaded(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    spec: &FaultSpec,
    checkpoint_every: u32,
    policy: MitigationPolicy,
    par: impl Into<Parallelism>,
) -> Vec<MitigationSweepRow> {
    let par = par.into();
    let plan = FaultPlan::generate(spec);
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            let plan = &plan;
            move || {
                let k = t.partition.k();
                let mut config =
                    DistGnnConfig::paper(params.model(ModelKind::Sage), ClusterSpec::paper(k));
                config.checkpoint_every = checkpoint_every;
                let engine = DistGnnEngine::builder(graph, &t.partition)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let (unmit, _) = engine
                    .run(&RunSpec::healthy().epochs(spec.epochs).faults(plan.clone()))
                    .expect("valid spec")
                    .into_faulty();
                let (mit, _) = engine
                    .run(
                        &RunSpec::healthy()
                            .epochs(spec.epochs)
                            .faults(plan.clone())
                            .mitigate(policy),
                    )
                    .expect("valid spec")
                    .into_mitigated();
                let completed = unmit.len().min(mit.len()) as u32;
                let mut unmitigated_secs = 0.0;
                let mut mitigated_secs = 0.0;
                let mut mitigation = MitigationReport::default();
                for (u, m) in unmit.iter().zip(mit.iter()) {
                    unmitigated_secs +=
                        u.report.epoch_time() + u.recovery.total_overhead_seconds();
                    mitigated_secs +=
                        m.report.epoch_time() + m.recovery.total_overhead_seconds();
                    mitigation.merge(&m.mitigation);
                }
                // Master migration is a one-off cost outside the epoch phases.
                mitigated_secs += mitigation.migration_seconds;
                MitigationSweepRow {
                    name: t.name.clone(),
                    policy: policy.name().to_string(),
                    mtbf_epochs: spec.crash_mtbf_epochs,
                    completed_epochs: completed,
                    unmitigated_secs,
                    mitigated_secs,
                    stolen_steps: mitigation.stolen_steps,
                    speculated_steps: mitigation.speculated_steps,
                    sync_period_changes: mitigation.sync_period_changes,
                    masters_migrated: mitigation.masters_migrated,
                    extra_bytes: mitigation.total_extra_bytes(),
                }
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Run DistDGL over every timed partition under `spec`'s fault plan,
/// unmitigated and mitigated with `policy` (see
/// [`distgnn_mitigation_sweep`] for the shared-plan semantics).
#[allow(clippy::too_many_arguments)]
pub fn distdgl_mitigation_sweep(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    spec: &FaultSpec,
    policy: MitigationPolicy,
) -> Vec<MitigationSweepRow> {
    distdgl_mitigation_sweep_threaded(
        graph,
        split,
        timed,
        params,
        kind,
        global_batch_size,
        spec,
        policy,
        Threads::serial(),
    )
}

/// [`distdgl_mitigation_sweep`] on the `gp-exec` pool: one job per
/// partitioner, rows in `timed` order, bit-identical for every
/// `(sweep, engine)` width pair. Totals come from two separate
/// [`RunSpec`] runs; see [`distgnn_mitigation_sweep_threaded`] for the
/// equivalence argument.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_mitigation_sweep_threaded(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    spec: &FaultSpec,
    policy: MitigationPolicy,
    par: impl Into<Parallelism>,
) -> Vec<MitigationSweepRow> {
    let par = par.into();
    let plan = FaultPlan::generate(spec);
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            let plan = &plan;
            move || {
                let k = t.partition.k();
                let mut config = DistDglConfig::paper(params.model(kind), ClusterSpec::paper(k));
                config.global_batch_size = global_batch_size;
                let engine = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let (unmit, _) = engine
                    .run(&RunSpec::healthy().epochs(spec.epochs).faults(plan.clone()))
                    .expect("valid spec")
                    .into_faulty();
                let (mit, _) = engine
                    .run(
                        &RunSpec::healthy()
                            .epochs(spec.epochs)
                            .faults(plan.clone())
                            .mitigate(policy),
                    )
                    .expect("valid spec")
                    .into_mitigated();
                let completed = unmit.len().min(mit.len()) as u32;
                let mut unmitigated_secs = 0.0;
                let mut mitigated_secs = 0.0;
                let mut mitigation = MitigationReport::default();
                for (u, m) in unmit.iter().zip(mit.iter()) {
                    unmitigated_secs +=
                        u.summary.epoch_time() + u.recovery.total_overhead_seconds();
                    mitigated_secs +=
                        m.summary.epoch_time() + m.recovery.total_overhead_seconds();
                    mitigation.merge(&m.mitigation);
                }
                MitigationSweepRow {
                    name: t.name.clone(),
                    policy: policy.name().to_string(),
                    mtbf_epochs: spec.crash_mtbf_epochs,
                    completed_epochs: completed,
                    unmitigated_secs,
                    mitigated_secs,
                    stolen_steps: mitigation.stolen_steps,
                    speculated_steps: mitigation.speculated_steps,
                    sync_period_changes: mitigation.sync_period_changes,
                    masters_migrated: mitigation.masters_migrated,
                    extra_bytes: mitigation.total_extra_bytes(),
                }
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Render mitigation-sweep rows as a [`Table`] (CSV / Markdown ready).
pub fn mitigation_sweep_table(name: &str, rows: &[MitigationSweepRow]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "policy",
            "mtbf_epochs",
            "completed_epochs",
            "unmitigated_s",
            "mitigated_s",
            "improvement_pct",
            "stolen_steps",
            "speculated_steps",
            "sync_changes",
            "masters_migrated",
            "extra_MB",
        ],
    );
    for r in rows {
        table.push(vec![
            r.name.clone(),
            r.policy.clone(),
            format!("{:.1}", r.mtbf_epochs),
            r.completed_epochs.to_string(),
            format!("{:.4}", r.unmitigated_secs),
            format!("{:.4}", r.mitigated_secs),
            format!("{:.2}", r.improvement_pct()),
            r.stolen_steps.to_string(),
            r.speculated_steps.to_string(),
            r.sync_period_changes.to_string(),
            r.masters_migrated.to_string(),
            format!("{:.3}", r.extra_bytes as f64 / 1e6),
        ]);
    }
    table
}

/// Render sweep rows as a [`Table`] (CSV / Markdown ready).
pub fn fault_sweep_table(name: &str, rows: &[FaultSweepRow]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "mtbf_epochs",
            "completed_epochs",
            "healthy_s",
            "faulty_s",
            "overhead_s",
            "slowdown",
            "crashes",
            "retries",
            "recovery_MB",
            "lost_epochs",
        ],
    );
    for r in rows {
        table.push(vec![
            r.name.clone(),
            format!("{:.1}", r.mtbf_epochs),
            r.completed_epochs.to_string(),
            format!("{:.4}", r.healthy_secs),
            format!("{:.4}", r.faulty_secs),
            format!("{:.4}", r.overhead_secs),
            format!("{:.3}", r.slowdown()),
            r.crashes.to_string(),
            r.retries.to_string(),
            format!("{:.2}", r.recovery_bytes as f64 / 1e6),
            format!("{:.3}", r.lost_progress_epochs),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{timed_edge_partitions, timed_vertex_partitions};
    use gp_graph::{DatasetId, GraphScale};

    #[test]
    fn distgnn_sweep_shape_and_determinism() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let mtbfs = [4.0, 16.0];
        let rows = distgnn_fault_sweep(&g, &timed, params, 6, &mtbfs, 2, 7);
        assert_eq!(rows.len(), timed.len() * mtbfs.len());
        for r in &rows {
            assert_eq!(r.completed_epochs, 6, "checkpointed DistGNN always recovers");
            assert!(r.faulty_secs >= r.healthy_secs * 0.999, "{}: faults never speed up", r.name);
            assert!(r.overhead_secs >= 0.0);
            assert!(r.slowdown() >= 1.0 - 1e-9);
        }
        let again = distgnn_fault_sweep(&g, &timed, params, 6, &mtbfs, 2, 7);
        assert_eq!(rows, again, "same seed must give bit-identical rows");
    }

    #[test]
    fn distdgl_sweep_shape_and_determinism() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let mtbfs = [8.0];
        let rows = distdgl_fault_sweep(
            &g, &split, &timed, params, ModelKind::Sage, 256, 4, &mtbfs, 7,
        );
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert!(r.completed_epochs > 0);
            assert!(r.overhead_secs >= 0.0);
        }
        let again = distdgl_fault_sweep(
            &g, &split, &timed, params, ModelKind::Sage, 256, 4, &mtbfs, 7,
        );
        assert_eq!(rows, again);
    }

    #[test]
    fn distgnn_mitigation_sweep_never_worse_and_deterministic() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed = timed_edge_partitions(&g, 4, 1);
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let spec = mitigation_stress_spec(4, 8, 0xad_a97);
        let rows = distgnn_mitigation_sweep(
            &g,
            &timed,
            params,
            &spec,
            2,
            MitigationPolicy::adaptive(),
        );
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert_eq!(r.policy, "adaptive");
            assert_eq!(r.completed_epochs, 8);
            assert!(
                r.mitigated_secs <= r.unmitigated_secs + 1e-9,
                "{}: mitigation must never make it worse",
                r.name
            );
            assert!(r.improvement_pct() >= -1e-9);
        }
        let again = distgnn_mitigation_sweep(
            &g,
            &timed,
            params,
            &spec,
            2,
            MitigationPolicy::adaptive(),
        );
        assert_eq!(rows, again, "same spec must give bit-identical rows");
    }

    #[test]
    fn distdgl_mitigation_sweep_never_worse_and_deterministic() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let spec = mitigation_stress_spec(4, 6, 0xad_a97);
        let rows = distdgl_mitigation_sweep(
            &g,
            &split,
            &timed,
            params,
            ModelKind::Sage,
            64,
            &spec,
            MitigationPolicy::all(),
        );
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert_eq!(r.policy, "all");
            assert!(r.completed_epochs > 0);
            assert!(
                r.mitigated_secs <= r.unmitigated_secs + 1e-9,
                "{}: mitigation must never make it worse",
                r.name
            );
        }
        let again = distdgl_mitigation_sweep(
            &g,
            &split,
            &timed,
            params,
            ModelKind::Sage,
            64,
            &spec,
            MitigationPolicy::all(),
        );
        assert_eq!(rows, again);
    }

    #[test]
    fn fault_sweeps_threaded_are_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let timed = timed_edge_partitions(&g, 4, 1);
        let mtbfs = [4.0, 16.0];
        let serial = distgnn_fault_sweep(&g, &timed, params, 4, &mtbfs, 2, 7);
        for threads in [2usize, 4, 8] {
            let par = distgnn_fault_sweep_threaded(
                &g, &timed, params, 4, &mtbfs, 2, 7,
                gp_exec::Threads::new(threads),
            );
            assert_eq!(par, serial, "distgnn threads = {threads}");
        }
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let vtimed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let vserial = distdgl_fault_sweep(
            &g, &split, &vtimed, params, ModelKind::Sage, 256, 3, &[8.0], 7,
        );
        let vpar = distdgl_fault_sweep_threaded(
            &g, &split, &vtimed, params, ModelKind::Sage, 256, 3, &[8.0], 7,
            gp_exec::Threads::new(4),
        );
        assert_eq!(vpar, vserial);
    }

    #[test]
    fn mitigation_sweeps_threaded_are_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let timed: Vec<_> = timed_edge_partitions(&g, 4, 1).into_iter().take(3).collect();
        let spec = mitigation_stress_spec(4, 5, 0xad_a97);
        let serial = distgnn_mitigation_sweep(
            &g, &timed, params, &spec, 2, MitigationPolicy::adaptive(),
        );
        let par = distgnn_mitigation_sweep_threaded(
            &g, &timed, params, &spec, 2, MitigationPolicy::adaptive(),
            gp_exec::Threads::new(4),
        );
        assert_eq!(par, serial);
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let vtimed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let vspec = mitigation_stress_spec(4, 4, 0xad_a97);
        let vserial = distdgl_mitigation_sweep(
            &g, &split, &vtimed, params, ModelKind::Sage, 64, &vspec, MitigationPolicy::all(),
        );
        let vpar = distdgl_mitigation_sweep_threaded(
            &g, &split, &vtimed, params, ModelKind::Sage, 64, &vspec, MitigationPolicy::all(),
            gp_exec::Threads::new(2),
        );
        assert_eq!(vpar, vserial);
    }

    #[test]
    fn mitigation_table_renders_all_rows() {
        let rows = vec![MitigationSweepRow {
            name: "Metis".into(),
            policy: "steal".into(),
            mtbf_epochs: 0.0,
            completed_epochs: 12,
            unmitigated_secs: 2.0,
            mitigated_secs: 1.5,
            stolen_steps: 9,
            speculated_steps: 0,
            sync_period_changes: 0,
            masters_migrated: 0,
            extra_bytes: 4_000_000,
        }];
        let t = mitigation_sweep_table("ablation_mitigation", &rows);
        let csv = t.to_csv();
        assert!(csv.contains("Metis"));
        assert!(csv.contains("25.00"), "improvement column: {csv}");
        assert!(t.to_markdown().contains("sync_changes"));
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![FaultSweepRow {
            name: "Random".into(),
            mtbf_epochs: 5.0,
            completed_epochs: 10,
            healthy_secs: 1.0,
            faulty_secs: 1.2,
            overhead_secs: 0.3,
            crashes: 1,
            retries: 42,
            recovery_bytes: 2_000_000,
            lost_progress_epochs: 0.5,
        }];
        let t = fault_sweep_table("fault_sweep", &rows);
        let csv = t.to_csv();
        assert!(csv.contains("Random"));
        assert!(csv.contains("1.500"), "slowdown column: {csv}");
        assert!(t.to_markdown().contains("recovery_MB"));
    }
}
