//! Streaming dynamic-graph sweep: quality decay under a seeded
//! mutation stream, incremental partition maintenance, and the
//! repartition-policy trade-off (the sweep behind `gnnpart stream`
//! and the `stream` ablation).
//!
//! Every partitioner of the chosen roster replays the same seeded
//! [`StreamSpec`] through its engine's `.stream(..)` [`RunSpec`] leg
//! once per [`RepartitionPolicy`]: the partition is maintained
//! incrementally batch by batch, one training epoch runs on each live
//! snapshot, and the policy decides when to pay for a full re-partition
//! (priced in *simulated* seconds by
//! [`gp_partition::incremental::modeled_partition_seconds`] — never
//! wall clock, so every artifact is bit-identical across thread counts
//! and reruns). Each cell checks the stream contract and records the
//! verdicts in its row:
//!
//! 1. **Deterministic** — the same stream seed gives a bit-identical
//!    [`StreamRunReport`] on a rerun.
//! 2. **Trace-transparent** — attaching an enabled
//!    [`TraceSink`](gp_cluster::TraceSink) changes no `f64` of the
//!    report (the `gnnpart_stream_*` counter families are
//!    observational).
//! 3. **Never worse at adoption** — a policy run is bit-identical to
//!    its `never` twin until its first adopted repartition, and at that
//!    batch the engines' adoption gate promises the candidate is no
//!    worse than the incremental partition it replaced on *both* the
//!    cut-quality metric and the probed epoch time. After that the two
//!    trajectories drift independently, so the whole-horizon totals are
//!    a trade-off the row reports (`speedup_vs_never`,
//!    `amortize_epochs`) rather than an invariant.
//!
//! The row also feeds the paper's amortization question (Tables 4/5):
//! [`crate::amortize::epochs_to_amortize`] prices how many epochs of
//! the policy's faster training repay its modeled repartition cost
//! against the decayed `never` baseline.

use gp_cluster::{ClusterSpec, RunSpec, StreamRunReport, TraceSink};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::{par_map, Parallelism, Threads};
use gp_graph::{Graph, StreamSpec, VertexSplit};
use gp_partition::RepartitionPolicy;
use gp_tensor::ModelKind;

use crate::amortize::epochs_to_amortize;
use crate::config::PaperParams;
use crate::registry;
use crate::report::Table;

/// The three policy families the sweep compares: quality decays
/// unchecked, a drift trigger on the balance metric, and a fixed
/// repartition cadence.
pub fn stream_policies() -> Vec<RepartitionPolicy> {
    vec![
        RepartitionPolicy::Never,
        RepartitionPolicy::Threshold { imbalance: 1.2 },
        RepartitionPolicy::Periodic { every: 4 },
    ]
}

/// One (partitioner, policy) streaming outcome plus its contract
/// verdicts. Quality is the partitioner family's own metric:
/// replication factor for vertex-cut rows, edge-cut ratio for edge-cut
/// rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamSweepRow {
    /// Partitioner name.
    pub name: String,
    /// Stable policy label (`never` / `threshold(x)` / `periodic(n)`).
    pub policy: String,
    /// Requested stream length in batches.
    pub batches: u32,
    /// Batches the run completed (one training epoch each).
    pub completed_batches: u32,
    /// Policy-triggered repartitions that were adopted.
    pub repartitions: u32,
    /// Total modeled repartitioning cost in simulated seconds.
    pub partition_seconds: f64,
    /// Total simulated training time over all epochs.
    pub epoch_seconds: f64,
    /// Quality after the first batch.
    pub initial_quality: f64,
    /// Quality after the last batch.
    pub final_quality: f64,
    /// Worst quality over the run (the decay peak).
    pub peak_quality: f64,
    /// `never` baseline training time over this policy's (1 for the
    /// baseline itself; < 1 when a repartition's immediate gain eroded
    /// under later drift).
    pub speedup_vs_never: f64,
    /// Epochs of the policy's faster training needed to repay its
    /// repartition cost against the `never` baseline
    /// ([`epochs_to_amortize`]); `-1` when it never pays off (no
    /// adopted repartitions, or no per-epoch saving).
    pub amortize_epochs: f64,
    /// Per-batch quality trajectory (the decay curve).
    pub quality_series: Vec<f64>,
    /// Per-batch simulated epoch seconds.
    pub epoch_series: Vec<f64>,
    /// Invariant 1: rerun with the same seed is bit-identical.
    pub deterministic: bool,
    /// Invariant 2: an enabled trace sink changes nothing.
    pub trace_transparent: bool,
    /// Invariant 3: no regression against the `never` twin at the first
    /// adopted repartition (the first batch the two runs differ on).
    pub never_worse: bool,
}

impl StreamSweepRow {
    /// Whether the run completed and every invariant held.
    pub fn holds(&self) -> bool {
        self.completed_batches == self.batches
            && self.deterministic
            && self.trace_transparent
            && self.never_worse
    }

    /// The row of a run that errored out before completing.
    fn failed(name: &str, policy: String, batches: u32) -> StreamSweepRow {
        StreamSweepRow {
            name: name.into(),
            policy,
            batches,
            amortize_epochs: -1.0,
            ..StreamSweepRow::default()
        }
    }
}

/// Quality metric of one batch row: the engines fill exactly one of
/// the two fields, so `max` selects the family's own metric.
fn batch_quality(b: &gp_cluster::StreamBatchReport) -> f64 {
    b.replication_factor.max(b.edge_cut)
}

/// Invariant 3. Same seeds drive both runs down the same incremental
/// path, so the first batch whose quality or epoch time differs from
/// the `never` twin is the first adopted repartition — where the
/// adoption gate promises no regression on either axis. Batches past
/// the divergence drift on independent trajectories and carry no
/// ordering guarantee.
fn never_worse(run: &StreamRunReport, never: &StreamRunReport) -> bool {
    let diverged = run.batches.iter().zip(&never.batches).position(|(a, b)| {
        batch_quality(a) != batch_quality(b) || a.epoch_seconds != b.epoch_seconds
    });
    match diverged {
        None => true,
        Some(i) => {
            batch_quality(&run.batches[i]) <= batch_quality(&never.batches[i]) + 1e-9
                && run.batches[i].epoch_seconds <= never.batches[i].epoch_seconds + 1e-9
        }
    }
}

/// Fold the run variants (primary, rerun, traced) and the `never`
/// baseline into one verdict-carrying row.
fn assemble_row(
    name: &str,
    batches: u32,
    run: &StreamRunReport,
    again: &StreamRunReport,
    traced: &StreamRunReport,
    never: &StreamRunReport,
) -> StreamSweepRow {
    let total = run.total_epoch_seconds();
    let never_total = never.total_epoch_seconds();
    let n = run.batches.len().max(1) as f64;
    StreamSweepRow {
        name: name.into(),
        policy: run.policy.clone(),
        batches,
        completed_batches: run.batches.len() as u32,
        repartitions: run.repartitions(),
        partition_seconds: run.total_partition_seconds(),
        epoch_seconds: total,
        initial_quality: run.batches.first().map_or(0.0, batch_quality),
        final_quality: run.final_quality(),
        peak_quality: run.peak_quality(),
        speedup_vs_never: if total > 0.0 { never_total / total } else { 0.0 },
        amortize_epochs: epochs_to_amortize(
            run.total_partition_seconds(),
            never_total / n,
            total / n,
        )
        .unwrap_or(-1.0),
        quality_series: run.batches.iter().map(batch_quality).collect(),
        epoch_series: run.batches.iter().map(|b| b.epoch_seconds).collect(),
        deterministic: run == again,
        trace_transparent: traced == run,
        never_worse: never_worse(run, never),
    }
}

/// Stream-sweep DistGNN (full-batch, vertex-cut): every named edge
/// partitioner × every policy. The t = 0 partition is built inside the
/// cell from the registry at `partition_seed`, so rows never depend on
/// wall clock. Same seeds ⇒ bit-identical rows.
pub fn distgnn_stream_sweep(
    graph: &Graph,
    names: &[&str],
    k: u32,
    params: PaperParams,
    spec: &StreamSpec,
    policies: &[RepartitionPolicy],
    partition_seed: u64,
) -> Vec<StreamSweepRow> {
    distgnn_stream_sweep_threaded(
        graph,
        names,
        k,
        params,
        spec,
        policies,
        partition_seed,
        Threads::serial(),
    )
}

/// [`distgnn_stream_sweep`] on the `gp-exec` pool: one job per
/// partitioner (its policies run in sequence inside the cell, sharing
/// the `never` baseline), rows in `names` × `policies` order,
/// bit-identical for every `(sweep, engine)` width pair.
#[allow(clippy::too_many_arguments)]
pub fn distgnn_stream_sweep_threaded(
    graph: &Graph,
    names: &[&str],
    k: u32,
    params: PaperParams,
    spec: &StreamSpec,
    policies: &[RepartitionPolicy],
    partition_seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<StreamSweepRow> {
    let par = par.into();
    let jobs: Vec<_> = names
        .iter()
        .map(|&name| {
            let policies = policies.to_vec();
            move || -> Vec<StreamSweepRow> {
                let all_failed = |policies: &[RepartitionPolicy]| -> Vec<StreamSweepRow> {
                    policies
                        .iter()
                        .map(|p| StreamSweepRow::failed(name, p.label(), spec.batches))
                        .collect()
                };
                let Some(p) = registry::edge_partitioner(name) else {
                    return all_failed(&policies);
                };
                let Ok(part) = p.partition_edges(graph, k, partition_seed) else {
                    return all_failed(&policies);
                };
                let config =
                    DistGnnConfig::paper(params.model(ModelKind::Sage), ClusterSpec::paper(k));
                let engine = DistGnnEngine::builder(graph, &part)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let run = |policy: RepartitionPolicy| -> Option<StreamRunReport> {
                    engine
                        .run(&RunSpec::healthy().stream(*spec, policy).stream_partitioner(name))
                        .ok()
                        .map(|r| r.into_stream())
                };
                let Some(never) = run(RepartitionPolicy::Never) else {
                    return all_failed(&policies);
                };
                policies
                    .iter()
                    .map(|&policy| {
                        let Some(report) = run(policy) else {
                            return StreamSweepRow::failed(name, policy.label(), spec.batches);
                        };
                        let again = run(policy).expect("rerun of a completed stream");
                        let traced = DistGnnEngine::builder(graph, &part)
                            .config(config)
                            .trace(TraceSink::enabled())
                            .threads(par.engine)
                            .build()
                            .expect("valid config")
                            .run(&RunSpec::healthy()
                                .stream(*spec, policy)
                                .stream_partitioner(name))
                            .expect("traced rerun of a completed stream")
                            .into_stream();
                        assemble_row(name, spec.batches, &report, &again, &traced, &never)
                    })
                    .collect()
            }
        })
        .collect();
    par_map(par.sweep, jobs).into_iter().flatten().collect()
}

/// Stream-sweep DistDGL (mini-batch, edge-cut): every named vertex
/// partitioner × every policy; mirrors [`distgnn_stream_sweep`]. The
/// base training split is reused for every snapshot (arrivals join no
/// role).
#[allow(clippy::too_many_arguments)]
pub fn distdgl_stream_sweep(
    graph: &Graph,
    split: &VertexSplit,
    names: &[&str],
    k: u32,
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    spec: &StreamSpec,
    policies: &[RepartitionPolicy],
    partition_seed: u64,
) -> Vec<StreamSweepRow> {
    distdgl_stream_sweep_threaded(
        graph,
        split,
        names,
        k,
        params,
        kind,
        global_batch_size,
        spec,
        policies,
        partition_seed,
        Threads::serial(),
    )
}

/// [`distdgl_stream_sweep`] on the `gp-exec` pool: one job per
/// partitioner, rows in `names` × `policies` order, bit-identical for
/// every `(sweep, engine)` width pair.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_stream_sweep_threaded(
    graph: &Graph,
    split: &VertexSplit,
    names: &[&str],
    k: u32,
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    spec: &StreamSpec,
    policies: &[RepartitionPolicy],
    partition_seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<StreamSweepRow> {
    let par = par.into();
    let jobs: Vec<_> = names
        .iter()
        .map(|&name| {
            let policies = policies.to_vec();
            move || -> Vec<StreamSweepRow> {
                let all_failed = |policies: &[RepartitionPolicy]| -> Vec<StreamSweepRow> {
                    policies
                        .iter()
                        .map(|p| StreamSweepRow::failed(name, p.label(), spec.batches))
                        .collect()
                };
                let Some(p) = registry::vertex_partitioner(name, Some(split.train.clone()))
                else {
                    return all_failed(&policies);
                };
                let Ok(part) = p.partition_vertices(graph, k, partition_seed) else {
                    return all_failed(&policies);
                };
                let mut config =
                    DistDglConfig::paper(params.model(kind), ClusterSpec::paper(k));
                config.global_batch_size = global_batch_size;
                let engine = DistDglEngine::builder(graph, &part, split)
                    .config(config.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let run = |policy: RepartitionPolicy| -> Option<StreamRunReport> {
                    engine
                        .run(&RunSpec::healthy().stream(*spec, policy).stream_partitioner(name))
                        .ok()
                        .map(|r| r.into_stream())
                };
                let Some(never) = run(RepartitionPolicy::Never) else {
                    return all_failed(&policies);
                };
                policies
                    .iter()
                    .map(|&policy| {
                        let Some(report) = run(policy) else {
                            return StreamSweepRow::failed(name, policy.label(), spec.batches);
                        };
                        let again = run(policy).expect("rerun of a completed stream");
                        let traced = DistDglEngine::builder(graph, &part, split)
                            .config(config.clone())
                            .trace(TraceSink::enabled())
                            .threads(par.engine)
                            .build()
                            .expect("valid config")
                            .run(&RunSpec::healthy()
                                .stream(*spec, policy)
                                .stream_partitioner(name))
                            .expect("traced rerun of a completed stream")
                            .into_stream();
                        assemble_row(name, spec.batches, &report, &again, &traced, &never)
                    })
                    .collect()
            }
        })
        .collect();
    par_map(par.sweep, jobs).into_iter().flatten().collect()
}

/// Render stream-sweep rows as a [`Table`] (CSV / Markdown ready). The
/// last column is the contract verdict (`ok` / `FAIL`).
pub fn stream_table(name: &str, rows: &[StreamSweepRow]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "policy",
            "batches",
            "completed",
            "repartitions",
            "partition_s",
            "epoch_s",
            "q_initial",
            "q_final",
            "q_peak",
            "speedup_vs_never",
            "amortize_epochs",
            "invariants",
        ],
    );
    for r in rows {
        table.push(vec![
            r.name.clone(),
            r.policy.clone(),
            r.batches.to_string(),
            r.completed_batches.to_string(),
            r.repartitions.to_string(),
            format!("{:.6}", r.partition_seconds),
            format!("{:.4}", r.epoch_seconds),
            format!("{:.4}", r.initial_quality),
            format!("{:.4}", r.final_quality),
            format!("{:.4}", r.peak_quality),
            format!("{:.4}", r.speedup_vs_never),
            format!("{:.2}", r.amortize_epochs),
            if r.holds() { "ok".to_string() } else { "FAIL".to_string() },
        ]);
    }
    table
}

use crate::benchjson;

fn stream_rows_json(rows: &[StreamSweepRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            benchjson::Obj::new()
                .str("partitioner", &r.name)
                .str("policy", &r.policy)
                .uint("batches", u64::from(r.batches))
                .uint("completed_batches", u64::from(r.completed_batches))
                .uint("repartitions", u64::from(r.repartitions))
                .f9("partition_seconds", r.partition_seconds)
                .f9("epoch_seconds", r.epoch_seconds)
                .f9("initial_quality", r.initial_quality)
                .f9("final_quality", r.final_quality)
                .f9("peak_quality", r.peak_quality)
                .f9("speedup_vs_never", r.speedup_vs_never)
                .f9("amortize_epochs", r.amortize_epochs)
                .raw("quality_series", &benchjson::f64_array(&r.quality_series))
                .raw("epoch_series", &benchjson::f64_array(&r.epoch_series))
                .boolean("invariants_hold", r.holds())
                .finish()
        })
        .collect();
    benchjson::array(&entries)
}

/// The `BENCH_stream.json` payload: per-(partitioner, policy) decay
/// curves, repartition costs and recovered speedups for both engines,
/// plus the contract verdicts. Deterministic rows ⇒ byte-identical
/// artifact.
pub fn stream_bench_json(distgnn: &[StreamSweepRow], distdgl: &[StreamSweepRow]) -> String {
    benchjson::bench_doc(
        "stream",
        &[("distgnn", stream_rows_json(distgnn)), ("distdgl", stream_rows_json(distdgl))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::{DatasetId, GraphScale};

    fn spec(batches: u32, seed: u64) -> StreamSpec {
        StreamSpec {
            batches,
            inserts_per_batch: 40,
            deletes_per_batch: 20,
            arrivals_per_batch: 3,
            edges_per_arrival: 2,
            seed,
        }
    }

    #[test]
    fn policies_cover_the_three_families() {
        let labels: Vec<String> = stream_policies().iter().map(|p| p.label()).collect();
        assert_eq!(labels[0], "never");
        assert!(labels[1].starts_with("threshold("));
        assert!(labels[2].starts_with("periodic("));
        for p in stream_policies() {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn distgnn_stream_rows_hold_all_invariants() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let names = ["Random", "HDRF"];
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let policies = stream_policies();
        let rows =
            distgnn_stream_sweep(&g, &names, 4, params, &spec(5, 0xbeef), &policies, 1);
        assert_eq!(rows.len(), names.len() * policies.len());
        for r in &rows {
            assert!(r.holds(), "{}/{}: contract must hold: {r:?}", r.name, r.policy);
            assert_eq!(r.quality_series.len(), 5);
            assert!(r.initial_quality >= 1.0, "{}: RF is >= 1", r.name);
            assert!(r.speedup_vs_never >= 1.0 - 1e-9, "{}/{}", r.name, r.policy);
        }
        // The baseline rows are their own never-baseline.
        for r in rows.iter().filter(|r| r.policy == "never") {
            assert_eq!(r.repartitions, 0);
            assert_eq!(r.partition_seconds, 0.0);
            assert!((r.speedup_vs_never - 1.0).abs() < 1e-12);
            assert_eq!(r.amortize_epochs, -1.0);
        }
        let again =
            distgnn_stream_sweep(&g, &names, 4, params, &spec(5, 0xbeef), &policies, 1);
        assert_eq!(rows, again, "same seeds must give bit-identical rows");
    }

    #[test]
    fn distdgl_stream_rows_hold_all_invariants() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let names = ["Random", "LDG"];
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let policies = stream_policies();
        let rows = distdgl_stream_sweep(
            &g, &split, &names, 4, params, ModelKind::Sage, 256, &spec(4, 7), &policies, 1,
        );
        assert_eq!(rows.len(), names.len() * policies.len());
        for r in &rows {
            assert!(r.holds(), "{}/{}: contract must hold: {r:?}", r.name, r.policy);
            assert!(
                r.final_quality >= 0.0 && r.final_quality <= 1.0,
                "{}: edge-cut ratio in [0, 1]: {}",
                r.name,
                r.final_quality
            );
        }
        let again = distdgl_stream_sweep(
            &g, &split, &names, 4, params, ModelKind::Sage, 256, &spec(4, 7), &policies, 1,
        );
        assert_eq!(rows, again);
    }

    #[test]
    fn stream_sweeps_threaded_are_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let policies = stream_policies();
        let names = ["Random", "HDRF"];
        let serial = distgnn_stream_sweep(&g, &names, 4, params, &spec(4, 3), &policies, 1);
        for threads in [2usize, 4] {
            let par = distgnn_stream_sweep_threaded(
                &g,
                &names,
                4,
                params,
                &spec(4, 3),
                &policies,
                1,
                Threads::new(threads),
            );
            assert_eq!(par, serial, "distgnn threads = {threads}");
        }
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let vnames = ["LDG"];
        let vserial = distdgl_stream_sweep(
            &g, &split, &vnames, 4, params, ModelKind::Sage, 256, &spec(4, 3), &policies, 1,
        );
        let vpar = distdgl_stream_sweep_threaded(
            &g,
            &split,
            &vnames,
            4,
            params,
            ModelKind::Sage,
            256,
            &spec(4, 3),
            &policies,
            1,
            Threads::new(4),
        );
        assert_eq!(vpar, vserial);
    }

    #[test]
    fn table_and_json_render_all_rows_and_verdicts() {
        let ok = StreamSweepRow {
            name: "HDRF".into(),
            policy: "periodic(4)".into(),
            batches: 3,
            completed_batches: 3,
            repartitions: 1,
            partition_seconds: 0.125,
            epoch_seconds: 1.5,
            initial_quality: 2.0,
            final_quality: 1.8,
            peak_quality: 2.5,
            speedup_vs_never: 1.1,
            amortize_epochs: 12.5,
            quality_series: vec![2.0, 2.5, 1.8],
            epoch_series: vec![0.5, 0.55, 0.45],
            deterministic: true,
            trace_transparent: true,
            never_worse: true,
        };
        let failed = StreamSweepRow::failed("Random", "never".into(), 3);
        assert!(ok.holds());
        assert!(!failed.holds());
        let t = stream_table("stream", &[ok.clone(), failed.clone()]);
        let csv = t.to_csv();
        assert!(csv.contains("HDRF"));
        assert!(csv.contains(",ok"), "verdict column: {csv}");
        assert!(csv.contains(",FAIL"), "failed verdict: {csv}");
        assert!(t.to_markdown().contains("speedup_vs_never"));
        let json = stream_bench_json(&[ok], &[failed]);
        assert!(json.starts_with("{\"bench\":\"stream\""));
        assert!(json.contains("\"invariants_hold\":true"));
        assert!(json.contains("\"invariants_hold\":false"));
        assert!(json.contains("\"partition_seconds\":0.125000000"));
        assert!(json.contains("\"quality_series\":[2.000000000,2.500000000,1.800000000]"));
        assert!(json.ends_with("}\n"));
    }
}
