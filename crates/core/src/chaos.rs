//! Chaos soak harness: elastic membership + faults + checkpoints.
//!
//! Extends the robustness axis of [`crate::fault_sweep`] to full
//! cluster churn: every partitioner runs a multi-epoch soak through its
//! engine's `.elastic(..)` [`RunSpec`] leg under a seeded [`ChurnPlan`]
//! (leaves, rejoins) *and* a seeded [`FaultPlan`] (crashes, stragglers,
//! brownouts, checkpoint corruption), with a crash-consistent
//! [`CheckpointConfig`] snapshot policy. Each cell also *checks* the
//! elastic contract and records the verdicts in its row:
//!
//! 1. **Deterministic** — the same seeds give a bit-identical
//!    [`ElasticRunReport`] on a rerun.
//! 2. **Trace-transparent** — attaching an enabled [`TraceSink`]
//!    changes no `f64` of the report.
//! 3. **Never worse** — the full elastic run (graceful handoffs,
//!    migrate-then-commit rebalances) costs at most the
//!    crash-without-handoff baseline ([`ElasticOptions::no_handoff`]).
//! 4. **Spans exact** — every worker's recorded per-phase span sums
//!    reproduce the phase totals of exactly the epochs it was live for
//!    ([`fold_exact`], no tolerance).
//!
//! A row whose run errors out (fleet drained, recovery budget) reports
//! zero completed epochs and fails [`ChaosRow::holds`]; the harness
//! never panics on a survivable schedule.

use gp_cluster::{
    fold_exact, CheckpointConfig, ChurnPlan, ChurnSpec, ClusterSpec, ElasticOptions,
    ElasticRunReport, FaultPlan, FaultSpec, MetricsSnapshot, RunSpec, TracePhase, TraceSink,
};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_exec::{par_map, Parallelism, Threads};
use gp_graph::{Graph, VertexSplit};
use gp_tensor::ModelKind;

use crate::config::PaperParams;
use crate::experiment::{TimedEdgePartition, TimedVertexPartition};
use crate::report::Table;

/// Phase order of the DistGNN engine's `phase_breakdown`.
const DISTGNN_PHASES: [TracePhase; 4] =
    [TracePhase::Forward, TracePhase::Backward, TracePhase::Sync, TracePhase::Optimizer];

/// Phase order of the DistDGL engine's `phase_breakdown`.
const DISTDGL_PHASES: [TracePhase; 5] = [
    TracePhase::Sampling,
    TracePhase::FeatureLoad,
    TracePhase::Forward,
    TracePhase::Backward,
    TracePhase::Update,
];

/// A churn environment tuned for soaks: roughly one leave per worker
/// every ~12 epochs and quick rejoins, so even a short smoke run
/// exercises leaves, joins, handoffs and rebalances. The `min_live`
/// floor of [`ChurnSpec::standard`] (half the fleet, rounded up) is
/// kept, so the schedule alone can never drain the cluster.
pub fn chaos_churn_spec(machines: u32, epochs: u32, seed: u64) -> ChurnSpec {
    ChurnSpec { leave_prob: 0.08, rejoin_prob: 0.3, ..ChurnSpec::standard(machines, epochs, seed) }
}

/// One partitioner's soak outcome plus its invariant verdicts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosRow {
    /// Partitioner name.
    pub name: String,
    /// Requested soak horizon in epochs.
    pub epochs: u32,
    /// Epochs the elastic run completed (equals `epochs` unless the
    /// engine reported an unrecoverable failure).
    pub completed_epochs: u32,
    /// Scheduled leaves applied.
    pub leaves: u32,
    /// Scheduled joins admitted.
    pub joins: u32,
    /// Graceful leave handoffs performed.
    pub handoffs: u32,
    /// Join rebalances committed under migrate-then-commit.
    pub rebalances: u32,
    /// Join rebalances deferred (migration would not pay this epoch).
    pub rejected_rebalances: u32,
    /// Crashes repaired during the soak (fault plan).
    pub crashes: u32,
    /// Loss-induced message retries.
    pub retries: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Snapshot shards that failed checksum validation on restore.
    pub corrupted_checkpoints: u64,
    /// Healthy baseline: no-churn, no-fault seconds over the completed
    /// epochs.
    pub healthy_secs: f64,
    /// Total simulated seconds of the full elastic run (epochs +
    /// recovery + handoffs).
    pub elastic_secs: f64,
    /// Total simulated seconds of the crash-without-handoff baseline;
    /// `-1.0` when the baseline itself failed to complete (the elastic
    /// run then wins by definition).
    pub baseline_secs: f64,
    /// Recovery overhead inside `elastic_secs` (retries, re-execution,
    /// checkpoints, restores).
    pub recovery_overhead_secs: f64,
    /// Handoff/rebalance migration seconds inside `elastic_secs`.
    pub handoff_secs: f64,
    /// Bytes moved only because of recovery.
    pub recovery_bytes: u64,
    /// Bytes streamed by handoffs and committed rebalances.
    pub handoff_bytes: u64,
    /// Epochs of training progress lost to crashes.
    pub lost_progress_epochs: f64,
    /// Invariant 1: rerun with the same seeds is bit-identical.
    pub deterministic: bool,
    /// Invariant 2: an enabled trace sink changes nothing.
    pub trace_transparent: bool,
    /// Invariant 3: elastic run ≤ crash-without-handoff baseline.
    pub elastic_never_worse: bool,
    /// Invariant 4: every worker's span sums reproduce the phase
    /// totals of exactly its live epochs.
    pub spans_exact: bool,
}

impl ChaosRow {
    /// Whether the soak completed and every invariant held.
    pub fn holds(&self) -> bool {
        self.completed_epochs == self.epochs
            && self.deterministic
            && self.trace_transparent
            && self.elastic_never_worse
            && self.spans_exact
    }

    /// Wall-time inflation of the elastic run over the healthy
    /// baseline.
    pub fn slowdown(&self) -> f64 {
        if self.healthy_secs <= 0.0 {
            return 1.0;
        }
        self.elastic_secs / self.healthy_secs
    }

    /// Percentage of the crash-baseline wall time saved by elasticity
    /// (0 when the baseline is unavailable).
    pub fn elastic_saving_pct(&self) -> f64 {
        if self.baseline_secs <= 0.0 {
            return 0.0;
        }
        100.0 * (self.baseline_secs - self.elastic_secs) / self.baseline_secs
    }

    /// The row of a run that errored out before completing.
    fn failed(name: String, epochs: u32) -> ChaosRow {
        ChaosRow { name, epochs, ..ChaosRow::default() }
    }
}

/// Fold the four run variants (plain, rerun, baseline, traced) and the
/// recorded spans into one verdict-carrying row.
#[allow(clippy::too_many_arguments)]
fn assemble_row(
    name: String,
    k: u32,
    epochs: u32,
    phases: &[TracePhase],
    healthy_secs: f64,
    elastic: &ElasticRunReport,
    again: &ElasticRunReport,
    baseline: Option<&ElasticRunReport>,
    traced: &ElasticRunReport,
    sink: &TraceSink,
) -> ChaosRow {
    let deterministic = elastic == again;
    let trace_transparent = traced == elastic;
    let (baseline_secs, elastic_never_worse) = match baseline {
        Some(b) => (b.total_seconds(), elastic.total_seconds() <= b.total_seconds() + 1e-9),
        // The rigid baseline died mid-soak; surviving at all wins.
        None => (-1.0, true),
    };
    let snap = MetricsSnapshot::from_sink(sink);
    // Every worker, not only the never-churned: a worker's recorded
    // span sum must reproduce the phase totals of exactly the epochs it
    // was live for. (On a long soak the whole fleet churns at least
    // once, so an always-live-only check would go vacuous.)
    let mut spans_exact = true;
    for w in 0..k {
        for (i, phase) in phases.iter().enumerate() {
            let per_epoch: Vec<f64> = elastic
                .phase_seconds
                .iter()
                .enumerate()
                .filter(|(e, _)| elastic.live_workers[*e].contains(&w))
                .map(|(_, row)| row[i].1)
                .collect();
            // Bit-exactness is the contract, not a tolerance band.
            if snap.phase_seconds(w, *phase) != fold_exact(&per_epoch) {
                spans_exact = false;
            }
        }
    }
    ChaosRow {
        name,
        epochs,
        completed_epochs: elastic.completed_epochs,
        leaves: elastic.leaves,
        joins: elastic.joins,
        handoffs: elastic.handoffs,
        rebalances: elastic.rebalances,
        rejected_rebalances: elastic.rejected_rebalances,
        crashes: elastic.recovery.crashes,
        retries: elastic.recovery.retries,
        checkpoints: elastic.recovery.checkpoints,
        corrupted_checkpoints: elastic.recovery.corrupted_checkpoints,
        healthy_secs,
        elastic_secs: elastic.total_seconds(),
        baseline_secs,
        recovery_overhead_secs: elastic.recovery.total_overhead_seconds(),
        handoff_secs: elastic.handoff_seconds,
        recovery_bytes: elastic.recovery.recovery_bytes,
        handoff_bytes: elastic.handoff_bytes,
        lost_progress_epochs: elastic.recovery.lost_progress_epochs,
        deterministic,
        trace_transparent,
        elastic_never_worse,
        spans_exact,
    }
}

/// Soak DistGNN (full-batch, edge-partitioned) over every timed
/// partition: churn from [`chaos_churn_spec`], faults from
/// [`FaultSpec::standard`] at `mtbf`, snapshots every
/// `checkpoint_every` epochs. Same seed ⇒ bit-identical rows.
pub fn distgnn_chaos_soak(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
) -> Vec<ChaosRow> {
    distgnn_chaos_soak_threaded(
        graph,
        timed,
        params,
        epochs,
        mtbf,
        checkpoint_every,
        seed,
        Threads::serial(),
    )
}

/// [`distgnn_chaos_soak`] on the `gp-exec` pool: one job per
/// partitioner, rows in `timed` order, bit-identical for every
/// `(sweep, engine)` width pair (each cell is pure and owns its trace
/// sink).
#[allow(clippy::too_many_arguments)]
pub fn distgnn_chaos_soak_threaded(
    graph: &Graph,
    timed: &[TimedEdgePartition],
    params: PaperParams,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<ChaosRow> {
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                let k = t.partition.k();
                let config =
                    DistGnnConfig::paper(params.model(ModelKind::Sage), ClusterSpec::paper(k));
                let engine = DistGnnEngine::builder(graph, &t.partition)
                    .config(config)
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let faults = FaultPlan::generate(&FaultSpec::standard(k, epochs, mtbf, seed));
                let churn = ChurnPlan::generate(&chaos_churn_spec(k, epochs, seed));
                let ckpt = CheckpointConfig::periodic(checkpoint_every);
                let spec = RunSpec::healthy()
                    .epochs(epochs)
                    .faults(faults.clone())
                    .elastic(churn.clone(), ckpt.clone(), ElasticOptions::default());
                let Ok(report) = engine.run(&spec) else {
                    return ChaosRow::failed(t.name.clone(), epochs);
                };
                let elastic = report.into_elastic();
                let again = engine
                    .run(&spec)
                    .expect("rerun of a completed schedule")
                    .into_elastic();
                let baseline_spec = RunSpec::healthy()
                    .epochs(epochs)
                    .faults(faults.clone())
                    .elastic(churn.clone(), ckpt.clone(), ElasticOptions::no_handoff());
                let baseline = engine.run(&baseline_spec).ok().map(|r| r.into_elastic());
                let sink = TraceSink::enabled();
                let traced = DistGnnEngine::builder(graph, &t.partition)
                    .config(config)
                    .trace(sink.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config")
                    .run(&spec)
                    .expect("traced rerun of a completed schedule")
                    .into_elastic();
                let healthy = engine.run(&RunSpec::healthy()).expect("healthy run").into_healthy()
                    [0]
                .epoch_time()
                    * f64::from(elastic.completed_epochs);
                assemble_row(
                    t.name.clone(),
                    k,
                    epochs,
                    &DISTGNN_PHASES,
                    healthy,
                    &elastic,
                    &again,
                    baseline.as_ref(),
                    &traced,
                    &sink,
                )
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Soak DistDGL (mini-batch, vertex-partitioned) over every timed
/// partition; mirrors [`distgnn_chaos_soak`]. The healthy baseline
/// re-prices each epoch without churn or faults (DistDGL epochs differ
/// by sampled mini-batches, so a single epoch cannot stand in for the
/// run).
#[allow(clippy::too_many_arguments)]
pub fn distdgl_chaos_soak(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
) -> Vec<ChaosRow> {
    distdgl_chaos_soak_threaded(
        graph,
        split,
        timed,
        params,
        kind,
        global_batch_size,
        epochs,
        mtbf,
        checkpoint_every,
        seed,
        Threads::serial(),
    )
}

/// [`distdgl_chaos_soak`] on the `gp-exec` pool: one job per
/// partitioner, rows in `timed` order, bit-identical for every
/// `(sweep, engine)` width pair.
#[allow(clippy::too_many_arguments)]
pub fn distdgl_chaos_soak_threaded(
    graph: &Graph,
    split: &VertexSplit,
    timed: &[TimedVertexPartition],
    params: PaperParams,
    kind: ModelKind,
    global_batch_size: u32,
    epochs: u32,
    mtbf: f64,
    checkpoint_every: u32,
    seed: u64,
    par: impl Into<Parallelism>,
) -> Vec<ChaosRow> {
    let par = par.into();
    let jobs: Vec<_> = timed
        .iter()
        .map(|t| {
            move || {
                let k = t.partition.k();
                let mut config = DistDglConfig::paper(params.model(kind), ClusterSpec::paper(k));
                config.global_batch_size = global_batch_size;
                let engine = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config");
                let faults = FaultPlan::generate(&FaultSpec::standard(k, epochs, mtbf, seed));
                let churn = ChurnPlan::generate(&chaos_churn_spec(k, epochs, seed));
                let ckpt = CheckpointConfig::periodic(checkpoint_every);
                let spec = RunSpec::healthy()
                    .epochs(epochs)
                    .faults(faults.clone())
                    .elastic(churn.clone(), ckpt.clone(), ElasticOptions::default());
                let Ok(report) = engine.run(&spec) else {
                    return ChaosRow::failed(t.name.clone(), epochs);
                };
                let elastic = report.into_elastic();
                let again = engine
                    .run(&spec)
                    .expect("rerun of a completed schedule")
                    .into_elastic();
                let baseline_spec = RunSpec::healthy()
                    .epochs(epochs)
                    .faults(faults.clone())
                    .elastic(churn.clone(), ckpt.clone(), ElasticOptions::no_handoff());
                let baseline = engine.run(&baseline_spec).ok().map(|r| r.into_elastic());
                let sink = TraceSink::enabled();
                let traced = DistDglEngine::builder(graph, &t.partition, split)
                    .config(config)
                    .trace(sink.clone())
                    .threads(par.engine)
                    .build()
                    .expect("valid config")
                    .run(&spec)
                    .expect("traced rerun of a completed schedule")
                    .into_elastic();
                let healthy: f64 = engine
                    .run(&RunSpec::healthy().epochs(epochs))
                    .expect("healthy run")
                    .into_healthy()[..elastic.completed_epochs as usize]
                    .iter()
                    .map(|e| e.epoch_time())
                    .sum();
                assemble_row(
                    t.name.clone(),
                    k,
                    epochs,
                    &DISTDGL_PHASES,
                    healthy,
                    &elastic,
                    &again,
                    baseline.as_ref(),
                    &traced,
                    &sink,
                )
            }
        })
        .collect();
    par_map(par.sweep, jobs)
}

/// Render chaos rows as a [`Table`] (CSV / Markdown ready). The last
/// column is the invariant verdict (`ok` / `FAIL`).
pub fn chaos_table(name: &str, rows: &[ChaosRow]) -> Table {
    let mut table = Table::new(
        name,
        &[
            "partitioner",
            "epochs",
            "completed",
            "leaves",
            "joins",
            "handoffs",
            "rebalances",
            "crashes",
            "corrupt_ckpts",
            "healthy_s",
            "elastic_s",
            "baseline_s",
            "slowdown",
            "saving_pct",
            "overhead_s",
            "recovery_MB",
            "lost_epochs",
            "invariants",
        ],
    );
    for r in rows {
        table.push(vec![
            r.name.clone(),
            r.epochs.to_string(),
            r.completed_epochs.to_string(),
            r.leaves.to_string(),
            r.joins.to_string(),
            r.handoffs.to_string(),
            r.rebalances.to_string(),
            r.crashes.to_string(),
            r.corrupted_checkpoints.to_string(),
            format!("{:.4}", r.healthy_secs),
            format!("{:.4}", r.elastic_secs),
            format!("{:.4}", r.baseline_secs),
            format!("{:.3}", r.slowdown()),
            format!("{:.2}", r.elastic_saving_pct()),
            format!("{:.4}", r.recovery_overhead_secs),
            format!("{:.2}", r.recovery_bytes as f64 / 1e6),
            format!("{:.3}", r.lost_progress_epochs),
            if r.holds() { "ok".to_string() } else { "FAIL".to_string() },
        ]);
    }
    table
}

use crate::benchjson;

fn chaos_rows_json(rows: &[ChaosRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            benchjson::Obj::new()
                .str("partitioner", &r.name)
                .uint("epochs", u64::from(r.epochs))
                .uint("completed_epochs", u64::from(r.completed_epochs))
                .uint("leaves", u64::from(r.leaves))
                .uint("joins", u64::from(r.joins))
                .uint("handoffs", u64::from(r.handoffs))
                .uint("rebalances", u64::from(r.rebalances))
                .uint("rejected_rebalances", u64::from(r.rejected_rebalances))
                .uint("crashes", u64::from(r.crashes))
                .uint("retries", r.retries)
                .uint("checkpoints", r.checkpoints)
                .uint("corrupted_checkpoints", r.corrupted_checkpoints)
                .f9("healthy_seconds", r.healthy_secs)
                .f9("elastic_seconds", r.elastic_secs)
                .f9("baseline_seconds", r.baseline_secs)
                .f9("recovery_overhead_seconds", r.recovery_overhead_secs)
                .f9("handoff_seconds", r.handoff_secs)
                .uint("recovery_bytes", r.recovery_bytes)
                .uint("handoff_bytes", r.handoff_bytes)
                .f9("lost_progress_epochs", r.lost_progress_epochs)
                .f9("slowdown", r.slowdown())
                .f9("elastic_saving_pct", r.elastic_saving_pct())
                .boolean("invariants_hold", r.holds())
                .finish()
        })
        .collect();
    benchjson::array(&entries)
}

/// The `BENCH_chaos.json` payload: per-partitioner recovery-overhead
/// and lost-progress metrics for both engines, plus the invariant
/// verdicts. Deterministic rows ⇒ byte-identical artifact.
pub fn chaos_bench_json(distgnn: &[ChaosRow], distdgl: &[ChaosRow]) -> String {
    benchjson::bench_doc(
        "chaos",
        &[("distgnn", chaos_rows_json(distgnn)), ("distdgl", chaos_rows_json(distdgl))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{timed_edge_partitions, timed_vertex_partitions};
    use gp_graph::{DatasetId, GraphScale};

    #[test]
    fn chaos_churn_spec_schedules_actual_churn() {
        let plan = ChurnPlan::generate(&chaos_churn_spec(8, 40, 0xc0de));
        assert!(plan.total_leaves() >= 3, "leaves: {}", plan.total_leaves());
        assert!(plan.total_joins() >= 2, "joins: {}", plan.total_joins());
    }

    #[test]
    fn distgnn_chaos_rows_hold_all_invariants() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let timed: Vec<_> = timed_edge_partitions(&g, 4, 1).into_iter().take(3).collect();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let rows = distgnn_chaos_soak(&g, &timed, params, 10, 6.0, 2, 0xc0de);
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert!(r.holds(), "{}: invariants must hold: {r:?}", r.name);
            assert_eq!(r.completed_epochs, 10);
            assert!(r.leaves > 0, "{}: soak must exercise churn", r.name);
            assert!(r.checkpoints > 0);
            assert!(r.elastic_secs > r.healthy_secs, "chaos is never free");
        }
        let again = distgnn_chaos_soak(&g, &timed, params, 10, 6.0, 2, 0xc0de);
        assert_eq!(rows, again, "same seed must give bit-identical rows");
    }

    #[test]
    fn distdgl_chaos_rows_hold_all_invariants() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let timed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let rows =
            distdgl_chaos_soak(&g, &split, &timed, params, ModelKind::Sage, 256, 8, 6.0, 2, 0xc0de);
        assert_eq!(rows.len(), timed.len());
        for r in &rows {
            assert!(r.holds(), "{}: invariants must hold: {r:?}", r.name);
            assert_eq!(r.completed_epochs, 8);
            assert!(r.leaves > 0, "{}: soak must exercise churn", r.name);
        }
        let again =
            distdgl_chaos_soak(&g, &split, &timed, params, ModelKind::Sage, 256, 8, 6.0, 2, 0xc0de);
        assert_eq!(rows, again);
    }

    #[test]
    fn chaos_soaks_threaded_are_bit_identical_to_serial() {
        let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let params = PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 };
        let timed: Vec<_> = timed_edge_partitions(&g, 4, 1).into_iter().take(3).collect();
        let serial = distgnn_chaos_soak(&g, &timed, params, 8, 6.0, 2, 7);
        for threads in [2usize, 4] {
            let par = distgnn_chaos_soak_threaded(
                &g, &timed, params, 8, 6.0, 2, 7,
                gp_exec::Threads::new(threads),
            );
            assert_eq!(par, serial, "distgnn threads = {threads}");
        }
        let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
        let vtimed: Vec<_> =
            timed_vertex_partitions(&g, 4, 1, &split.train).into_iter().take(2).collect();
        let vserial =
            distdgl_chaos_soak(&g, &split, &vtimed, params, ModelKind::Sage, 256, 6, 6.0, 2, 7);
        let vpar = distdgl_chaos_soak_threaded(
            &g, &split, &vtimed, params, ModelKind::Sage, 256, 6, 6.0, 2, 7,
            gp_exec::Threads::new(4),
        );
        assert_eq!(vpar, vserial);
    }

    #[test]
    fn table_and_json_render_all_rows_and_verdicts() {
        let ok = ChaosRow {
            name: "Metis".into(),
            epochs: 10,
            completed_epochs: 10,
            leaves: 3,
            joins: 2,
            handoffs: 2,
            rebalances: 1,
            crashes: 1,
            checkpoints: 5,
            healthy_secs: 1.0,
            elastic_secs: 1.4,
            baseline_secs: 1.9,
            recovery_overhead_secs: 0.2,
            recovery_bytes: 3_000_000,
            lost_progress_epochs: 0.25,
            deterministic: true,
            trace_transparent: true,
            elastic_never_worse: true,
            spans_exact: true,
            ..ChaosRow::default()
        };
        let failed = ChaosRow::failed("Random".into(), 10);
        assert!(ok.holds());
        assert!(!failed.holds());
        let t = chaos_table("chaos", &[ok.clone(), failed.clone()]);
        let csv = t.to_csv();
        assert!(csv.contains("Metis"));
        assert!(csv.contains("1.400"), "slowdown column: {csv}");
        assert!(csv.contains(",ok"), "verdict column: {csv}");
        assert!(csv.contains(",FAIL"), "failed verdict: {csv}");
        assert!(t.to_markdown().contains("corrupt_ckpts"));
        let json = chaos_bench_json(&[ok], &[failed]);
        assert!(json.starts_with("{\"bench\":\"chaos\""));
        assert!(json.contains("\"invariants_hold\":true"));
        assert!(json.contains("\"invariants_hold\":false"));
        assert!(json.contains("\"lost_progress_epochs\":0.250000000"));
        assert!(json.ends_with("}\n"));
    }
}
